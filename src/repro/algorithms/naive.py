"""Method N — Algorithm 1 with a fixed sample size.

The paper's baseline: estimate every node's default probability with a
large, *k-independent* number of forward-sampled possible worlds and
return the ``k`` largest estimates.  Accurate but by far the slowest
method in Figure 6 because the budget is not adapted to ``k`` or to the
graph.
"""

from __future__ import annotations

from repro.algorithms.base import DetectionResult, VulnerableNodeDetector
from repro.core.errors import SamplingError
from repro.core.graph import UncertainGraph
from repro.core.topk import top_k_indices
from repro.sampling.forward import ForwardSampler
from repro.sampling.rng import SeedLike

__all__ = ["NaiveDetector"]


class NaiveDetector(VulnerableNodeDetector):
    """Fixed-budget forward sampling (method **N** of Section 4.1).

    Parameters
    ----------
    samples:
        The fixed possible-world budget.  The paper's experiments use the
        ground-truth-grade setting of 20 000 worlds; scale it down for
        laptop-scale runs.
    seed:
        Randomness control.
    batch_size:
        Forwarded to :class:`~repro.sampling.forward.ForwardSampler`.
    """

    name = "N"

    def __init__(
        self,
        samples: int = 20_000,
        seed: SeedLike = None,
        batch_size: int = 256,
    ) -> None:
        super().__init__(seed)
        if samples <= 0:
            raise SamplingError(f"samples must be positive, got {samples}")
        self._samples = int(samples)
        self._batch_size = batch_size

    def _detect(self, graph: UncertainGraph, k: int) -> DetectionResult:
        sampler = ForwardSampler(
            graph, seed=self._seed, batch_size=self._batch_size
        )
        estimate = sampler.run(self._samples)
        probabilities = estimate.probabilities
        top = top_k_indices(probabilities, k)
        nodes = [graph.label(int(i)) for i in top]
        return DetectionResult(
            method=self.name,
            k=k,
            nodes=nodes,
            scores={graph.label(int(i)): float(probabilities[i]) for i in top},
            samples_used=self._samples,
            candidate_size=graph.num_nodes,
            k_verified=0,
            elapsed_seconds=0.0,
            details={
                "fixed_samples": self._samples,
                "nodes_touched": sampler.nodes_touched,
                "edges_touched": sampler.edges_touched,
            },
        )
