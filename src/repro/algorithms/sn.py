"""Method SN — Algorithm 1 with the Theorem-4 sample size.

Identical sampling machinery to method N, but the budget comes from
Equation (3): ``t = ceil(2/eps^2 * ln(k (n-k) / delta))``, which makes the
result an (eps, delta)-approximation while usually needing far fewer
worlds than a fixed conservative budget.
"""

from __future__ import annotations

from repro.algorithms.base import DetectionResult, VulnerableNodeDetector
from repro.core.graph import UncertainGraph
from repro.core.topk import top_k_indices
from repro.sampling.forward import ForwardSampler
from repro.sampling.rng import SeedLike
from repro.sampling.sample_size import basic_sample_size, validate_epsilon_delta

__all__ = ["SampledNaiveDetector"]


class SampledNaiveDetector(VulnerableNodeDetector):
    """Forward sampling with the Equation-(3) budget (method **SN**).

    Parameters
    ----------
    epsilon, delta:
        The (eps, delta)-approximation target of Definition 2.  The paper's
        experiments fix ``epsilon=0.3`` and ``delta=0.1``.
    seed, batch_size:
        Randomness and vectorisation controls.
    """

    name = "SN"

    def __init__(
        self,
        epsilon: float = 0.3,
        delta: float = 0.1,
        seed: SeedLike = None,
        batch_size: int = 256,
    ) -> None:
        super().__init__(seed)
        self._epsilon, self._delta = validate_epsilon_delta(epsilon, delta)
        self._batch_size = batch_size

    def _detect(self, graph: UncertainGraph, k: int) -> DetectionResult:
        n = graph.num_nodes
        samples = basic_sample_size(n, k, self._epsilon, self._delta)
        sampler = ForwardSampler(
            graph, seed=self._seed, batch_size=self._batch_size
        )
        probabilities = sampler.run(samples).probabilities
        top = top_k_indices(probabilities, k)
        nodes = [graph.label(int(i)) for i in top]
        return DetectionResult(
            method=self.name,
            k=k,
            nodes=nodes,
            scores={graph.label(int(i)): float(probabilities[i]) for i in top},
            samples_used=samples,
            candidate_size=n,
            k_verified=0,
            elapsed_seconds=0.0,
            details={
                "epsilon": self._epsilon,
                "delta": self._delta,
                "nodes_touched": sampler.nodes_touched,
                "edges_touched": sampler.edges_touched,
            },
        )
