"""Method BSRBK — BSR with bottom-k early stopping (Section 3.3).

BSRBK runs the same pipeline as BSR but does not always spend the full
Equation-(4) budget: every sample id receives a uniform hash, samples are
materialised in ascending hash order, and per-candidate default counters
stop processing as soon as ``k - k'`` candidates accumulate ``bk``
defaults — Theorem 6 guarantees they are the (estimated) most vulnerable.
If the stopping condition never fires, the method degrades gracefully
into BSR: all samples are consumed and plain frequency estimates are
used.

Two equivalent executions, selected by the engine:

* stream engines (``"batched"`` / ``"reference"``): sample hashes come
  from the detector's generator, worlds are consumed one at a time in
  hash order through :class:`~repro.sketch.bottom_k.BottomKStopper`;
* ``"indexed"`` (default): every world carries a fixed PRF *sample
  hash* (:meth:`~repro.sampling.indexed.IndexedReverseSampler.
  world_hashes`), worlds are materialised in ascending hash order in
  geometrically growing chunks, and the stopping rule is the pure
  prefix scan :func:`~repro.sketch.bottom_k.bottom_k_scan`.  Because
  both the hash order and each world's outcome are pure functions of
  ``(seed, world, graph)``, the stopping point is chunk-schedule
  independent — the property that lets the streaming
  :class:`~repro.streaming.monitor.TopKMonitor` maintain BSRBK
  incrementally, bit-identical to this one-shot path.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import DetectionResult, VulnerableNodeDetector
from repro.algorithms.bsr import assemble_answer
from repro.bounds.candidates import reduce_candidates
from repro.bounds.iterative import bound_pair
from repro.core.errors import SamplingError
from repro.core.graph import UncertainGraph
from repro.sampling.reverse import reverse_engine
from repro.sampling.rng import SeedLike, make_rng
from repro.sampling.sample_size import reduced_sample_size, validate_epsilon_delta
from repro.sketch.bottom_k import BottomKStopper, bottom_k_scan

__all__ = ["BottomKDetector"]


class BottomKDetector(VulnerableNodeDetector):
    """BSR + bottom-k early stop (method **BSRBK**).

    Parameters
    ----------
    bk:
        The bottom-k counter threshold.  Figure 4 of the paper tunes it;
        precision saturates around 8–16, and the paper fixes 16.
    epsilon, delta:
        Budget parameters — BSRBK never samples *more* than the BSR budget
        of Equation (4).
    lower_order, upper_order:
        Bound iteration counts for Algorithms 2/3.
    seed:
        Randomness control (drives both the sample hashes and the worlds).
    engine:
        Reverse-sampling engine: ``"indexed"`` (counter-PRF worlds with
        fixed sample hashes, early stop chunk-schedule independent —
        the default), ``"batched"`` (vectorised sequential stream) or
        ``"reference"`` (the per-candidate Algorithm-5 BFS).  The
        stream engines materialise worlds a small block at a time, so an
        early stop wastes at most one partial block.
    """

    name = "BSRBK"

    def __init__(
        self,
        bk: int = 16,
        epsilon: float = 0.3,
        delta: float = 0.1,
        lower_order: int = 2,
        upper_order: int = 2,
        seed: SeedLike = None,
        engine: str = "indexed",
    ) -> None:
        super().__init__(seed)
        if bk < 2:
            raise SamplingError(f"bk must be >= 2, got {bk}")
        self._bk = int(bk)
        self._epsilon, self._delta = validate_epsilon_delta(epsilon, delta)
        self._lower_order = int(lower_order)
        self._upper_order = int(upper_order)
        self._engine_name = str(engine)
        self._engine = reverse_engine(engine)

    def _run_indexed(self, graph, reduction, budget):
        """Hash-ordered early stop over order-independent indexed worlds."""
        sampler = self._engine(graph, reduction.candidates, seed=self._seed)
        hashes = sampler.world_hashes(np.arange(budget, dtype=np.int64))
        order = np.argsort(hashes, kind="stable")
        sorted_hashes = hashes[order]
        outcome_parts: list[np.ndarray] = []
        node_parts: list[np.ndarray] = []
        edge_parts: list[np.ndarray] = []
        evaluated = 0
        chunk = max(64, sampler.world_batch)
        scan = None
        while evaluated < budget:
            take = min(chunk, budget - evaluated)
            chunk *= 2
            block = sampler.outcomes_for_worlds(
                order[evaluated : evaluated + take]
            )
            outcome_parts.append(block.outcomes)
            node_parts.append(block.node_draws)
            edge_parts.append(block.edge_draws)
            evaluated += take
            scan = bottom_k_scan(
                np.concatenate(outcome_parts),
                sorted_hashes[:evaluated],
                self._bk,
                reduction.k_remaining,
                budget,
            )
            if scan.stopped_early:
                break
        node_draws = np.concatenate(node_parts)
        edge_draws = np.concatenate(edge_parts)
        return (
            scan.processed,
            scan.stopped_early,
            int(node_draws[: scan.processed].sum()),
            int(edge_draws[: scan.processed].sum()),
            np.clip(scan.estimates, 0.0, 1.0),
        )

    def _run_stream(self, graph, reduction, budget, rng):
        """Sequential-stream early stop through the scalar stopper."""
        # Hash every sample id; since sample contents are i.i.d. and
        # independent of the hashes, materialising them in ascending
        # hash order is distributionally identical to materialising
        # them in id order and sorting afterwards — but lets us stop.
        hashes = np.sort(rng.random(budget))
        stopper = BottomKStopper(
            num_candidates=reduction.candidate_size,
            bk=self._bk,
            total_samples=budget,
            stop_after=reduction.k_remaining,
        )
        stopped_early = False
        sampler = self._engine(graph, reduction.candidates, seed=rng)
        for sample_hash, outcome in zip(
            hashes, sampler.iter_samples(budget)
        ):
            stopper.offer(float(sample_hash), outcome)
            if stopper.should_stop:
                stopped_early = True
                break
        return (
            stopper.processed,
            stopped_early,
            sampler.nodes_touched,
            sampler.edges_touched,
            np.clip(stopper.estimates(), 0.0, 1.0),
        )

    def _detect(self, graph: UncertainGraph, k: int) -> DetectionResult:
        rng = make_rng(self._seed)
        lower, upper = bound_pair(graph, self._lower_order, self._upper_order)
        reduction = reduce_candidates(graph, lower, upper, k)
        processed = 0
        stopped_early = False
        nodes_touched = edges_touched = 0
        if reduction.k_remaining > 0:
            budget = reduced_sample_size(
                reduction.candidate_size,
                k,
                reduction.k_verified,
                self._epsilon,
                self._delta,
            )
            if self._engine_name == "indexed":
                runner = self._run_indexed(graph, reduction, budget)
            else:
                runner = self._run_stream(graph, reduction, budget, rng)
            (
                processed,
                stopped_early,
                nodes_touched,
                edges_touched,
                probabilities,
            ) = runner
        else:
            probabilities = None
        nodes, scores = assemble_answer(graph, reduction, lower, probabilities, k)
        return DetectionResult(
            method=self.name,
            k=k,
            nodes=nodes,
            scores=scores,
            samples_used=processed,
            candidate_size=reduction.candidate_size,
            k_verified=reduction.k_verified,
            elapsed_seconds=0.0,
            details={
                "bk": self._bk,
                "epsilon": self._epsilon,
                "delta": self._delta,
                "lower_order": self._lower_order,
                "upper_order": self._upper_order,
                "stopped_early": stopped_early,
                **reduction.summary(),
                "nodes_touched": nodes_touched,
                "edges_touched": edges_touched,
            },
        )
