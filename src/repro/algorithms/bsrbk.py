"""Method BSRBK — BSR with bottom-k early stopping (Section 3.3).

BSRBK runs the same pipeline as BSR but does not always spend the full
Equation-(4) budget: every sample id receives a uniform hash, samples are
materialised in ascending hash order, and per-candidate default counters
are tracked by :class:`~repro.sketch.bottom_k.BottomKStopper`.  As soon as
``k - k'`` candidates accumulate ``bk`` defaults, Theorem 6 guarantees they
are the (estimated) most vulnerable and processing stops.  If the stopping
condition never fires, the method degrades gracefully into BSR: all
samples are consumed and plain frequency estimates are used.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import DetectionResult, VulnerableNodeDetector
from repro.algorithms.bsr import assemble_answer
from repro.bounds.candidates import reduce_candidates
from repro.bounds.iterative import bound_pair
from repro.core.errors import SamplingError
from repro.core.graph import UncertainGraph
from repro.sampling.reverse import reverse_engine
from repro.sampling.rng import SeedLike, make_rng
from repro.sampling.sample_size import reduced_sample_size, validate_epsilon_delta
from repro.sketch.bottom_k import BottomKStopper

__all__ = ["BottomKDetector"]


class BottomKDetector(VulnerableNodeDetector):
    """BSR + bottom-k early stop (method **BSRBK**).

    Parameters
    ----------
    bk:
        The bottom-k counter threshold.  Figure 4 of the paper tunes it;
        precision saturates around 8–16, and the paper fixes 16.
    epsilon, delta:
        Budget parameters — BSRBK never samples *more* than the BSR budget
        of Equation (4).
    lower_order, upper_order:
        Bound iteration counts for Algorithms 2/3.
    seed:
        Randomness control (drives both the sample hashes and the worlds).
    engine:
        Reverse-sampling engine: ``"batched"`` (vectorised, default) or
        ``"reference"`` (the per-candidate Algorithm-5 BFS).  The batched
        engine materialises worlds a small block at a time, so an early
        stop wastes at most one partial block.
    """

    name = "BSRBK"

    def __init__(
        self,
        bk: int = 16,
        epsilon: float = 0.3,
        delta: float = 0.1,
        lower_order: int = 2,
        upper_order: int = 2,
        seed: SeedLike = None,
        engine: str = "batched",
    ) -> None:
        super().__init__(seed)
        if bk < 2:
            raise SamplingError(f"bk must be >= 2, got {bk}")
        self._bk = int(bk)
        self._epsilon, self._delta = validate_epsilon_delta(epsilon, delta)
        self._lower_order = int(lower_order)
        self._upper_order = int(upper_order)
        self._engine = reverse_engine(engine)

    def _detect(self, graph: UncertainGraph, k: int) -> DetectionResult:
        rng = make_rng(self._seed)
        lower, upper = bound_pair(graph, self._lower_order, self._upper_order)
        reduction = reduce_candidates(graph, lower, upper, k)
        processed = 0
        stopped_early = False
        nodes_touched = edges_touched = 0
        if reduction.k_remaining > 0:
            budget = reduced_sample_size(
                reduction.candidate_size,
                k,
                reduction.k_verified,
                self._epsilon,
                self._delta,
            )
            # Hash every sample id; since sample contents are i.i.d. and
            # independent of the hashes, materialising them in ascending
            # hash order is distributionally identical to materialising
            # them in id order and sorting afterwards — but lets us stop.
            hashes = np.sort(rng.random(budget))
            stopper = BottomKStopper(
                num_candidates=reduction.candidate_size,
                bk=self._bk,
                total_samples=budget,
                stop_after=reduction.k_remaining,
            )
            sampler = self._engine(graph, reduction.candidates, seed=rng)
            for sample_hash, outcome in zip(
                hashes, sampler.iter_samples(budget)
            ):
                stopper.offer(float(sample_hash), outcome)
                if stopper.should_stop:
                    stopped_early = True
                    break
            processed = stopper.processed
            nodes_touched = sampler.nodes_touched
            edges_touched = sampler.edges_touched
            probabilities = np.clip(stopper.estimates(), 0.0, 1.0)
        else:
            probabilities = None
        nodes, scores = assemble_answer(graph, reduction, lower, probabilities, k)
        return DetectionResult(
            method=self.name,
            k=k,
            nodes=nodes,
            scores=scores,
            samples_used=processed,
            candidate_size=reduction.candidate_size,
            k_verified=reduction.k_verified,
            elapsed_seconds=0.0,
            details={
                "bk": self._bk,
                "epsilon": self._epsilon,
                "delta": self._delta,
                "lower_order": self._lower_order,
                "upper_order": self._upper_order,
                "stopped_early": stopped_early,
                **reduction.summary(),
                "nodes_touched": nodes_touched,
                "edges_touched": edges_touched,
            },
        )
