"""Method BSR — bounds + candidate reduction + reverse sampling.

The full optimised pipeline of Section 3.2:

1. derive order-``z`` lower/upper bounds (Algorithms 2/3);
2. run Algorithm 4 — verify ``k'`` answers outright (rule 1) and prune the
   rest of the universe down to the candidate set ``B`` (rule 2);
3. estimate only ``B`` with the reverse sampler (Algorithm 5), using the
   reduced Equation-(4) budget of Theorem 5;
4. return the verified nodes plus the best ``k - k'`` sampled candidates.
"""

from __future__ import annotations

from repro.algorithms.base import DetectionResult, VulnerableNodeDetector
from repro.bounds.candidates import CandidateReduction, reduce_candidates
from repro.bounds.iterative import bound_pair
from repro.core.errors import SamplingError
from repro.core.graph import NodeLabel, UncertainGraph
from repro.core.topk import top_k_indices
from repro.sampling.reverse import reverse_engine
from repro.sampling.rng import SeedLike
from repro.sampling.sample_size import reduced_sample_size, validate_epsilon_delta

__all__ = ["BoundedSampleReverseDetector", "assemble_answer"]


def assemble_answer(
    graph: UncertainGraph,
    reduction: CandidateReduction,
    lower,
    candidate_probabilities,
    k: int,
) -> tuple[list[NodeLabel], dict[NodeLabel, float]]:
    """Merge verified nodes with sampled candidates into the final answer.

    Verified nodes come first (their membership is certain; ranked by the
    certifying lower bound), followed by the best ``k - k'`` candidates by
    estimated probability.  Shared by BSR and BSRBK.
    """
    nodes: list[NodeLabel] = []
    scores: dict[NodeLabel, float] = {}
    for index in reduction.verified:
        label = graph.label(int(index))
        nodes.append(label)
        scores[label] = float(lower[index])
    remaining = k - reduction.k_verified
    if remaining > 0:
        if reduction.candidate_size < remaining:
            raise SamplingError(
                f"candidate set ({reduction.candidate_size}) smaller than "
                f"remaining answers ({remaining}); bounds are inconsistent"
            )
        top_positions = top_k_indices(candidate_probabilities, remaining)
        for position in top_positions:
            index = int(reduction.candidates[position])
            label = graph.label(index)
            nodes.append(label)
            scores[label] = float(candidate_probabilities[position])
    return nodes, scores


class BoundedSampleReverseDetector(VulnerableNodeDetector):
    """Bounds + verification + reverse sampling (method **BSR**).

    Parameters
    ----------
    epsilon, delta:
        Approximation target of Theorem 5.
    lower_order, upper_order:
        Iteration counts ``z`` for Algorithms 2 and 3 (Figure 5 tunes
        these; the paper fixes both to 2).
    seed:
        Randomness control.
    engine:
        Reverse-sampling engine: ``"indexed"`` (counter-PRF worlds,
        individually re-evaluable — the default, shared with the
        streaming monitor), ``"batched"`` (vectorised sequential
        stream) or ``"reference"`` (the per-candidate Algorithm-5 BFS).
    """

    name = "BSR"

    def __init__(
        self,
        epsilon: float = 0.3,
        delta: float = 0.1,
        lower_order: int = 2,
        upper_order: int = 2,
        seed: SeedLike = None,
        engine: str = "indexed",
    ) -> None:
        super().__init__(seed)
        self._epsilon, self._delta = validate_epsilon_delta(epsilon, delta)
        self._lower_order = int(lower_order)
        self._upper_order = int(upper_order)
        self._engine = reverse_engine(engine)

    def _detect(self, graph: UncertainGraph, k: int) -> DetectionResult:
        lower, upper = bound_pair(graph, self._lower_order, self._upper_order)
        reduction = reduce_candidates(graph, lower, upper, k)
        samples = 0
        nodes_touched = edges_touched = 0
        if reduction.k_remaining > 0:
            samples = reduced_sample_size(
                reduction.candidate_size,
                k,
                reduction.k_verified,
                self._epsilon,
                self._delta,
            )
            sampler = self._engine(graph, reduction.candidates, seed=self._seed)
            probabilities = sampler.run(samples).probabilities
            nodes_touched = sampler.nodes_touched
            edges_touched = sampler.edges_touched
        else:
            probabilities = None
        nodes, scores = assemble_answer(graph, reduction, lower, probabilities, k)
        return DetectionResult(
            method=self.name,
            k=k,
            nodes=nodes,
            scores=scores,
            samples_used=samples,
            candidate_size=reduction.candidate_size,
            k_verified=reduction.k_verified,
            elapsed_seconds=0.0,
            details={
                "epsilon": self._epsilon,
                "delta": self._delta,
                "lower_order": self._lower_order,
                "upper_order": self._upper_order,
                **reduction.summary(),
                "nodes_touched": nodes_touched,
                "edges_touched": edges_touched,
            },
        )
