"""Forward Monte-Carlo sampling — Algorithm 1 of the paper.

Two interchangeable engines are provided:

* :func:`forward_sample_reference` — a line-by-line transcription of the
  paper's Algorithm 1 inner loop (one possible world, pure Python).  It is
  the executable specification and is only used directly by tests and by
  callers that need per-world introspection.
* :class:`ForwardSampler` — a batched, numpy-vectorised engine that
  materialises many worlds at once and propagates defaults with segment
  reductions.  Statistically identical to the reference (the tests check
  agreement), 1–2 orders of magnitude faster.

Both estimate, for every node ``v``, the default probability ``p(v)`` as
the fraction of sampled worlds in which ``v`` defaults.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.errors import SamplingError
from repro.core.graph import UncertainGraph
from repro.sampling.rng import SeedLike, make_rng

__all__ = ["forward_sample_reference", "ForwardSampler", "ForwardEstimate"]


def forward_sample_reference(
    graph: UncertainGraph, rng: np.random.Generator
) -> np.ndarray:
    """One possible world, exactly as in Algorithm 1 lines 3–19.

    Every node draws a uniform number against its self-risk; a BFS from
    the self-defaulting nodes then draws one uniform number per first
    encounter of an edge to decide whether contagion crosses it.

    Returns
    -------
    numpy.ndarray
        Boolean ``hv`` array over internal node indices: which nodes
        default in this world.
    """
    n = graph.num_nodes
    ps = graph.self_risk_array
    out = graph.out_csr()
    hv = rng.random(n) <= ps  # lines 4-7
    visited = hv.copy()  # line 9: nodes outside Q start unvisited
    queue: deque[int] = deque(int(i) for i in np.flatnonzero(hv))  # line 8
    while queue:  # lines 10-19
        vq = queue.popleft()
        start, stop = out.indptr[vq], out.indptr[vq + 1]
        for pos in range(start, stop):
            va = int(out.indices[pos])
            if visited[va]:
                continue
            if rng.random() > out.probs[pos]:  # lines 14-16
                continue
            hv[va] = True
            visited[va] = True
            queue.append(va)
    return hv


@dataclass(frozen=True)
class ForwardEstimate:
    """Result of a forward-sampling run.

    Attributes
    ----------
    counts:
        Per-node default counts (the accumulated ``vc`` of Algorithm 1).
    samples:
        Number of worlds sampled (``t``).
    """

    counts: np.ndarray
    samples: int

    @property
    def probabilities(self) -> np.ndarray:
        """Estimated default probabilities ``vc / t``."""
        return self.counts / float(self.samples)


class ForwardSampler:
    """Vectorised forward sampling engine.

    Parameters
    ----------
    graph:
        The uncertain graph to sample.
    seed:
        Seed, generator or ``None``; see :func:`repro.sampling.rng.make_rng`.
    batch_size:
        Worlds materialised per numpy batch.  Larger batches amortise
        Python overhead at the cost of ``batch_size * num_edges`` booleans
        of memory.

    Notes
    -----
    Per batch the engine draws the full node-default matrix and the full
    edge-survival matrix up front.  Algorithm 1 draws edge variables lazily
    on first encounter, but each edge variable is an independent Bernoulli
    either way, so the sampled distribution over worlds is identical; only
    the random-stream consumption differs.
    """

    def __init__(
        self,
        graph: UncertainGraph,
        seed: SeedLike = None,
        batch_size: int = 256,
    ) -> None:
        if batch_size <= 0:
            raise SamplingError(f"batch_size must be positive, got {batch_size}")
        self._graph = graph
        self._rng = make_rng(seed)
        self._batch_size = int(batch_size)
        self._ps = graph.self_risk_array
        #: Work counters comparable with :class:`ReverseSampler`'s: how
        #: many per-world node draws and edge examinations Algorithm 1
        #: performs (engine-neutral cost of the sampling, used by the
        #: Figure-6 efficiency experiment).
        self.nodes_touched = 0
        self.edges_touched = 0
        src, dst, prob = graph.edge_array
        # Edges sorted by destination enable a per-destination segment OR.
        # The probability vector is pre-permuted into that order once, so
        # each batch draws survival matrices directly in-order instead of
        # materialising a full ``batch x m`` gather per batch.
        in_csr = graph.in_csr()
        self._in_order = in_csr.edge_ids  # edge ids sorted by destination
        self._in_indptr = in_csr.indptr
        self._edge_prob_in_order = prob[self._in_order]
        nonempty = np.flatnonzero(np.diff(self._in_indptr) > 0)
        self._nonempty_nodes = nonempty
        self._nonempty_starts = self._in_indptr[nonempty]
        self._edge_src_in_order = src[self._in_order]

    @property
    def graph(self) -> UncertainGraph:
        """The graph this sampler draws worlds from."""
        return self._graph

    def sample_batch(self, batch: int) -> np.ndarray:
        """Materialise *batch* worlds and return their default matrices.

        Returns
        -------
        numpy.ndarray
            Boolean array of shape ``(batch, num_nodes)``; row ``i`` is the
            ``hv`` vector of world ``i``.
        """
        n = self._graph.num_nodes
        m = self._graph.num_edges
        defaulted = self._rng.random((batch, n)) <= self._ps
        self.nodes_touched += batch * n  # lines 4-7 draw for every node
        if m == 0 or not defaulted.any():
            return defaulted
        survives_in_order = self._rng.random((batch, m)) <= self._edge_prob_in_order
        frontier = defaulted.copy()
        while True:
            # Which in-ordered edges carry contagion out of the frontier.
            # Algorithm 1 examines each out-edge of every frontier node.
            src_active = frontier[:, self._edge_src_in_order]
            self.edges_touched += int(src_active.sum())
            active = src_active & survives_in_order
            if not active.any():
                break
            reached = np.zeros((batch, n), dtype=bool)
            segment_or = np.bitwise_or.reduceat(
                active, self._nonempty_starts, axis=1
            )
            reached[:, self._nonempty_nodes] = segment_or
            frontier = reached & ~defaulted
            if not frontier.any():
                break
            defaulted |= frontier
        return defaulted

    def run(self, samples: int) -> ForwardEstimate:
        """Sample *samples* worlds and accumulate default counts."""
        if samples <= 0:
            raise SamplingError(f"samples must be positive, got {samples}")
        counts = np.zeros(self._graph.num_nodes, dtype=np.int64)
        remaining = int(samples)
        while remaining > 0:
            batch = min(self._batch_size, remaining)
            counts += self.sample_batch(batch).sum(axis=0)
            remaining -= batch
        return ForwardEstimate(counts=counts, samples=int(samples))

    def estimate_probabilities(self, samples: int) -> np.ndarray:
        """Convenience wrapper: estimated ``p(v)`` for every node."""
        return self.run(samples).probabilities
