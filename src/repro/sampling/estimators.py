"""Confidence intervals for sampled default probabilities.

The detectors report point estimates; risk reports want uncertainty.
Two standard interval constructions over Bernoulli counts are provided:

* :func:`hoeffding_interval` — distribution-free, matches the theory the
  paper's guarantees are built on (Theorem 2);
* :func:`wilson_interval` — the Wilson score interval, much tighter for
  probabilities near 0 or 1 (where loan books live).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.errors import SamplingError

__all__ = ["ProbabilityInterval", "hoeffding_interval", "wilson_interval"]


@dataclass(frozen=True)
class ProbabilityInterval:
    """A two-sided confidence interval for a probability."""

    estimate: float
    lower: float
    upper: float
    confidence: float

    def __post_init__(self) -> None:
        if not self.lower <= self.estimate <= self.upper:
            raise SamplingError(
                f"inconsistent interval: {self.lower} <= {self.estimate} "
                f"<= {self.upper} violated"
            )

    @property
    def width(self) -> float:
        """Upper minus lower bound."""
        return self.upper - self.lower

    def contains(self, value: float) -> bool:
        """Whether *value* lies inside the interval."""
        return self.lower <= value <= self.upper


def _validate(successes: int, samples: int, confidence: float) -> None:
    if samples <= 0:
        raise SamplingError(f"samples must be positive, got {samples}")
    if not 0 <= successes <= samples:
        raise SamplingError(
            f"successes must be in [0, {samples}], got {successes}"
        )
    if not 0.0 < confidence < 1.0:
        raise SamplingError(
            f"confidence must be in (0, 1), got {confidence}"
        )


def hoeffding_interval(
    successes: int, samples: int, confidence: float = 0.95
) -> ProbabilityInterval:
    """Two-sided Hoeffding interval: estimate ± sqrt(ln(2/α) / 2t)."""
    _validate(successes, samples, confidence)
    estimate = successes / samples
    alpha = 1.0 - confidence
    radius = math.sqrt(math.log(2.0 / alpha) / (2.0 * samples))
    return ProbabilityInterval(
        estimate=estimate,
        lower=max(0.0, estimate - radius),
        upper=min(1.0, estimate + radius),
        confidence=confidence,
    )


#: Standard-normal quantiles for the confidences risk reports use.
_Z_TABLE = {0.80: 1.2816, 0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def _z_for(confidence: float) -> float:
    if confidence in _Z_TABLE:
        return _Z_TABLE[confidence]
    # Beasley-Springer-Moro style rational approximation of the normal
    # quantile for arbitrary confidences.
    p = 1.0 - (1.0 - confidence) / 2.0
    t = math.sqrt(-2.0 * math.log(1.0 - p))
    return t - (2.30753 + 0.27061 * t) / (1.0 + 0.99229 * t + 0.04481 * t * t)


def wilson_interval(
    successes: int, samples: int, confidence: float = 0.95
) -> ProbabilityInterval:
    """Wilson score interval — tight near the unit interval's edges."""
    _validate(successes, samples, confidence)
    estimate = successes / samples
    z = _z_for(confidence)
    z2 = z * z
    denominator = 1.0 + z2 / samples
    centre = (estimate + z2 / (2.0 * samples)) / denominator
    radius = (
        z
        * math.sqrt(
            estimate * (1.0 - estimate) / samples
            + z2 / (4.0 * samples * samples)
        )
        / denominator
    )
    # Absorb one-ulp float noise: the Wilson interval provably contains
    # the point estimate, but centre+radius can round just below it at
    # the boundaries (e.g. successes == samples).
    lower = min(max(0.0, centre - radius), estimate)
    upper = max(min(1.0, centre + radius), estimate)
    return ProbabilityInterval(
        estimate=estimate,
        lower=lower,
        upper=upper,
        confidence=confidence,
    )
