"""Monte-Carlo sampling engines and sample-size theory (paper Section 3)."""

from repro.sampling.estimators import (
    ProbabilityInterval,
    hoeffding_interval,
    wilson_interval,
)
from repro.sampling.forward import ForwardEstimate, ForwardSampler, forward_sample_reference
from repro.sampling.indexed import (
    IndexedReverseSampler,
    WorldBlock,
    derive_stream_key,
    hashed_uniforms,
)
from repro.sampling.reverse import (
    BatchedReverseSampler,
    ReverseSampler,
    ReverseWorld,
    WorldArena,
    reverse_engine,
)
from repro.sampling.rng import RandomBlock, SeedLike, make_rng, spawn_rngs
from repro.sampling.sample_size import (
    basic_sample_size,
    epsilon_for_sample_size,
    hoeffding_pair_tail,
    reduced_sample_size,
    validate_epsilon_delta,
)

__all__ = [
    "ProbabilityInterval",
    "hoeffding_interval",
    "wilson_interval",
    "ForwardEstimate",
    "ForwardSampler",
    "forward_sample_reference",
    "BatchedReverseSampler",
    "IndexedReverseSampler",
    "WorldBlock",
    "derive_stream_key",
    "hashed_uniforms",
    "ReverseSampler",
    "ReverseWorld",
    "WorldArena",
    "RandomBlock",
    "reverse_engine",
    "SeedLike",
    "make_rng",
    "spawn_rngs",
    "basic_sample_size",
    "epsilon_for_sample_size",
    "hoeffding_pair_tail",
    "reduced_sample_size",
    "validate_epsilon_delta",
]
