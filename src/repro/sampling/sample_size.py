"""Sample-size theory from Section 3 of the paper.

Implements the Hoeffding tail bound (Theorem 2/3), the basic sample size
of Equation (3) / Theorem 4, and the reduced sample size of Equation (4) /
Theorem 5 used after candidate reduction.

All functions are pure and cheap; they are exercised heavily by the
property-based tests (monotonicity in each parameter).
"""

from __future__ import annotations

import math

from repro.core.errors import SamplingError

__all__ = [
    "hoeffding_pair_tail",
    "basic_sample_size",
    "reduced_sample_size",
    "epsilon_for_sample_size",
    "validate_epsilon_delta",
]


def validate_epsilon_delta(epsilon: float, delta: float) -> tuple[float, float]:
    """Check that ``epsilon, delta`` lie in ``(0, 1)`` and return them."""
    epsilon = float(epsilon)
    delta = float(delta)
    if not 0.0 < epsilon < 1.0:
        raise SamplingError(f"epsilon must be in (0, 1), got {epsilon}")
    if not 0.0 < delta < 1.0:
        raise SamplingError(f"delta must be in (0, 1), got {delta}")
    return epsilon, delta


def hoeffding_pair_tail(t: int, epsilon: float) -> float:
    """Theorem 3: ``Pr[pu - pv > 0] <= exp(-t eps^2 / 2)``.

    The probability that *t* samples mis-order a pair of nodes whose true
    default probabilities differ by at least *epsilon*.
    """
    if t < 0:
        raise SamplingError(f"sample size must be non-negative, got {t}")
    return math.exp(-t * epsilon * epsilon / 2.0)


def _pairs_to_bound(k: int, n: int) -> int:
    """Number of node pairs whose order must be bounded, ``k (n - k)``.

    Degenerate inputs (``k == 0`` or ``k == n``) have nothing to order —
    the answer set is forced — and are reported as zero pairs; callers
    short-circuit to a single formal sample in that case.
    """
    if k < 0 or n < 0 or k > n:
        raise SamplingError(f"need 0 <= k <= n, got k={k}, n={n}")
    return k * (n - k)


def basic_sample_size(n: int, k: int, epsilon: float, delta: float) -> int:
    """Equation (3): samples needed for an (eps, delta)-approximation.

        t = ceil( 2 / eps^2 * ln( k (n - k) / delta ) )

    Parameters
    ----------
    n:
        Number of nodes considered (the candidate universe).
    k:
        Size of the answer set.
    epsilon, delta:
        Approximation parameters of Definition 2.
    """
    epsilon, delta = validate_epsilon_delta(epsilon, delta)
    pairs = _pairs_to_bound(k, n)
    if pairs == 0:
        return 1  # answer set forced; nothing to order
    t = 2.0 / (epsilon * epsilon) * math.log(pairs / delta)
    return max(1, math.ceil(t))


def reduced_sample_size(
    candidate_size: int,
    k: int,
    k_verified: int,
    epsilon: float,
    delta: float,
) -> int:
    """Equation (4): sample size after candidate reduction.

        t = ceil( 2 / eps^2 * ln( (k - k') (|B| - k + k') / delta ) )

    Parameters
    ----------
    candidate_size:
        ``|B|``, nodes that survived the pruning of Algorithm 4.
    k:
        Requested answer size.
    k_verified:
        ``k'``, nodes already verified into the answer by Lemma 1 rule 1.
    epsilon, delta:
        Approximation parameters.
    """
    epsilon, delta = validate_epsilon_delta(epsilon, delta)
    if k_verified < 0 or k_verified > k:
        raise SamplingError(
            f"verified count must be in [0, k], got k'={k_verified}, k={k}"
        )
    remaining = k - k_verified
    pairs = _pairs_to_bound(remaining, max(candidate_size, remaining))
    if pairs == 0:
        return 1  # everything verified or forced; nothing to order
    t = 2.0 / (epsilon * epsilon) * math.log(pairs / delta)
    return max(1, math.ceil(t))


def epsilon_for_sample_size(t: int, n: int, k: int, delta: float) -> float:
    """Invert Equation (3): the guarantee a fixed budget *t* buys.

    Useful for reporting what approximation quality the naive fixed-budget
    method N actually certifies.
    """
    if t <= 0:
        raise SamplingError(f"sample size must be positive, got {t}")
    _, delta = validate_epsilon_delta(0.5, delta)
    pairs = max(_pairs_to_bound(k, n), 1)
    return math.sqrt(2.0 * math.log(pairs / delta) / t)
