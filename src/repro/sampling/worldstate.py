"""Per-world touched-entity state, dense and bit-packed.

The streaming :class:`~repro.streaming.monitor.TopKMonitor` keeps, for
every cached possible world, the set of entities that world actually
drew: a patched entity can only invalidate worlds that drew it, so these
masks are what turns the counter-PRF's crossing test from "expected
``|Δp|`` of all worlds" into "expected ``|Δp|`` of the worlds that even
looked at the entity".  PR 3 stored them as dense ``(samples, n)`` /
``(samples, m)`` booleans, which caps exact repair at graphs where
``samples * (n + m)`` bytes fit the world-state budget.

This module provides two interchangeable representations behind one
interface (the bit-identity tests drive both and assert equal answers,
repair sets and draw counters):

* :class:`DenseWorldState` — the PR-3 layout, kept as the executable
  baseline and benchmark foil;
* :class:`PackedWorldState` — two bit-packed ``uint64`` matrices of
  ``n`` bits per world (touched nodes, *expanded* nodes) plus an
  entity→worlds inverted CSR index.  Edge masks are never materialised:
  edge ``e`` was drawn in a world iff its head node was expanded there
  (see :mod:`repro.sampling.indexed`), so the ``m``-bit mask collapses
  onto the ``n``-bit expanded mask.  With ``m ≈ 3n`` this stores world
  state in ``2n/8`` bytes instead of ``4n`` — a ~16× reduction — and
  per-world draw counters fall out of popcounts
  (``node_draws == popcount(touched)``,
  ``edge_draws == Σ in_degree over expanded``).

Both classes answer the two queries the monitor's repair pipeline is
built from:

* ``node_pairs(entities)`` / ``edge_pairs(edge_ids, heads)`` — the
  ``(world row, entity position)`` pairs where the entity was drawn, the
  input to one bulk counter-PRF crossing test per refresh;
* ``merge_block(rows, block)`` — OR a freshly-explored closure (an
  added candidate's worlds) into existing rows, returning the exact
  per-row draw-count deltas, which is what makes incremental
  candidate-set repair's work telemetry equal a from-scratch union run.
"""

from __future__ import annotations

from typing import Callable, Hashable, Sequence, TypeVar

import numpy as np

from repro.core.errors import SamplingError
from repro.core.graph import UncertainGraph
from repro.core.propagation import propagate_defaults_block
from repro.sampling.rng import (
    SeedLike,
    derive_stream_key,
    hashed_mantissas_inplace,
)

__all__ = [
    "pack_bool_rows",
    "unpack_bool_rows",
    "popcount",
    "DenseWorldState",
    "PackedWorldState",
    "WorldView",
]

_T = TypeVar("_T")

#: Explicit little-endian word dtype so byte views agree on every platform.
_WORD = np.dtype("<u8")
_ONE = np.uint64(1)
_SIX = np.uint64(6)
_MASK_63 = np.uint64(63)

if hasattr(np, "bitwise_count"):  # numpy >= 2.0

    def popcount(words: np.ndarray) -> np.ndarray:
        """Per-element popcount of a ``uint64`` array."""
        return np.bitwise_count(words)

else:  # pragma: no cover - exercised only on numpy < 2.0
    _POP8 = np.array(
        [bin(value).count("1") for value in range(256)], dtype=np.uint8
    )

    def popcount(words: np.ndarray) -> np.ndarray:
        """Per-element popcount of a ``uint64`` array (byte-LUT fallback)."""
        as_bytes = np.ascontiguousarray(words).view(np.uint8)
        return (
            _POP8[as_bytes]
            .reshape(*words.shape, 8)
            .sum(axis=-1, dtype=np.uint8)
        )


def _num_words(cols: int) -> int:
    return (int(cols) + 63) // 64


def pack_bool_rows(dense: np.ndarray) -> np.ndarray:
    """Bit-pack a boolean ``(R, C)`` matrix along its columns.

    Returns a ``(R, ceil(C/64))`` little-endian ``uint64`` matrix where
    column ``c`` lives at word ``c >> 6``, bit ``c & 63``.
    """
    dense = np.asarray(dense, dtype=bool)
    rows, cols = dense.shape
    words = _num_words(cols)
    packed8 = np.packbits(dense, axis=1, bitorder="little")
    if packed8.shape[1] != words * 8:
        padded = np.zeros((rows, words * 8), dtype=np.uint8)
        padded[:, : packed8.shape[1]] = packed8
        packed8 = padded
    return np.ascontiguousarray(packed8).view(_WORD)


def unpack_bool_rows(words: np.ndarray, cols: int) -> np.ndarray:
    """Invert :func:`pack_bool_rows` back to a boolean ``(R, cols)`` matrix."""
    as_bytes = np.ascontiguousarray(words).view(np.uint8)
    return np.unpackbits(
        as_bytes, axis=1, bitorder="little", count=int(cols)
    ).astype(bool)


def _column_bits(words: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Boolean ``(R, len(cols))`` matrix of the requested bit columns."""
    cols = np.asarray(cols, dtype=np.uint64)
    gathered = words[:, (cols >> _SIX).astype(np.int64)]
    return ((gathered >> (cols & _MASK_63)[None, :]) & _ONE).astype(bool)


class DenseWorldState:
    """The PR-3 representation: dense boolean touched masks.

    ``(worlds, n)`` touched-node and ``(worlds, m)`` touched-edge
    booleans.  Kept as the baseline the packed representation is
    bit-identity-tested and benchmarked against.
    """

    collect_mode = "dense"
    kind = "dense"

    __slots__ = ("touched_nodes", "touched_edges", "_n", "_m")

    def __init__(self, worlds: int, num_nodes: int, num_edges: int) -> None:
        self._n = int(num_nodes)
        self._m = int(num_edges)
        self.touched_nodes = np.zeros((worlds, self._n), dtype=bool)
        self.touched_edges = np.zeros((worlds, self._m), dtype=bool)

    @staticmethod
    def bytes_needed(worlds: int, num_nodes: int, num_edges: int) -> int:
        """Storage this representation needs for *worlds* worlds."""
        return int(worlds) * (int(num_nodes) + int(num_edges))

    @property
    def worlds(self) -> int:
        """Number of world rows currently held."""
        return self.touched_nodes.shape[0]

    @property
    def nbytes(self) -> int:
        """Actual bytes held by the state."""
        return self.touched_nodes.nbytes + self.touched_edges.nbytes

    def store_block(self, rows: np.ndarray, block) -> None:
        """Overwrite *rows* with a freshly explored ``WorldBlock``."""
        self.touched_nodes[rows] = block.touched_nodes
        self.touched_edges[rows] = block.touched_edges

    def merge_block(
        self, rows: np.ndarray, block
    ) -> tuple[np.ndarray, np.ndarray]:
        """OR a block into *rows*; returns exact per-row draw deltas.

        The closure explored from a union of candidate sets is the union
        of the per-set closures (realisations are entity-indexed), so
        OR-ing an added candidate's closure into the stored masks yields
        exactly the masks a from-scratch union exploration would, and
        the draw-count deltas are the newly-set bits.
        """
        node_delta = (block.touched_nodes & ~self.touched_nodes[rows]).sum(
            axis=1
        )
        edge_delta = (block.touched_edges & ~self.touched_edges[rows]).sum(
            axis=1
        )
        self.touched_nodes[rows] |= block.touched_nodes
        self.touched_edges[rows] |= block.touched_edges
        return node_delta.astype(np.int64), edge_delta.astype(np.int64)

    def node_pairs(
        self, entities: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(world row, position)`` pairs where each node was drawn."""
        return np.nonzero(self.touched_nodes[:, entities])

    def edge_pairs(
        self, edge_ids: np.ndarray, heads: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(world row, position)`` pairs where each edge was drawn."""
        return np.nonzero(self.touched_edges[:, edge_ids])

    def node_draws(self) -> np.ndarray:
        """Per-row distinct node-draw counts (mask row sums)."""
        return self.touched_nodes.sum(axis=1, dtype=np.int64)

    def edge_draws(self) -> np.ndarray:
        """Per-row distinct edge-draw counts (mask row sums)."""
        return self.touched_edges.sum(axis=1, dtype=np.int64)

    def resize(self, worlds: int) -> None:
        """Grow (zero-filled) or truncate to *worlds* rows."""
        current = self.worlds
        if worlds == current:
            return
        if worlds < current:
            self.touched_nodes = self.touched_nodes[:worlds].copy()
            self.touched_edges = self.touched_edges[:worlds].copy()
            return
        nodes = np.zeros((worlds, self._n), dtype=bool)
        edges = np.zeros((worlds, self._m), dtype=bool)
        nodes[:current] = self.touched_nodes
        edges[:current] = self.touched_edges
        self.touched_nodes, self.touched_edges = nodes, edges

    def extend(self, num_nodes: int, num_edges: int) -> None:
        """Append entity columns for appended nodes/edges (zero-filled).

        Topology growth is append-only, so existing columns keep their
        positions; the new entities start untouched in every cached
        world — exactly what a fresh exploration of an unaffected world
        would record, since a closure can only reach a new entity
        through a new edge.
        """
        if num_nodes < self._n or num_edges < self._m:
            raise SamplingError("world state only extends, never shrinks")
        if num_nodes > self._n:
            nodes = np.zeros((self.worlds, num_nodes), dtype=bool)
            nodes[:, : self._n] = self.touched_nodes
            self.touched_nodes = nodes
            self._n = int(num_nodes)
        if num_edges > self._m:
            edges = np.zeros((self.worlds, num_edges), dtype=bool)
            edges[:, : self._m] = self.touched_edges
            self.touched_edges = edges
            self._m = int(num_edges)


class PackedWorldState:
    """Bit-packed world state with an entity→worlds inverted index.

    Two ``(worlds, ceil(n/64))`` little-endian ``uint64`` matrices —
    touched nodes and expanded nodes — carry the full dense information
    (edge ``e`` drawn iff ``heads[e]`` expanded).  An inverted CSR over
    the touched-node bits accelerates ``entity → candidate worlds``
    lookups; rows repaired since the last index build are tracked as
    *stale* and always treated as candidates, and every candidate list
    is filtered through the exact packed bits, so query answers never
    depend on index freshness.  The index is skipped outright when the
    touch density is so high that it would rival the packed matrices in
    size (column bit-scans are the fallback, still exact).

    Parameters
    ----------
    worlds, num_nodes, num_edges:
        State dimensions.
    heads:
        ``(m,)`` head (destination) node of every edge id — the map from
        edge queries onto the expanded-node bits.
    in_degrees:
        ``(n,)`` in-degree of every node; ``Σ in_degree over expanded``
        is a world's exact edge-draw count.
    """

    collect_mode = "compact"
    kind = "packed"

    #: Rebuild the inverted index once this fraction of rows went stale.
    STALE_REBUILD_FRACTION = 0.25
    #: Below this many world rows a column bit-scan answers an
    #: entity→worlds query in microseconds, so building the index (a
    #: full scan of every packed bit) can never amortise; it switches on
    #: for the large sample counts where column gathers start to hurt.
    INDEX_MIN_WORLDS = 4096

    __slots__ = (
        "touched_words",
        "expanded_words",
        "_n",
        "_m",
        "_heads",
        "_in_degrees",
        "_index_indptr",
        "_index_rows",
        "_index_disabled",
        "_stale_rows",
    )

    def __init__(
        self,
        worlds: int,
        num_nodes: int,
        num_edges: int,
        *,
        heads: np.ndarray,
        in_degrees: np.ndarray,
    ) -> None:
        self._n = int(num_nodes)
        self._m = int(num_edges)
        heads = np.asarray(heads, dtype=np.int64)
        in_degrees = np.asarray(in_degrees, dtype=np.int64)
        if heads.shape != (self._m,):
            raise SamplingError(
                f"heads must have shape ({self._m},), got {heads.shape}"
            )
        if in_degrees.shape != (self._n,):
            raise SamplingError(
                f"in_degrees must have shape ({self._n},), "
                f"got {in_degrees.shape}"
            )
        self._heads = heads
        self._in_degrees = in_degrees
        words = _num_words(self._n)
        self.touched_words = np.zeros((worlds, words), dtype=_WORD)
        self.expanded_words = np.zeros((worlds, words), dtype=_WORD)
        self._index_indptr: np.ndarray | None = None
        self._index_rows: np.ndarray | None = None
        self._index_disabled = False
        self._stale_rows: set[int] = set(range(worlds))

    @staticmethod
    def bytes_needed(worlds: int, num_nodes: int, num_edges: int) -> int:
        """Packed-mask storage needed for *worlds* worlds (index excluded —
        it is a rebuildable accelerator, size-capped below mask storage)."""
        return int(worlds) * 2 * _num_words(num_nodes) * 8

    @property
    def worlds(self) -> int:
        """Number of world rows currently held."""
        return self.touched_words.shape[0]

    @property
    def nbytes(self) -> int:
        """Actual bytes held: packed masks plus the live inverted index."""
        total = self.touched_words.nbytes + self.expanded_words.nbytes
        if self._index_rows is not None:
            total += self._index_rows.nbytes + self._index_indptr.nbytes
        return total

    @property
    def has_index(self) -> bool:
        """Whether the inverted entity→worlds index is currently built."""
        return self._index_rows is not None

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def store_block(self, rows: np.ndarray, block) -> None:
        """Overwrite *rows* with a freshly explored ``WorldBlock``."""
        self.touched_words[rows] = pack_bool_rows(block.touched_nodes)
        self.expanded_words[rows] = pack_bool_rows(block.expanded_nodes)
        self._mark_stale(rows)

    def merge_block(
        self, rows: np.ndarray, block
    ) -> tuple[np.ndarray, np.ndarray]:
        """OR a block into *rows*; returns exact per-row draw deltas.

        Node deltas are popcounts of the newly-set touched bits; edge
        deltas are the in-degree sums of the newly-expanded nodes (every
        in-edge of a node is drawn exactly when the node is expanded).
        """
        touched_new = pack_bool_rows(block.touched_nodes)
        node_delta = popcount(
            touched_new & ~self.touched_words[rows]
        ).sum(axis=1, dtype=np.int64)
        self.touched_words[rows] |= touched_new
        old_expanded = unpack_bool_rows(self.expanded_words[rows], self._n)
        newly_expanded = block.expanded_nodes & ~old_expanded
        edge_delta = newly_expanded @ self._in_degrees
        self.expanded_words[rows] |= pack_bool_rows(block.expanded_nodes)
        self._mark_stale(rows)
        return node_delta, edge_delta.astype(np.int64)

    def resize(self, worlds: int) -> None:
        """Grow (zero-filled) or truncate to *worlds* rows."""
        current = self.worlds
        if worlds == current:
            return
        if worlds < current:
            self.touched_words = self.touched_words[:worlds].copy()
            self.expanded_words = self.expanded_words[:worlds].copy()
            self._stale_rows = {r for r in self._stale_rows if r < worlds}
            self._drop_index()  # may reference truncated rows
            return
        words = self.touched_words.shape[1]
        touched = np.zeros((worlds, words), dtype=_WORD)
        expanded = np.zeros((worlds, words), dtype=_WORD)
        touched[:current] = self.touched_words
        expanded[:current] = self.expanded_words
        self.touched_words, self.expanded_words = touched, expanded
        self._stale_rows.update(range(current, worlds))

    def extend(
        self,
        num_nodes: int,
        num_edges: int,
        *,
        heads: np.ndarray,
        in_degrees: np.ndarray,
    ) -> None:
        """Append entity columns (bits) for appended nodes/edges.

        New node bits start clear in every cached world — a closure can
        only reach a new entity through a new edge, so an unaffected
        world's masks are already exactly what a fresh exploration would
        record.  *heads* / *in_degrees* are the **grown** graph's edge
        heads and node in-degrees: existing edges keep their ids
        (append-only growth), so the head table is a pure extension,
        while in-degrees of existing nodes may grow — the edge-draw
        identity ``Σ in_degree over expanded`` stays exact for worlds
        whose expanded set contains no new edge's head, and every other
        world must be repaired by the caller anyway.
        """
        if num_nodes < self._n or num_edges < self._m:
            raise SamplingError("world state only extends, never shrinks")
        heads = np.asarray(heads, dtype=np.int64)
        in_degrees = np.asarray(in_degrees, dtype=np.int64)
        if heads.shape != (int(num_edges),):
            raise SamplingError(
                f"heads must have shape ({num_edges},), got {heads.shape}"
            )
        if in_degrees.shape != (int(num_nodes),):
            raise SamplingError(
                f"in_degrees must have shape ({num_nodes},), "
                f"got {in_degrees.shape}"
            )
        old_words = self.touched_words.shape[1]
        new_words = _num_words(int(num_nodes))
        if new_words > old_words:
            touched = np.zeros((self.worlds, new_words), dtype=_WORD)
            expanded = np.zeros((self.worlds, new_words), dtype=_WORD)
            touched[:, :old_words] = self.touched_words
            expanded[:, :old_words] = self.expanded_words
            self.touched_words, self.expanded_words = touched, expanded
        self._n = int(num_nodes)
        self._m = int(num_edges)
        self._heads = heads
        self._in_degrees = in_degrees
        # The inverted index is sized to the old entity range; it is a
        # rebuildable accelerator, so drop rather than patch it.
        self._drop_index()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def node_pairs(
        self, entities: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(world row, position)`` pairs where each node was drawn."""
        return self._pairs(self.touched_words, entities)

    def edge_pairs(
        self, edge_ids: np.ndarray, heads: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(world row, position)`` pairs where each edge was drawn.

        An edge is drawn iff its head node is expanded; the caller
        passes the heads so the query needs no per-call gather.
        """
        return self._pairs(self.expanded_words, heads, index_usable=False)

    def node_draws(self) -> np.ndarray:
        """Per-row distinct node-draw counts (touched popcounts)."""
        return popcount(self.touched_words).sum(axis=1, dtype=np.int64)

    def edge_draws(self) -> np.ndarray:
        """Per-row distinct edge-draw counts (in-degree mass of expanded)."""
        dense = unpack_bool_rows(self.expanded_words, self._n)
        return (dense @ self._in_degrees).astype(np.int64)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _mark_stale(self, rows: np.ndarray) -> None:
        if self._index_rows is None:
            return
        self._stale_rows.update(int(r) for r in np.asarray(rows).ravel())
        if len(self._stale_rows) > max(
            64, int(self.STALE_REBUILD_FRACTION * self.worlds)
        ):
            self._drop_index()

    def _drop_index(self) -> None:
        self._index_indptr = None
        self._index_rows = None

    def _build_index(self) -> None:
        """(Re)build the touched-node entity→worlds CSR from the packed
        bits, unless its size would rival the packed matrices."""
        if self._index_disabled or self.worlds < self.INDEX_MIN_WORLDS:
            return
        pair_entities: list[np.ndarray] = []
        pair_rows: list[np.ndarray] = []
        total = 0
        # The index may grow to the packed masks' own footprint before
        # it stops paying for itself (total state stays ~8× below the
        # dense layout even then, m ≈ 3n).
        budget = max(
            1, self.touched_words.nbytes + self.expanded_words.nbytes
        )
        chunk = max(1, (1 << 22) // max(self._n, 1))
        for start in range(0, self.worlds, chunk):
            stop = min(start + chunk, self.worlds)
            dense = unpack_bool_rows(self.touched_words[start:stop], self._n)
            rows, cols = np.nonzero(dense)
            pair_rows.append((rows + start).astype(np.int32))
            pair_entities.append(cols)
            total += rows.size
            if total * 4 > budget:
                # Touch density too high for the index to pay for
                # itself; column bit-scans stay the exact fallback.
                self._index_disabled = True
                return
        entities = (
            np.concatenate(pair_entities)
            if pair_entities
            else np.empty(0, dtype=np.int64)
        )
        rows = (
            np.concatenate(pair_rows)
            if pair_rows
            else np.empty(0, dtype=np.int32)
        )
        order = np.argsort(entities, kind="stable")
        self._index_rows = rows[order]
        counts = np.bincount(entities, minlength=self._n)
        self._index_indptr = np.zeros(self._n + 1, dtype=np.int64)
        np.cumsum(counts, out=self._index_indptr[1:])
        self._stale_rows.clear()

    def _pairs(
        self,
        words: np.ndarray,
        entities: np.ndarray,
        index_usable: bool = True,
    ) -> tuple[np.ndarray, np.ndarray]:
        entities = np.asarray(entities, dtype=np.int64)
        if entities.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        if index_usable and self._index_rows is None:
            self._build_index()
        use_index = (
            index_usable
            and self._index_rows is not None
            # The index narrows candidates; with many stale rows the
            # column scan is both exact and cheaper.
            and len(self._stale_rows) * entities.size
            < self.worlds * max(1, entities.size // 4)
        )
        if not use_index:
            rows, positions = np.nonzero(_column_bits(words, entities))
            return rows, positions
        starts = self._index_indptr[entities]
        stops = self._index_indptr[entities + 1]
        counts = stops - starts
        candidate_rows_parts: list[np.ndarray] = []
        position_parts: list[np.ndarray] = []
        if counts.sum():
            spans = np.concatenate(
                [
                    self._index_rows[s:t]
                    for s, t in zip(starts, stops)
                    if t > s
                ]
            ).astype(np.int64)
            candidate_rows_parts.append(spans)
            position_parts.append(
                np.repeat(np.arange(entities.size), counts)
            )
        if self._stale_rows:
            stale = np.fromiter(
                self._stale_rows, dtype=np.int64, count=len(self._stale_rows)
            )
            stale.sort()
            grid_rows = np.repeat(stale, entities.size)
            grid_pos = np.tile(np.arange(entities.size), stale.size)
            candidate_rows_parts.append(grid_rows)
            position_parts.append(grid_pos)
        if not candidate_rows_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        rows = np.concatenate(candidate_rows_parts)
        positions = np.concatenate(position_parts)
        # Exact filter through the live bits (stale candidates may have
        # lost the entity; indexed non-stale candidates always have it,
        # but the uniform filter keeps the path single and provably
        # exact).
        bit = (
            words[rows, (entities[positions] >> 6).astype(np.int64)]
            >> (entities[positions].astype(np.uint64) & _MASK_63)
        ) & _ONE
        keep = bit.astype(bool)
        rows, positions = rows[keep], positions[keep]
        # Stale rows can duplicate index entries; dedup per (row, pos).
        if self._stale_rows:
            combined = rows * entities.size + positions
            _, first = np.unique(combined, return_index=True)
            rows, positions = rows[first], positions[first]
        return rows, positions


#: Probabilities lifted to the 53-bit mantissa lattice of the counter PRF
#: (see :mod:`repro.sampling.indexed`): ``u <= p`` iff the raw mantissa is
#: ``<= floor(p * 2^53)`` — an exact integer comparison.
_TWO_53 = 2.0**53
#: Counter values materialised at once while realising a view (bounds the
#: transient ``uint64`` buffers, not the boolean result matrices).
_REALISE_BUDGET = 1 << 22


class WorldView:
    """Read-only realised view of a fixed set of counter-PRF worlds.

    The query-engine surface over shared world state: given the graph, a
    vector of world indices and the 64-bit stream key, every per-world
    realisation is a pure hash — node ``v`` of world ``w`` draws at
    counter ``w * (n + m) + v``, edge ``e`` at ``w * (n + m) + n + e``
    under the default packed layout (the stable layout uses fixed lanes
    ``w * 2^33 + v`` / ``w * 2^33 + 2^32 + e``) — so this view
    reproduces, **bit-identically**, the outcomes the reverse-sampling
    engines computed for the same worlds.  In
    particular, for a :class:`~repro.streaming.monitor.TopKMonitor`'s
    cached world set, ``view.defaulted()[:, candidates]`` equals the
    monitor's repaired outcome matrix exactly — which is what lets many
    query families share one repaired world set instead of each paying
    for fresh sampling.

    Everything is **lazy and cached**: the realisation matrices, the
    propagated default matrix, and any family-specific derived product
    registered through :meth:`cached`.  The view never mutates the graph
    and never draws new randomness; it is safe to hand to any number of
    estimators.

    Memory: realising all worlds costs ``O(W * (n + m))`` booleans, so
    views are meant for the sample counts the monitor keeps (thousands),
    not for exhaustive enumeration.

    Parameters
    ----------
    graph:
        The uncertain graph the worlds realise.
    world_ids:
        The world indices to materialise (any order, repeats allowed).
    stream_key:
        The sampler's 64-bit PRF key (``IndexedReverseSampler
        .stream_key``).  Exactly one of *stream_key* / *seed* semantics:
        when *stream_key* is given it is used verbatim; otherwise a key
        is derived from *seed* exactly as the samplers derive theirs.
    seed:
        Seed to derive a stream key from when *stream_key* is ``None``.
    counter_layout:
        ``"packed"`` (default) or ``"stable"`` — must match the layout
        of the sampler whose worlds this view reproduces (see
        :data:`repro.sampling.indexed.COUNTER_LAYOUTS`).
    """

    __slots__ = (
        "_graph",
        "_world_ids",
        "_key",
        "_n",
        "_m",
        "_layout",
        "_self_default",
        "_edge_survives",
        "_cache",
    )

    def __init__(
        self,
        graph: UncertainGraph,
        world_ids: Sequence[int] | np.ndarray,
        *,
        stream_key: np.uint64 | int | None = None,
        seed: SeedLike = None,
        counter_layout: str = "packed",
    ) -> None:
        from repro.sampling.indexed import COUNTER_LAYOUTS

        if counter_layout not in COUNTER_LAYOUTS:
            raise SamplingError(
                f"counter_layout must be one of {COUNTER_LAYOUTS}, "
                f"got {counter_layout!r}"
            )
        self._layout = counter_layout
        self._graph = graph
        world_ids = np.asarray(world_ids, dtype=np.int64)
        if world_ids.ndim != 1 or world_ids.size == 0:
            raise SamplingError("world_ids must be a non-empty 1-d array")
        if world_ids.min() < 0:
            raise SamplingError("world indices must be non-negative")
        self._world_ids = world_ids.copy()
        self._world_ids.setflags(write=False)
        if stream_key is not None:
            self._key = np.uint64(stream_key)
        else:
            self._key = derive_stream_key(seed)
        self._n = graph.num_nodes
        self._m = graph.num_edges
        self._self_default: np.ndarray | None = None
        self._edge_survives: np.ndarray | None = None
        self._cache: dict[Hashable, object] = {}

    # ------------------------------------------------------------------
    @property
    def graph(self) -> UncertainGraph:
        """The graph the worlds realise."""
        return self._graph

    @property
    def world_ids(self) -> np.ndarray:
        """The realised world indices (read-only)."""
        return self._world_ids

    @property
    def num_worlds(self) -> int:
        """Number of realised worlds (rows of every matrix)."""
        return int(self._world_ids.size)

    @property
    def num_nodes(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        return self._m

    @property
    def stream_key(self) -> np.uint64:
        """The 64-bit PRF key every realisation hashes from."""
        return self._key

    # ------------------------------------------------------------------
    def _realise(self) -> None:
        """Materialise the ``(W, n)`` / ``(W, m)`` realisation matrices.

        The integer-lattice comparison is the one the indexed sampler's
        exploration uses (``draw <= floor(p * 2^53)`` on ``uint64``), so
        per-entity realisations agree bit for bit with any engine keyed
        the same way.
        """
        if self._self_default is not None:
            return
        graph = self._graph
        n, m = self._n, self._m
        ps = graph.self_risk_array
        _, _, pe = graph.edge_array
        node_thresholds = np.floor(ps * _TWO_53).astype(np.uint64)
        edge_thresholds = np.floor(pe * _TWO_53).astype(np.uint64)
        if self._layout == "stable":
            from repro.sampling.indexed import STABLE_EDGE_BASE, STABLE_STRIDE

            stride = STABLE_STRIDE
            edge_offset = STABLE_EDGE_BASE
        else:
            stride = np.uint64(n + m)
            edge_offset = np.uint64(n)
        worlds = self.num_worlds
        self_default = np.empty((worlds, n), dtype=bool)
        edge_survives = np.empty((worlds, m), dtype=bool)
        node_ids = np.arange(n, dtype=np.uint64)
        edge_ids = np.arange(m, dtype=np.uint64) + edge_offset
        chunk = max(1, _REALISE_BUDGET // max(n + m, 1))
        key = self._key
        for start in range(0, worlds, chunk):
            stop = min(start + chunk, worlds)
            base = self._world_ids[start:stop].astype(np.uint64) * stride
            if n:
                counters = (base[:, None] + node_ids[None, :]).ravel()
                draws = hashed_mantissas_inplace(key, counters)
                self_default[start:stop] = (
                    draws.reshape(stop - start, n)
                    <= node_thresholds[None, :]
                )
            if m:
                counters = (base[:, None] + edge_ids[None, :]).ravel()
                draws = hashed_mantissas_inplace(key, counters)
                edge_survives[start:stop] = (
                    draws.reshape(stop - start, m)
                    <= edge_thresholds[None, :]
                )
        self._self_default = self_default
        self._edge_survives = edge_survives

    def self_default(self) -> np.ndarray:
        """Boolean ``(W, n)``: which nodes self-default in each world."""
        self._realise()
        return self._self_default

    def edge_survives(self) -> np.ndarray:
        """Boolean ``(W, m)``: which edges survive in each world."""
        self._realise()
        return self._edge_survives

    def defaulted(self) -> np.ndarray:
        """Boolean ``(W, n)``: which nodes default (self or contagion).

        Bit-identical to the reverse samplers' per-world outcomes for
        the same worlds and key (the contagion fixpoint is the shared
        :func:`~repro.core.propagation.propagate_defaults_block`).
        """
        return self.cached(
            ("defaulted",),
            lambda: propagate_defaults_block(
                self._graph, self.self_default(), self.edge_survives()
            ),
        )

    def contagion(self) -> np.ndarray:
        """Boolean ``(W, n)``: defaulted through contagion, not self."""
        return self.cached(
            ("contagion",),
            lambda: self.defaulted() & ~self.self_default(),
        )

    # ------------------------------------------------------------------
    def cached(self, key: Hashable, compute: Callable[[], _T]) -> _T:
        """Memoise a derived per-world product on this view.

        Query families use this to share expensive intermediates (the
        propagated default matrix, per-world component labels, …) across
        families and repeated calls — the amortisation the query layer
        exists for.  The *key* namespace is cooperative; families prefix
        with their own name.
        """
        try:
            return self._cache[key]  # type: ignore[return-value]
        except KeyError:
            value = compute()
            self._cache[key] = value
            return value

    def peek(self, key: Hashable) -> object | None:
        """Return a cached derived product, or ``None`` if not computed.

        Lets a family opportunistically reuse a *related* product
        without forcing its computation — e.g. the k-core estimator
        seeds its peel from whichever lower-order membership matrix an
        earlier query already paid for.
        """
        return self._cache.get(key)
