"""Per-world touched-entity state, dense and bit-packed.

The streaming :class:`~repro.streaming.monitor.TopKMonitor` keeps, for
every cached possible world, the set of entities that world actually
drew: a patched entity can only invalidate worlds that drew it, so these
masks are what turns the counter-PRF's crossing test from "expected
``|Δp|`` of all worlds" into "expected ``|Δp|`` of the worlds that even
looked at the entity".  PR 3 stored them as dense ``(samples, n)`` /
``(samples, m)`` booleans, which caps exact repair at graphs where
``samples * (n + m)`` bytes fit the world-state budget.

This module provides two interchangeable representations behind one
interface (the bit-identity tests drive both and assert equal answers,
repair sets and draw counters):

* :class:`DenseWorldState` — the PR-3 layout, kept as the executable
  baseline and benchmark foil;
* :class:`PackedWorldState` — two bit-packed ``uint64`` matrices of
  ``n`` bits per world (touched nodes, *expanded* nodes) plus an
  entity→worlds inverted CSR index.  Edge masks are never materialised:
  edge ``e`` was drawn in a world iff its head node was expanded there
  (see :mod:`repro.sampling.indexed`), so the ``m``-bit mask collapses
  onto the ``n``-bit expanded mask.  With ``m ≈ 3n`` this stores world
  state in ``2n/8`` bytes instead of ``4n`` — a ~16× reduction — and
  per-world draw counters fall out of popcounts
  (``node_draws == popcount(touched)``,
  ``edge_draws == Σ in_degree over expanded``).

Both classes answer the two queries the monitor's repair pipeline is
built from:

* ``node_pairs(entities)`` / ``edge_pairs(edge_ids, heads)`` — the
  ``(world row, entity position)`` pairs where the entity was drawn, the
  input to one bulk counter-PRF crossing test per refresh;
* ``merge_block(rows, block)`` — OR a freshly-explored closure (an
  added candidate's worlds) into existing rows, returning the exact
  per-row draw-count deltas, which is what makes incremental
  candidate-set repair's work telemetry equal a from-scratch union run.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import SamplingError

__all__ = [
    "pack_bool_rows",
    "unpack_bool_rows",
    "popcount",
    "DenseWorldState",
    "PackedWorldState",
]

#: Explicit little-endian word dtype so byte views agree on every platform.
_WORD = np.dtype("<u8")
_ONE = np.uint64(1)
_SIX = np.uint64(6)
_MASK_63 = np.uint64(63)

if hasattr(np, "bitwise_count"):  # numpy >= 2.0

    def popcount(words: np.ndarray) -> np.ndarray:
        """Per-element popcount of a ``uint64`` array."""
        return np.bitwise_count(words)

else:  # pragma: no cover - exercised only on numpy < 2.0
    _POP8 = np.array(
        [bin(value).count("1") for value in range(256)], dtype=np.uint8
    )

    def popcount(words: np.ndarray) -> np.ndarray:
        """Per-element popcount of a ``uint64`` array (byte-LUT fallback)."""
        as_bytes = np.ascontiguousarray(words).view(np.uint8)
        return (
            _POP8[as_bytes]
            .reshape(*words.shape, 8)
            .sum(axis=-1, dtype=np.uint8)
        )


def _num_words(cols: int) -> int:
    return (int(cols) + 63) // 64


def pack_bool_rows(dense: np.ndarray) -> np.ndarray:
    """Bit-pack a boolean ``(R, C)`` matrix along its columns.

    Returns a ``(R, ceil(C/64))`` little-endian ``uint64`` matrix where
    column ``c`` lives at word ``c >> 6``, bit ``c & 63``.
    """
    dense = np.asarray(dense, dtype=bool)
    rows, cols = dense.shape
    words = _num_words(cols)
    packed8 = np.packbits(dense, axis=1, bitorder="little")
    if packed8.shape[1] != words * 8:
        padded = np.zeros((rows, words * 8), dtype=np.uint8)
        padded[:, : packed8.shape[1]] = packed8
        packed8 = padded
    return np.ascontiguousarray(packed8).view(_WORD)


def unpack_bool_rows(words: np.ndarray, cols: int) -> np.ndarray:
    """Invert :func:`pack_bool_rows` back to a boolean ``(R, cols)`` matrix."""
    as_bytes = np.ascontiguousarray(words).view(np.uint8)
    return np.unpackbits(
        as_bytes, axis=1, bitorder="little", count=int(cols)
    ).astype(bool)


def _column_bits(words: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Boolean ``(R, len(cols))`` matrix of the requested bit columns."""
    cols = np.asarray(cols, dtype=np.uint64)
    gathered = words[:, (cols >> _SIX).astype(np.int64)]
    return ((gathered >> (cols & _MASK_63)[None, :]) & _ONE).astype(bool)


class DenseWorldState:
    """The PR-3 representation: dense boolean touched masks.

    ``(worlds, n)`` touched-node and ``(worlds, m)`` touched-edge
    booleans.  Kept as the baseline the packed representation is
    bit-identity-tested and benchmarked against.
    """

    collect_mode = "dense"
    kind = "dense"

    __slots__ = ("touched_nodes", "touched_edges", "_n", "_m")

    def __init__(self, worlds: int, num_nodes: int, num_edges: int) -> None:
        self._n = int(num_nodes)
        self._m = int(num_edges)
        self.touched_nodes = np.zeros((worlds, self._n), dtype=bool)
        self.touched_edges = np.zeros((worlds, self._m), dtype=bool)

    @staticmethod
    def bytes_needed(worlds: int, num_nodes: int, num_edges: int) -> int:
        """Storage this representation needs for *worlds* worlds."""
        return int(worlds) * (int(num_nodes) + int(num_edges))

    @property
    def worlds(self) -> int:
        """Number of world rows currently held."""
        return self.touched_nodes.shape[0]

    @property
    def nbytes(self) -> int:
        """Actual bytes held by the state."""
        return self.touched_nodes.nbytes + self.touched_edges.nbytes

    def store_block(self, rows: np.ndarray, block) -> None:
        """Overwrite *rows* with a freshly explored ``WorldBlock``."""
        self.touched_nodes[rows] = block.touched_nodes
        self.touched_edges[rows] = block.touched_edges

    def merge_block(
        self, rows: np.ndarray, block
    ) -> tuple[np.ndarray, np.ndarray]:
        """OR a block into *rows*; returns exact per-row draw deltas.

        The closure explored from a union of candidate sets is the union
        of the per-set closures (realisations are entity-indexed), so
        OR-ing an added candidate's closure into the stored masks yields
        exactly the masks a from-scratch union exploration would, and
        the draw-count deltas are the newly-set bits.
        """
        node_delta = (block.touched_nodes & ~self.touched_nodes[rows]).sum(
            axis=1
        )
        edge_delta = (block.touched_edges & ~self.touched_edges[rows]).sum(
            axis=1
        )
        self.touched_nodes[rows] |= block.touched_nodes
        self.touched_edges[rows] |= block.touched_edges
        return node_delta.astype(np.int64), edge_delta.astype(np.int64)

    def node_pairs(
        self, entities: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(world row, position)`` pairs where each node was drawn."""
        return np.nonzero(self.touched_nodes[:, entities])

    def edge_pairs(
        self, edge_ids: np.ndarray, heads: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(world row, position)`` pairs where each edge was drawn."""
        return np.nonzero(self.touched_edges[:, edge_ids])

    def node_draws(self) -> np.ndarray:
        """Per-row distinct node-draw counts (mask row sums)."""
        return self.touched_nodes.sum(axis=1, dtype=np.int64)

    def edge_draws(self) -> np.ndarray:
        """Per-row distinct edge-draw counts (mask row sums)."""
        return self.touched_edges.sum(axis=1, dtype=np.int64)

    def resize(self, worlds: int) -> None:
        """Grow (zero-filled) or truncate to *worlds* rows."""
        current = self.worlds
        if worlds == current:
            return
        if worlds < current:
            self.touched_nodes = self.touched_nodes[:worlds].copy()
            self.touched_edges = self.touched_edges[:worlds].copy()
            return
        nodes = np.zeros((worlds, self._n), dtype=bool)
        edges = np.zeros((worlds, self._m), dtype=bool)
        nodes[:current] = self.touched_nodes
        edges[:current] = self.touched_edges
        self.touched_nodes, self.touched_edges = nodes, edges


class PackedWorldState:
    """Bit-packed world state with an entity→worlds inverted index.

    Two ``(worlds, ceil(n/64))`` little-endian ``uint64`` matrices —
    touched nodes and expanded nodes — carry the full dense information
    (edge ``e`` drawn iff ``heads[e]`` expanded).  An inverted CSR over
    the touched-node bits accelerates ``entity → candidate worlds``
    lookups; rows repaired since the last index build are tracked as
    *stale* and always treated as candidates, and every candidate list
    is filtered through the exact packed bits, so query answers never
    depend on index freshness.  The index is skipped outright when the
    touch density is so high that it would rival the packed matrices in
    size (column bit-scans are the fallback, still exact).

    Parameters
    ----------
    worlds, num_nodes, num_edges:
        State dimensions.
    heads:
        ``(m,)`` head (destination) node of every edge id — the map from
        edge queries onto the expanded-node bits.
    in_degrees:
        ``(n,)`` in-degree of every node; ``Σ in_degree over expanded``
        is a world's exact edge-draw count.
    """

    collect_mode = "compact"
    kind = "packed"

    #: Rebuild the inverted index once this fraction of rows went stale.
    STALE_REBUILD_FRACTION = 0.25
    #: Below this many world rows a column bit-scan answers an
    #: entity→worlds query in microseconds, so building the index (a
    #: full scan of every packed bit) can never amortise; it switches on
    #: for the large sample counts where column gathers start to hurt.
    INDEX_MIN_WORLDS = 4096

    __slots__ = (
        "touched_words",
        "expanded_words",
        "_n",
        "_m",
        "_heads",
        "_in_degrees",
        "_index_indptr",
        "_index_rows",
        "_index_disabled",
        "_stale_rows",
    )

    def __init__(
        self,
        worlds: int,
        num_nodes: int,
        num_edges: int,
        *,
        heads: np.ndarray,
        in_degrees: np.ndarray,
    ) -> None:
        self._n = int(num_nodes)
        self._m = int(num_edges)
        heads = np.asarray(heads, dtype=np.int64)
        in_degrees = np.asarray(in_degrees, dtype=np.int64)
        if heads.shape != (self._m,):
            raise SamplingError(
                f"heads must have shape ({self._m},), got {heads.shape}"
            )
        if in_degrees.shape != (self._n,):
            raise SamplingError(
                f"in_degrees must have shape ({self._n},), "
                f"got {in_degrees.shape}"
            )
        self._heads = heads
        self._in_degrees = in_degrees
        words = _num_words(self._n)
        self.touched_words = np.zeros((worlds, words), dtype=_WORD)
        self.expanded_words = np.zeros((worlds, words), dtype=_WORD)
        self._index_indptr: np.ndarray | None = None
        self._index_rows: np.ndarray | None = None
        self._index_disabled = False
        self._stale_rows: set[int] = set(range(worlds))

    @staticmethod
    def bytes_needed(worlds: int, num_nodes: int, num_edges: int) -> int:
        """Packed-mask storage needed for *worlds* worlds (index excluded —
        it is a rebuildable accelerator, size-capped below mask storage)."""
        return int(worlds) * 2 * _num_words(num_nodes) * 8

    @property
    def worlds(self) -> int:
        """Number of world rows currently held."""
        return self.touched_words.shape[0]

    @property
    def nbytes(self) -> int:
        """Actual bytes held: packed masks plus the live inverted index."""
        total = self.touched_words.nbytes + self.expanded_words.nbytes
        if self._index_rows is not None:
            total += self._index_rows.nbytes + self._index_indptr.nbytes
        return total

    @property
    def has_index(self) -> bool:
        """Whether the inverted entity→worlds index is currently built."""
        return self._index_rows is not None

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def store_block(self, rows: np.ndarray, block) -> None:
        """Overwrite *rows* with a freshly explored ``WorldBlock``."""
        self.touched_words[rows] = pack_bool_rows(block.touched_nodes)
        self.expanded_words[rows] = pack_bool_rows(block.expanded_nodes)
        self._mark_stale(rows)

    def merge_block(
        self, rows: np.ndarray, block
    ) -> tuple[np.ndarray, np.ndarray]:
        """OR a block into *rows*; returns exact per-row draw deltas.

        Node deltas are popcounts of the newly-set touched bits; edge
        deltas are the in-degree sums of the newly-expanded nodes (every
        in-edge of a node is drawn exactly when the node is expanded).
        """
        touched_new = pack_bool_rows(block.touched_nodes)
        node_delta = popcount(
            touched_new & ~self.touched_words[rows]
        ).sum(axis=1, dtype=np.int64)
        self.touched_words[rows] |= touched_new
        old_expanded = unpack_bool_rows(self.expanded_words[rows], self._n)
        newly_expanded = block.expanded_nodes & ~old_expanded
        edge_delta = newly_expanded @ self._in_degrees
        self.expanded_words[rows] |= pack_bool_rows(block.expanded_nodes)
        self._mark_stale(rows)
        return node_delta, edge_delta.astype(np.int64)

    def resize(self, worlds: int) -> None:
        """Grow (zero-filled) or truncate to *worlds* rows."""
        current = self.worlds
        if worlds == current:
            return
        if worlds < current:
            self.touched_words = self.touched_words[:worlds].copy()
            self.expanded_words = self.expanded_words[:worlds].copy()
            self._stale_rows = {r for r in self._stale_rows if r < worlds}
            self._drop_index()  # may reference truncated rows
            return
        words = self.touched_words.shape[1]
        touched = np.zeros((worlds, words), dtype=_WORD)
        expanded = np.zeros((worlds, words), dtype=_WORD)
        touched[:current] = self.touched_words
        expanded[:current] = self.expanded_words
        self.touched_words, self.expanded_words = touched, expanded
        self._stale_rows.update(range(current, worlds))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def node_pairs(
        self, entities: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(world row, position)`` pairs where each node was drawn."""
        return self._pairs(self.touched_words, entities)

    def edge_pairs(
        self, edge_ids: np.ndarray, heads: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(world row, position)`` pairs where each edge was drawn.

        An edge is drawn iff its head node is expanded; the caller
        passes the heads so the query needs no per-call gather.
        """
        return self._pairs(self.expanded_words, heads, index_usable=False)

    def node_draws(self) -> np.ndarray:
        """Per-row distinct node-draw counts (touched popcounts)."""
        return popcount(self.touched_words).sum(axis=1, dtype=np.int64)

    def edge_draws(self) -> np.ndarray:
        """Per-row distinct edge-draw counts (in-degree mass of expanded)."""
        dense = unpack_bool_rows(self.expanded_words, self._n)
        return (dense @ self._in_degrees).astype(np.int64)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _mark_stale(self, rows: np.ndarray) -> None:
        if self._index_rows is None:
            return
        self._stale_rows.update(int(r) for r in np.asarray(rows).ravel())
        if len(self._stale_rows) > max(
            64, int(self.STALE_REBUILD_FRACTION * self.worlds)
        ):
            self._drop_index()

    def _drop_index(self) -> None:
        self._index_indptr = None
        self._index_rows = None

    def _build_index(self) -> None:
        """(Re)build the touched-node entity→worlds CSR from the packed
        bits, unless its size would rival the packed matrices."""
        if self._index_disabled or self.worlds < self.INDEX_MIN_WORLDS:
            return
        pair_entities: list[np.ndarray] = []
        pair_rows: list[np.ndarray] = []
        total = 0
        # The index may grow to the packed masks' own footprint before
        # it stops paying for itself (total state stays ~8× below the
        # dense layout even then, m ≈ 3n).
        budget = max(
            1, self.touched_words.nbytes + self.expanded_words.nbytes
        )
        chunk = max(1, (1 << 22) // max(self._n, 1))
        for start in range(0, self.worlds, chunk):
            stop = min(start + chunk, self.worlds)
            dense = unpack_bool_rows(self.touched_words[start:stop], self._n)
            rows, cols = np.nonzero(dense)
            pair_rows.append((rows + start).astype(np.int32))
            pair_entities.append(cols)
            total += rows.size
            if total * 4 > budget:
                # Touch density too high for the index to pay for
                # itself; column bit-scans stay the exact fallback.
                self._index_disabled = True
                return
        entities = (
            np.concatenate(pair_entities)
            if pair_entities
            else np.empty(0, dtype=np.int64)
        )
        rows = (
            np.concatenate(pair_rows)
            if pair_rows
            else np.empty(0, dtype=np.int32)
        )
        order = np.argsort(entities, kind="stable")
        self._index_rows = rows[order]
        counts = np.bincount(entities, minlength=self._n)
        self._index_indptr = np.zeros(self._n + 1, dtype=np.int64)
        np.cumsum(counts, out=self._index_indptr[1:])
        self._stale_rows.clear()

    def _pairs(
        self,
        words: np.ndarray,
        entities: np.ndarray,
        index_usable: bool = True,
    ) -> tuple[np.ndarray, np.ndarray]:
        entities = np.asarray(entities, dtype=np.int64)
        if entities.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        if index_usable and self._index_rows is None:
            self._build_index()
        use_index = (
            index_usable
            and self._index_rows is not None
            # The index narrows candidates; with many stale rows the
            # column scan is both exact and cheaper.
            and len(self._stale_rows) * entities.size
            < self.worlds * max(1, entities.size // 4)
        )
        if not use_index:
            rows, positions = np.nonzero(_column_bits(words, entities))
            return rows, positions
        starts = self._index_indptr[entities]
        stops = self._index_indptr[entities + 1]
        counts = stops - starts
        candidate_rows_parts: list[np.ndarray] = []
        position_parts: list[np.ndarray] = []
        if counts.sum():
            spans = np.concatenate(
                [
                    self._index_rows[s:t]
                    for s, t in zip(starts, stops)
                    if t > s
                ]
            ).astype(np.int64)
            candidate_rows_parts.append(spans)
            position_parts.append(
                np.repeat(np.arange(entities.size), counts)
            )
        if self._stale_rows:
            stale = np.fromiter(
                self._stale_rows, dtype=np.int64, count=len(self._stale_rows)
            )
            stale.sort()
            grid_rows = np.repeat(stale, entities.size)
            grid_pos = np.tile(np.arange(entities.size), stale.size)
            candidate_rows_parts.append(grid_rows)
            position_parts.append(grid_pos)
        if not candidate_rows_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        rows = np.concatenate(candidate_rows_parts)
        positions = np.concatenate(position_parts)
        # Exact filter through the live bits (stale candidates may have
        # lost the entity; indexed non-stale candidates always have it,
        # but the uniform filter keeps the path single and provably
        # exact).
        bit = (
            words[rows, (entities[positions] >> 6).astype(np.int64)]
            >> (entities[positions].astype(np.uint64) & _MASK_63)
        ) & _ONE
        keep = bit.astype(bool)
        rows, positions = rows[keep], positions[keep]
        # Stale rows can duplicate index entries; dedup per (row, pos).
        if self._stale_rows:
            combined = rows * entities.size + positions
            _, first = np.unique(combined, return_index=True)
            rows, positions = rows[first], positions[first]
        return rows, positions
