"""Random-number-generator plumbing.

All stochastic code in the library accepts a ``seed`` argument that may be
``None`` (fresh entropy), an ``int`` (reproducible), or an existing
:class:`numpy.random.Generator` (caller-managed stream).  Centralising the
coercion here keeps every sampler reproducible and keeps seeding idioms
consistent across the package.

Two families of randomness live here:

* **stream randomness** — :func:`make_rng` / :class:`RandomBlock`: one
  sequential double stream, consumed in pre-drawn chunks (the batched
  reverse engine);
* **counter randomness** — :func:`hashed_uniforms` /
  :func:`hashed_uniform_tile`: the SplitMix64 output function evaluated
  at explicit 64-bit counters, so the uniform at counter ``c`` under
  stream key ``k`` is a pure function of ``(k, c)``.  The indexed
  reverse engine keys every ``(world, entity)`` draw this way, which is
  what makes its worlds individually re-evaluable.  The mix runs in
  place over whole counter blocks — one numpy dispatch per hash stage,
  never per draw.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "make_rng",
    "spawn_rngs",
    "RandomBlock",
    "SeedLike",
    "splitmix64_mix",
    "hashed_mantissas",
    "hashed_mantissas_inplace",
    "hashed_uniforms",
    "hashed_uniform_tile",
    "derive_stream_key",
]

SeedLike = int | np.random.Generator | np.random.SeedSequence | None

_U64 = np.uint64
_SHIFT_30 = _U64(30)
_SHIFT_27 = _U64(27)
_SHIFT_31 = _U64(31)
_SHIFT_11 = _U64(11)
_GAMMA = _U64(0x9E3779B97F4A7C15)
_MIX_1 = _U64(0xBF58476D1CE4E5B9)
_MIX_2 = _U64(0x94D049BB133111EB)
_INV_2_53 = 2.0**-53


def splitmix64_mix(state: np.ndarray) -> np.ndarray:
    """SplitMix64 output mix over a ``uint64`` array, **in place**.

    The xor-shift/multiply cascade runs with ``out=`` targets so a whole
    counter block costs one scratch buffer regardless of size — the
    block-PRF primitive the indexed engine's hot path hashes tiles with.
    Bit-identical to the scalar SplitMix64 finaliser.
    """
    scratch = state >> _SHIFT_30
    state ^= scratch
    np.multiply(state, _MIX_1, out=state)
    np.right_shift(state, _SHIFT_27, out=scratch)
    state ^= scratch
    np.multiply(state, _MIX_2, out=state)
    np.right_shift(state, _SHIFT_31, out=scratch)
    state ^= scratch
    return state


def hashed_mantissas(key: np.uint64, counters: np.ndarray) -> np.ndarray:
    """The 53-bit integer lattice points behind :func:`hashed_uniforms`.

    ``hashed_uniforms(key, c) == hashed_mantissas(key, c) * 2**-53``
    exactly.  Hot paths that only need to *compare* a uniform against a
    probability can lift the probability to the lattice
    (``floor(p * 2**53)``) once and compare in ``uint64``, skipping the
    float conversion entirely.
    """
    return hashed_mantissas_inplace(key, np.array(counters, dtype=_U64))


def hashed_mantissas_inplace(key: np.uint64, counters: np.ndarray) -> np.ndarray:
    """:func:`hashed_mantissas` mutating *counters* (a ``uint64`` array).

    The one authoritative PRF pipeline — every other hashing surface in
    this module routes through it.  For hot paths that build a throwaway
    counter buffer anyway, hashing in place saves one allocation pass
    per call.
    """
    counters *= _GAMMA
    counters += key
    splitmix64_mix(counters)
    counters >>= _SHIFT_11
    return counters


def _to_uniforms(mantissas: np.ndarray) -> np.ndarray:
    """Lattice points to doubles in ``[0, 1)`` (mantissa * 2^-53)."""
    out = mantissas.astype(np.float64)
    out *= _INV_2_53
    return out


def hashed_uniforms(key: np.uint64, counters: np.ndarray) -> np.ndarray:
    """Uniforms in ``[0, 1)`` at the given 64-bit counters (vectorised).

    Evaluates the SplitMix64 output function at state
    ``key + counter * gamma``: counter ``c`` under stream *key* always
    yields the same double, independent of every other draw.  The top 53
    mixed bits become the mantissa, matching how
    :meth:`numpy.random.Generator.random` builds doubles.
    """
    return _to_uniforms(hashed_mantissas(key, counters))


def hashed_uniform_tile(
    key: np.uint64, row_bases: np.ndarray, col_counters: np.ndarray
) -> np.ndarray:
    """``(R, C)`` uniforms for every ``row_base + col_counter`` pair.

    One outer sum plus one in-place mix hashes the whole
    ``(world, entity)`` tile per numpy call — the bulk surface the
    streaming monitor scans invalidation candidates with (rows are
    per-world counter bases, columns per-entity counters).
    """
    rows = np.asarray(row_bases, dtype=_U64)
    cols = np.asarray(col_counters, dtype=_U64)
    tile = rows[:, None] + cols[None, :]
    return _to_uniforms(hashed_mantissas_inplace(key, tile))


def derive_stream_key(seed: SeedLike) -> np.uint64:
    """Deterministically map a ``seed`` argument to a 64-bit stream key.

    Integers and :class:`~numpy.random.SeedSequence` instances map to a
    fixed key (reproducible runs); a :class:`~numpy.random.Generator`
    draws one word from its stream (caller-managed randomness); ``None``
    takes fresh OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return _U64(seed.integers(0, 2**64, dtype=np.uint64))
    if isinstance(seed, np.random.SeedSequence):
        sequence = seed
    else:
        sequence = np.random.SeedSequence(seed)
    return _U64(sequence.generate_state(1, np.uint64)[0])


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged, so callers can
    thread one stream through a whole experiment.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class RandomBlock:
    """Uniform draws served from a pre-drawn block, refilled in chunks.

    Scalar ``Generator.random()`` calls cost a full Python round-trip into
    the bit generator per draw; the hot sampling loops instead pull their
    uniforms from this buffer, which is refilled ``chunk`` doubles at a
    time with one vectorised call.  Because numpy generators produce the
    same double stream whether consumed one at a time or in blocks,
    draining a :class:`RandomBlock` yields *bit-identical* values to the
    equivalent sequence of scalar ``rng.random()`` calls — seeded runs are
    unchanged by the optimisation.

    Parameters
    ----------
    rng:
        The generator that backs the block.
    chunk:
        Doubles drawn per refill.  Requests larger than *chunk* are served
        with a single dedicated draw, so any ``take`` size is legal.
    """

    __slots__ = ("_rng", "_chunk", "_buffer", "_pos")

    def __init__(self, rng: np.random.Generator, chunk: int = 1 << 14) -> None:
        if chunk <= 0:
            raise ValueError(f"chunk must be positive, got {chunk}")
        self._rng = rng
        self._chunk = int(chunk)
        self._buffer = np.empty(0, dtype=np.float64)
        self._pos = 0

    @property
    def remaining(self) -> int:
        """Uniforms currently buffered and not yet consumed."""
        return self._buffer.size - self._pos

    def next(self) -> float:
        """One uniform in ``[0, 1)`` (scalar fast path)."""
        if self._pos >= self._buffer.size:
            self._buffer = self._rng.random(self._chunk)
            self._pos = 0
        value = self._buffer[self._pos]
        self._pos += 1
        return float(value)

    def take(self, count: int) -> np.ndarray:
        """*count* uniforms in ``[0, 1)`` as a fresh array.

        Consumes buffered values first, then tops up with one vectorised
        draw, preserving the exact stream order of scalar consumption.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        available = self._buffer.size - self._pos
        if count <= available:
            out = self._buffer[self._pos : self._pos + count].copy()
            self._pos += count
            return out
        head = self._buffer[self._pos :]
        self._pos = self._buffer.size
        tail = self._rng.random(count - head.size)
        return np.concatenate((head, tail))


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive *count* statistically independent child generators.

    Uses :class:`numpy.random.SeedSequence` spawning so children never
    overlap, no matter how many draws each consumes.  Handy for running
    the five detection algorithms on identical graphs but independent
    randomness.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        sequence = seed
    elif isinstance(seed, np.random.Generator):
        sequence = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    else:
        sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]
