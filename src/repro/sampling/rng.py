"""Random-number-generator plumbing.

All stochastic code in the library accepts a ``seed`` argument that may be
``None`` (fresh entropy), an ``int`` (reproducible), or an existing
:class:`numpy.random.Generator` (caller-managed stream).  Centralising the
coercion here keeps every sampler reproducible and keeps seeding idioms
consistent across the package.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn_rngs", "RandomBlock", "SeedLike"]

SeedLike = int | np.random.Generator | np.random.SeedSequence | None


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged, so callers can
    thread one stream through a whole experiment.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class RandomBlock:
    """Uniform draws served from a pre-drawn block, refilled in chunks.

    Scalar ``Generator.random()`` calls cost a full Python round-trip into
    the bit generator per draw; the hot sampling loops instead pull their
    uniforms from this buffer, which is refilled ``chunk`` doubles at a
    time with one vectorised call.  Because numpy generators produce the
    same double stream whether consumed one at a time or in blocks,
    draining a :class:`RandomBlock` yields *bit-identical* values to the
    equivalent sequence of scalar ``rng.random()`` calls — seeded runs are
    unchanged by the optimisation.

    Parameters
    ----------
    rng:
        The generator that backs the block.
    chunk:
        Doubles drawn per refill.  Requests larger than *chunk* are served
        with a single dedicated draw, so any ``take`` size is legal.
    """

    __slots__ = ("_rng", "_chunk", "_buffer", "_pos")

    def __init__(self, rng: np.random.Generator, chunk: int = 1 << 14) -> None:
        if chunk <= 0:
            raise ValueError(f"chunk must be positive, got {chunk}")
        self._rng = rng
        self._chunk = int(chunk)
        self._buffer = np.empty(0, dtype=np.float64)
        self._pos = 0

    @property
    def remaining(self) -> int:
        """Uniforms currently buffered and not yet consumed."""
        return self._buffer.size - self._pos

    def next(self) -> float:
        """One uniform in ``[0, 1)`` (scalar fast path)."""
        if self._pos >= self._buffer.size:
            self._buffer = self._rng.random(self._chunk)
            self._pos = 0
        value = self._buffer[self._pos]
        self._pos += 1
        return float(value)

    def take(self, count: int) -> np.ndarray:
        """*count* uniforms in ``[0, 1)`` as a fresh array.

        Consumes buffered values first, then tops up with one vectorised
        draw, preserving the exact stream order of scalar consumption.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        available = self._buffer.size - self._pos
        if count <= available:
            out = self._buffer[self._pos : self._pos + count].copy()
            self._pos += count
            return out
        head = self._buffer[self._pos :]
        self._pos = self._buffer.size
        tail = self._rng.random(count - head.size)
        return np.concatenate((head, tail))


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive *count* statistically independent child generators.

    Uses :class:`numpy.random.SeedSequence` spawning so children never
    overlap, no matter how many draws each consumes.  Handy for running
    the five detection algorithms on identical graphs but independent
    randomness.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        sequence = seed
    elif isinstance(seed, np.random.Generator):
        sequence = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    else:
        sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]
