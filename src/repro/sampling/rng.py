"""Random-number-generator plumbing.

All stochastic code in the library accepts a ``seed`` argument that may be
``None`` (fresh entropy), an ``int`` (reproducible), or an existing
:class:`numpy.random.Generator` (caller-managed stream).  Centralising the
coercion here keeps every sampler reproducible and keeps seeding idioms
consistent across the package.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn_rngs", "SeedLike"]

SeedLike = int | np.random.Generator | np.random.SeedSequence | None


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged, so callers can
    thread one stream through a whole experiment.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive *count* statistically independent child generators.

    Uses :class:`numpy.random.SeedSequence` spawning so children never
    overlap, no matter how many draws each consumes.  Handy for running
    the five detection algorithms on identical graphs but independent
    randomness.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        sequence = seed
    elif isinstance(seed, np.random.Generator):
        sequence = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    else:
        sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]
