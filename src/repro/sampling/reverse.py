"""Reverse sampling — Algorithm 5 of the paper.

Instead of materialising a whole possible world and propagating forward,
the reverse sampler answers, for each *candidate* node ``v``, the question
"does ``v`` default in this world?" by a lazy backward BFS over in-edges:
``v`` defaults iff the backward search reaches a node that defaults by
itself through edges that survive.

Random choices (per-node self-default, per-edge survival) are drawn lazily
on first encounter and **memoised for the rest of the world**, so multiple
candidates within one world share consistent randomness — exactly the
``checked`` / ``survived`` bookkeeping of Algorithm 5.  The ``hv`` memo is
also shared: once a node is known to default (self-default or a confirmed
candidate), later candidate searches that touch it stop immediately
(lines 7–8 of the pseudocode).

The search runs directly on the in-CSR of the original graph, which is the
out-adjacency of the reversed graph ``Gt`` the paper feeds to Algorithm 5.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Sequence

import numpy as np

from repro.core.errors import SamplingError
from repro.core.graph import UncertainGraph
from repro.sampling.forward import ForwardEstimate
from repro.sampling.rng import SeedLike, make_rng

__all__ = ["ReverseWorld", "ReverseSampler"]


class ReverseWorld:
    """Lazy possible-world shared by all candidate queries of one sample.

    The world's random choices are materialised on demand and cached, so
    querying many candidates against one world costs each random draw at
    most once (the paper's "avoid generating random numbers for the same
    node/edge multiple times").
    """

    __slots__ = (
        "_graph",
        "_rng",
        "_in_csr",
        "_ps",
        "_node_checked",
        "_node_self_default",
        "_edge_checked",
        "_edge_survived",
        "_hv",
        "_visit_stamp",
        "_stamp",
        "nodes_touched",
        "edges_touched",
    )

    def __init__(self, graph: UncertainGraph, rng: np.random.Generator) -> None:
        self._graph = graph
        self._rng = rng
        self._in_csr = graph.in_csr()
        self._ps = graph.self_risk_array
        n, m = graph.num_nodes, graph.num_edges
        self._node_checked = np.zeros(n, dtype=bool)
        self._node_self_default = np.zeros(n, dtype=bool)
        self._edge_checked = np.zeros(m, dtype=bool)
        self._edge_survived = np.zeros(m, dtype=bool)
        self._hv = np.zeros(n, dtype=bool)
        # Per-candidate "visited" is reset with a version stamp instead of
        # an O(n) clear per candidate.
        self._visit_stamp = np.zeros(n, dtype=np.int64)
        self._stamp = 0
        self.nodes_touched = 0
        self.edges_touched = 0

    def _node_defaults_by_self(self, u: int) -> bool:
        """Lazily decide (and memoise) whether *u* defaults by itself."""
        if not self._node_checked[u]:
            self._node_checked[u] = True
            self._node_self_default[u] = self._rng.random() <= self._ps[u]
            self.nodes_touched += 1
        return bool(self._node_self_default[u])

    def _edge_survives(self, edge_id: int, probability: float) -> bool:
        """Lazily decide (and memoise) whether an edge carries contagion."""
        if not self._edge_checked[edge_id]:
            self._edge_checked[edge_id] = True
            self._edge_survived[edge_id] = self._rng.random() <= probability
            self.edges_touched += 1
        return bool(self._edge_survived[edge_id])

    def candidate_defaults(self, v: int) -> bool:
        """Algorithm 5 body: does candidate *v* default in this world?"""
        self._stamp += 1
        stamp = self._stamp
        in_csr = self._in_csr
        self._visit_stamp[v] = stamp
        queue: deque[int] = deque((v,))
        result = False
        while queue:
            u = queue.popleft()
            if self._hv[u]:  # lines 7-8: known defaulting node reached
                result = True
                break
            if self._node_defaults_by_self(u):  # lines 9-13
                self._hv[u] = True
                result = True
                break
            start, stop = in_csr.indptr[u], in_csr.indptr[u + 1]
            for pos in range(start, stop):  # lines 14-20
                neighbor = int(in_csr.indices[pos])
                if self._visit_stamp[neighbor] == stamp:
                    continue
                edge_id = int(in_csr.edge_ids[pos])
                if self._edge_survives(edge_id, float(in_csr.probs[pos])):
                    self._visit_stamp[neighbor] = stamp
                    queue.append(neighbor)
        if result:
            self._hv[v] = True
        return result


class ReverseSampler:
    """Estimate candidate default probabilities via reverse sampling.

    Parameters
    ----------
    graph:
        The uncertain graph (the *original* direction; the sampler walks
        its in-edges, which is equivalent to walking ``Gt`` forward).
    candidates:
        Internal node indices whose default probability must be estimated
        (the candidate set ``B`` of Algorithm 4).
    seed:
        Seed, generator, or ``None``.
    """

    def __init__(
        self,
        graph: UncertainGraph,
        candidates: Sequence[int] | np.ndarray,
        seed: SeedLike = None,
    ) -> None:
        self._graph = graph
        self._candidates = np.asarray(candidates, dtype=np.int64)
        if self._candidates.size == 0:
            raise SamplingError("candidate set must not be empty")
        if self._candidates.min() < 0 or self._candidates.max() >= graph.num_nodes:
            raise SamplingError("candidate index out of range")
        self._rng = make_rng(seed)
        self.nodes_touched = 0
        self.edges_touched = 0

    @property
    def candidates(self) -> np.ndarray:
        """Candidate internal indices (copy not taken; treat as read-only)."""
        return self._candidates

    def iter_samples(self, samples: int) -> Iterator[np.ndarray]:
        """Yield, per world, the boolean default vector of the candidates.

        Element ``j`` of each yielded array answers "does candidate ``j``
        default in this world".  BSRBK consumes this stream one world at a
        time so it can stop early.
        """
        if samples <= 0:
            raise SamplingError(f"samples must be positive, got {samples}")
        for _ in range(samples):
            world = ReverseWorld(self._graph, self._rng)
            outcome = np.fromiter(
                (world.candidate_defaults(int(v)) for v in self._candidates),
                dtype=bool,
                count=self._candidates.size,
            )
            self.nodes_touched += world.nodes_touched
            self.edges_touched += world.edges_touched
            yield outcome

    def run(self, samples: int) -> ForwardEstimate:
        """Run *samples* worlds; counts are aligned with ``candidates``."""
        counts = np.zeros(self._candidates.size, dtype=np.int64)
        for outcome in self.iter_samples(samples):
            counts += outcome
        return ForwardEstimate(counts=counts, samples=int(samples))

    def estimate_probabilities(self, samples: int) -> np.ndarray:
        """Estimated ``p(v)`` for each candidate, aligned with input order."""
        return self.run(samples).probabilities
