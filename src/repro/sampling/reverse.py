"""Reverse sampling — Algorithm 5 of the paper, in two engines.

Instead of materialising a whole possible world and propagating forward,
reverse sampling answers, for each *candidate* node ``v``, the question
"does ``v`` default in this world?" by a lazy backward search over
in-edges: ``v`` defaults iff the search reaches a node that defaults by
itself through edges that survive.  Random choices (per-node self-default,
per-edge survival) are drawn lazily on first encounter and memoised for
the rest of the world, so multiple candidates within one world share
consistent randomness — the ``checked`` / ``survived`` / ``hv``
bookkeeping of Algorithm 5.

The module is organised around three pieces:

* :class:`WorldArena` — owns every per-world buffer (node/edge memo
  tables, the ``hv`` memo, the per-search visit stamps) exactly once for
  the lifetime of a sampling run.  Worlds are "reset" by bumping an epoch
  counter in O(1); a memo entry is valid only if its stamp matches the
  current epoch, so no buffer is ever reallocated or cleared between
  worlds.  Randomness comes from a shared
  :class:`~repro.sampling.rng.RandomBlock`, which serves uniforms from a
  pre-drawn chunk instead of one ``rng.random()`` round-trip per draw.
* :class:`ReverseWorld` — the executable reference: a line-by-line
  transcription of Algorithm 5's per-candidate BFS, running on arena
  state.  Tests check the batched engine against it.  A world can also be
  driven by *entity-indexed* uniforms (``node_uniforms`` /
  ``edge_uniforms``), which makes its outcomes a pure function of those
  arrays — the draw policy the equivalence tests share between engines.
* :class:`BatchedReverseSampler` — the production engine.  It flattens a
  batch of worlds into one index space (world ``w``, node ``v`` ↦ key
  ``w·n + v``) and runs a single multi-source backward closure per batch
  with flat numpy frontiers: no ``deque``, no per-element ``int()``
  casts, one vectorised uniform draw per frontier.  A second vectorised
  pass propagates self-defaults forward through the surviving explored
  edges to label every candidate at once — that pass is the shared
  multi-world propagation kernel
  (:func:`repro.core.propagation.propagate_edge_list`), the same code
  that powers the bit-parallel exact oracle and the Monte-Carlo ground
  truth.  Given the same entity-indexed
  uniforms it returns exactly the reference's answers (see
  ``tests/test_batched_reverse.py``); under block randomness it is
  statistically identical and an order of magnitude faster.

Both engines report ``nodes_touched`` / ``edges_touched`` in the same
unit — the number of *distinct* per-world node and edge draws — and the
batched engine attributes them per consumed world, so counts never
depend on the ``world_batch`` tuning knob.  The unions-of-closures the
batched engine explores do not replicate Algorithm 5's per-candidate
early-exit truncation exactly (it may draw somewhat more than the
reference on the same world), which is why the Figure-6 work-count
experiment pins ``engine="reference"`` — the executable specification.
Production detection defaults to the *indexed* engine
(:class:`~repro.sampling.indexed.IndexedReverseSampler`): same flat
closure, counter-PRF randomness, measured at wall-clock parity with the
batched stream and individually re-evaluable worlds on top.

The searches run directly on the in-CSR of the original graph, which is
the out-adjacency of the reversed graph ``Gt`` the paper feeds to
Algorithm 5.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Sequence

import numpy as np

from repro.core.errors import SamplingError
from repro.core.graph import UncertainGraph
from repro.core.propagation import propagate_edge_list, ragged_positions
from repro.sampling.forward import ForwardEstimate
from repro.sampling.rng import RandomBlock, SeedLike, make_rng

__all__ = [
    "WorldArena",
    "ReverseWorld",
    "ReverseSampler",
    "BatchedReverseSampler",
    "reverse_engine",
]


def _validate_candidates(
    graph: UncertainGraph, candidates: Sequence[int] | np.ndarray
) -> np.ndarray:
    """Shared candidate validation of both reverse engines."""
    array = np.asarray(candidates, dtype=np.int64)
    if array.size == 0:
        raise SamplingError("candidate set must not be empty")
    if array.min() < 0 or array.max() >= graph.num_nodes:
        raise SamplingError("candidate index out of range")
    return array


class WorldArena:
    """Reusable per-world state for reverse sampling.

    One arena serves every world of a sampling run.  The memo buffers
    (``checked`` / ``survived`` / ``hv``) are allocated once and validity
    is tracked with epoch stamps: entry ``u`` belongs to the current world
    iff ``stamp[u] == epoch``, so opening a new world is a single integer
    increment instead of five ``O(n + m)`` allocations.

    Parameters
    ----------
    graph:
        The uncertain graph being sampled.
    rng:
        Seed, generator, or ``None``; feeds the arena's
        :class:`~repro.sampling.rng.RandomBlock`.
    chunk:
        Uniforms pre-drawn per block refill.
    """

    __slots__ = (
        "_graph",
        "_in_csr",
        "_ps",
        "_block",
        "_node_stamp",
        "_node_default",
        "_edge_stamp",
        "_edge_survived",
        "_hv_stamp",
        "_visit_stamp",
        "_epoch",
        "_search",
    )

    def __init__(
        self, graph: UncertainGraph, rng: SeedLike = None, chunk: int = 1 << 14
    ) -> None:
        self._graph = graph
        self._in_csr = graph.in_csr()
        self._ps = graph.self_risk_array
        self._block = RandomBlock(make_rng(rng), chunk)
        n, m = graph.num_nodes, graph.num_edges
        self._node_stamp = np.zeros(n, dtype=np.int64)
        self._node_default = np.zeros(n, dtype=bool)
        self._edge_stamp = np.zeros(m, dtype=np.int64)
        self._edge_survived = np.zeros(m, dtype=bool)
        self._hv_stamp = np.zeros(n, dtype=np.int64)
        self._visit_stamp = np.zeros(n, dtype=np.int64)
        self._epoch = 0
        self._search = 0

    @property
    def graph(self) -> UncertainGraph:
        """The graph whose worlds this arena materialises."""
        return self._graph

    @property
    def epoch(self) -> int:
        """Current world epoch (0 until the first world is opened)."""
        return self._epoch

    def new_world(
        self,
        node_uniforms: np.ndarray | None = None,
        edge_uniforms: np.ndarray | None = None,
    ) -> "ReverseWorld":
        """Open the next world: O(1) — bumps the epoch, reuses all buffers.

        When *node_uniforms* / *edge_uniforms* are given they replace the
        arena's random block for this world: the choice for node ``u``
        (edge ``e``) is ``uniform[u] <= ps(u)`` (``uniform[e] <= p(e)``),
        making outcomes a deterministic function of the arrays.

        Opening a world retires the previous one: querying a stale
        :class:`ReverseWorld` raises, because its memo stamps would
        corrupt the live world's state.
        """
        self._epoch += 1
        # Re-read self-risks so probability mutations between worlds are
        # observed (edge probabilities are already read live through the
        # in-place-patched CSR).
        self._ps = self._graph.self_risk_array
        return ReverseWorld(
            arena=self, node_uniforms=node_uniforms, edge_uniforms=edge_uniforms
        )


class ReverseWorld:
    """Lazy possible-world shared by all candidate queries of one sample.

    The executable reference for Algorithm 5.  Random choices are
    materialised on demand into the arena's epoch-stamped memo tables, so
    querying many candidates against one world costs each draw at most
    once (the paper's "avoid generating random numbers for the same
    node/edge multiple times").

    Construct either directly — ``ReverseWorld(graph, rng)`` builds a
    private single-world :class:`WorldArena` — or through
    :meth:`WorldArena.new_world`, which reuses one arena across worlds.
    """

    __slots__ = (
        "_arena",
        "_epoch",
        "_node_uniforms",
        "_edge_uniforms",
        "nodes_touched",
        "edges_touched",
    )

    def __init__(
        self,
        graph: UncertainGraph | None = None,
        rng: SeedLike = None,
        *,
        arena: WorldArena | None = None,
        node_uniforms: np.ndarray | None = None,
        edge_uniforms: np.ndarray | None = None,
    ) -> None:
        if (graph is None) == (arena is None):
            raise SamplingError("pass exactly one of graph or arena")
        if arena is None:
            arena = WorldArena(graph, rng)
            arena._epoch += 1
        self._arena = arena
        self._epoch = arena._epoch
        self._node_uniforms = node_uniforms
        self._edge_uniforms = edge_uniforms
        self.nodes_touched = 0
        self.edges_touched = 0

    def _node_defaults_by_self(self, u: int) -> bool:
        """Lazily decide (and memoise) whether *u* defaults by itself."""
        arena = self._arena
        if arena._node_stamp[u] != self._epoch:
            arena._node_stamp[u] = self._epoch
            if self._node_uniforms is not None:
                draw = float(self._node_uniforms[u])
            else:
                draw = arena._block.next()
            arena._node_default[u] = draw <= arena._ps[u]
            self.nodes_touched += 1
        return bool(arena._node_default[u])

    def _edge_survives(self, edge_id: int, probability: float) -> bool:
        """Lazily decide (and memoise) whether an edge carries contagion."""
        arena = self._arena
        if arena._edge_stamp[edge_id] != self._epoch:
            arena._edge_stamp[edge_id] = self._epoch
            if self._edge_uniforms is not None:
                draw = float(self._edge_uniforms[edge_id])
            else:
                draw = arena._block.next()
            arena._edge_survived[edge_id] = draw <= probability
            self.edges_touched += 1
        return bool(arena._edge_survived[edge_id])

    def candidate_defaults(self, v: int) -> bool:
        """Algorithm 5 body: does candidate *v* default in this world?"""
        arena = self._arena
        if self._epoch != arena._epoch:
            raise SamplingError(
                "this world was retired by WorldArena.new_world(); "
                "query worlds one at a time"
            )
        arena._search += 1
        stamp = arena._search
        in_csr = arena._in_csr
        visit = arena._visit_stamp
        visit[v] = stamp
        queue: deque[int] = deque((v,))
        result = False
        while queue:
            u = queue.popleft()
            if arena._hv_stamp[u] == self._epoch:  # lines 7-8: known default
                result = True
                break
            if self._node_defaults_by_self(u):  # lines 9-13
                arena._hv_stamp[u] = self._epoch
                result = True
                break
            start, stop = in_csr.indptr[u], in_csr.indptr[u + 1]
            for pos in range(start, stop):  # lines 14-20
                neighbor = int(in_csr.indices[pos])
                if visit[neighbor] == stamp:
                    continue
                edge_id = int(in_csr.edge_ids[pos])
                if self._edge_survives(edge_id, float(in_csr.probs[pos])):
                    visit[neighbor] = stamp
                    queue.append(neighbor)
        if result:
            arena._hv_stamp[v] = self._epoch
        return result


class ReverseSampler:
    """Estimate candidate default probabilities via the reference engine.

    Runs one :class:`ReverseWorld` per sample on a shared
    :class:`WorldArena` (no per-world allocations).  The per-candidate BFS
    is still pure Python — :class:`BatchedReverseSampler` is the fast
    production engine; this class remains as the executable specification
    and for per-world introspection.

    Parameters
    ----------
    graph:
        The uncertain graph (the *original* direction; the sampler walks
        its in-edges, which is equivalent to walking ``Gt`` forward).
    candidates:
        Internal node indices whose default probability must be estimated
        (the candidate set ``B`` of Algorithm 4).
    seed:
        Seed, generator, or ``None``.
    """

    def __init__(
        self,
        graph: UncertainGraph,
        candidates: Sequence[int] | np.ndarray,
        seed: SeedLike = None,
    ) -> None:
        self._graph = graph
        self._candidates = _validate_candidates(graph, candidates)
        self._arena = WorldArena(graph, make_rng(seed))
        self.nodes_touched = 0
        self.edges_touched = 0

    @property
    def candidates(self) -> np.ndarray:
        """Candidate internal indices (copy not taken; treat as read-only)."""
        return self._candidates

    def iter_samples(self, samples: int) -> Iterator[np.ndarray]:
        """Yield, per world, the boolean default vector of the candidates.

        Element ``j`` of each yielded array answers "does candidate ``j``
        default in this world".  BSRBK consumes this stream one world at a
        time so it can stop early.
        """
        if samples <= 0:
            raise SamplingError(f"samples must be positive, got {samples}")
        for _ in range(samples):
            world = self._arena.new_world()
            outcome = np.fromiter(
                (world.candidate_defaults(int(v)) for v in self._candidates),
                dtype=bool,
                count=self._candidates.size,
            )
            self.nodes_touched += world.nodes_touched
            self.edges_touched += world.edges_touched
            yield outcome

    def run(self, samples: int) -> ForwardEstimate:
        """Run *samples* worlds; counts are aligned with ``candidates``."""
        counts = np.zeros(self._candidates.size, dtype=np.int64)
        for outcome in self.iter_samples(samples):
            counts += outcome
        return ForwardEstimate(counts=counts, samples=int(samples))

    def estimate_probabilities(self, samples: int) -> np.ndarray:
        """Estimated ``p(v)`` for each candidate, aligned with input order."""
        return self.run(samples).probabilities


class BatchedReverseSampler:
    """Vectorised reverse sampling over flat multi-world index space.

    A batch of ``W`` worlds is evaluated at once by mapping world ``w``,
    node ``v`` to the flat key ``w * n + v``.  Per batch the engine runs:

    1. **Backward closure** — a multi-source BFS from every candidate of
       every world simultaneously.  Each frontier is one flat int64 array;
       self-default and edge-survival uniforms are drawn per frontier with
       a single :class:`~repro.sampling.rng.RandomBlock` call.  Nodes that
       default by themselves are *not* expanded (Algorithm 5 stops there),
       every other reached node has all in-edges drawn exactly once per
       world.
    2. **Forward labelling** — self-defaulting nodes seed a vectorised
       propagation along the surviving edges collected in step 1; a
       candidate defaults iff the propagation reaches it.

    Both steps touch only the backward-reachable region of each world —
    the asymptotic win of reverse over forward sampling is preserved.
    ``nodes_touched`` / ``edges_touched`` count distinct per-(world,
    node) / per-(world, edge) draws (the reference engine's unit of
    work), attributed to exactly the worlds a caller consumes; because
    the union closure skips Algorithm 5's per-candidate early exits, the
    totals can exceed the reference engine's on identical worlds.

    Parameters
    ----------
    graph, candidates, seed:
        As for :class:`ReverseSampler`.
    world_batch:
        Worlds evaluated per flat batch.  ``None`` picks a size that keeps
        the two ``world_batch * n`` stamp buffers around a few megabytes.
    chunk:
        Uniforms pre-drawn per random-block refill.
    """

    __slots__ = (
        "_graph",
        "_candidates",
        "_unique_candidates",
        "_rng",
        "_block",
        "_in_csr",
        "_ps",
        "_n",
        "_world_batch",
        "_closure_stamp",
        "_default_stamp",
        "_epoch",
        "nodes_touched",
        "edges_touched",
    )

    def __init__(
        self,
        graph: UncertainGraph,
        candidates: Sequence[int] | np.ndarray,
        seed: SeedLike = None,
        *,
        world_batch: int | None = None,
        chunk: int = 1 << 15,
    ) -> None:
        self._graph = graph
        self._candidates = _validate_candidates(graph, candidates)
        self._unique_candidates = np.unique(self._candidates)
        self._rng = make_rng(seed)
        self._block = RandomBlock(self._rng, chunk)
        self._in_csr = graph.in_csr()
        self._ps = graph.self_risk_array
        n = graph.num_nodes
        self._n = n
        if world_batch is None:
            world_batch = max(1, min(32, 2_000_000 // max(n, 1)))
        if world_batch <= 0:
            raise SamplingError(
                f"world_batch must be positive, got {world_batch}"
            )
        self._world_batch = int(world_batch)
        self._closure_stamp = np.zeros(self._world_batch * n, dtype=np.int64)
        self._default_stamp = np.zeros(self._world_batch * n, dtype=np.int64)
        self._epoch = 0
        self.nodes_touched = 0
        self.edges_touched = 0

    @property
    def candidates(self) -> np.ndarray:
        """Candidate internal indices (copy not taken; treat as read-only)."""
        return self._candidates

    @property
    def world_batch(self) -> int:
        """Worlds evaluated per flat batch."""
        return self._world_batch

    def _sample_block(
        self,
        worlds: int,
        node_uniforms: np.ndarray | None = None,
        edge_uniforms: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Evaluate *worlds* possible worlds.

        Returns ``(outcomes, node_draws, edge_draws)``: the boolean
        candidate-default matrix (rows align with worlds, columns with
        candidates) plus the per-world draw counts, so callers can
        attribute work to exactly the worlds they consume.
        """
        n = self._n
        csr = self._in_csr
        indptr, indices, probs = csr.indptr, csr.indices, csr.probs
        # Self-risks are re-read per block so probability mutations between
        # runs are observed, matching the live CSR reads of edge probs.
        self._ps = self._graph.self_risk_array
        self._epoch += 1
        epoch = self._epoch
        closure = self._closure_stamp
        defaulted = self._default_stamp
        node_draw_counts = np.zeros(worlds, dtype=np.int64)
        edge_draw_counts = np.zeros(worlds, dtype=np.float64)
        offsets = np.arange(worlds, dtype=np.int64) * n
        frontier = (offsets[:, None] + self._unique_candidates[None, :]).ravel()
        closure[frontier] = epoch
        seed_parts: list[np.ndarray] = []
        src_parts: list[np.ndarray] = []
        dst_parts: list[np.ndarray] = []
        while frontier.size:
            nodes = frontier % n
            if node_uniforms is None:
                draws = self._block.take(frontier.size)
            else:
                draws = node_uniforms[nodes]
            self_default = draws <= self._ps[nodes]
            node_draw_counts += np.bincount(frontier // n, minlength=worlds)
            if self_default.any():
                seed_parts.append(frontier[self_default])
            expand = frontier[~self_default]
            if not expand.size:
                break
            expand_nodes = expand % n
            world_base = expand - expand_nodes
            # Ragged gather: flat positions of every in-edge slot of the
            # frontier, segment by segment.
            pos, counts = ragged_positions(indptr, expand_nodes)
            if pos.size == 0:
                break
            if edge_uniforms is None:
                edge_draws = self._block.take(pos.size)
            else:
                edge_draws = edge_uniforms[csr.edge_ids[pos]]
            survived = edge_draws <= probs[pos]
            edge_draw_counts += np.bincount(
                expand // n, weights=counts, minlength=worlds
            )
            if not survived.any():
                break
            src_keys = (np.repeat(world_base, counts) + indices[pos])[survived]
            dst_keys = np.repeat(expand, counts)[survived]
            src_parts.append(src_keys)
            dst_parts.append(dst_keys)
            fresh = src_keys[closure[src_keys] != epoch]
            if fresh.size:
                fresh = np.unique(fresh)
                closure[fresh] = epoch
            frontier = fresh
        if seed_parts:
            defaulted[np.concatenate(seed_parts)] = epoch
            if src_parts:
                # Forward labelling over the surviving explored edges is
                # the shared multi-world propagation kernel, running on
                # this sampler's epoch-stamped arena buffer.
                propagate_edge_list(
                    defaulted,
                    np.concatenate(src_parts),
                    np.concatenate(dst_parts),
                    epoch,
                )
        keys = offsets[:, None] + self._candidates[None, :]
        return (
            defaulted[keys] == epoch,
            node_draw_counts,
            edge_draw_counts.astype(np.int64),
        )

    def outcomes_for_uniforms(
        self, node_uniforms: np.ndarray, edge_uniforms: np.ndarray
    ) -> np.ndarray:
        """One world driven by entity-indexed uniforms (the test draw policy).

        Node ``u`` self-defaults iff ``node_uniforms[u] <= ps(u)``; edge
        ``e`` survives iff ``edge_uniforms[e] <= p(e)``.  Outcomes are a
        pure function of the two arrays, so they can be compared exactly
        against a :class:`ReverseWorld` fed the same arrays.
        """
        node_uniforms = np.asarray(node_uniforms, dtype=np.float64)
        edge_uniforms = np.asarray(edge_uniforms, dtype=np.float64)
        if node_uniforms.shape != (self._graph.num_nodes,):
            raise SamplingError(
                f"need one uniform per node, got shape {node_uniforms.shape}"
            )
        if edge_uniforms.shape != (self._graph.num_edges,):
            raise SamplingError(
                f"need one uniform per edge, got shape {edge_uniforms.shape}"
            )
        outcomes, node_draws, edge_draws = self._sample_block(
            1, node_uniforms, edge_uniforms
        )
        self.nodes_touched += int(node_draws[0])
        self.edges_touched += int(edge_draws[0])
        return outcomes[0]

    def iter_samples(self, samples: int) -> Iterator[np.ndarray]:
        """Yield per-world candidate default vectors (batched internally).

        Worlds are materialised ``world_batch`` at a time; consumers that
        stop early (BSRBK) waste at most one partial batch of wall-clock
        work, but ``nodes_touched`` / ``edges_touched`` are attributed
        per *consumed* world, so reported work counts never depend on the
        batch size.
        """
        if samples <= 0:
            raise SamplingError(f"samples must be positive, got {samples}")
        remaining = int(samples)
        while remaining > 0:
            worlds = min(self._world_batch, remaining)
            outcomes, node_draws, edge_draws = self._sample_block(worlds)
            for index in range(worlds):
                self.nodes_touched += int(node_draws[index])
                self.edges_touched += int(edge_draws[index])
                yield outcomes[index]
            remaining -= worlds

    def run(self, samples: int) -> ForwardEstimate:
        """Run *samples* worlds; counts are aligned with ``candidates``."""
        if samples <= 0:
            raise SamplingError(f"samples must be positive, got {samples}")
        counts = np.zeros(self._candidates.size, dtype=np.int64)
        remaining = int(samples)
        while remaining > 0:
            worlds = min(self._world_batch, remaining)
            outcomes, node_draws, edge_draws = self._sample_block(worlds)
            counts += outcomes.sum(axis=0)
            self.nodes_touched += int(node_draws.sum())
            self.edges_touched += int(edge_draws.sum())
            remaining -= worlds
        return ForwardEstimate(counts=counts, samples=int(samples))

    def estimate_probabilities(self, samples: int) -> np.ndarray:
        """Estimated ``p(v)`` for each candidate, aligned with input order."""
        return self.run(samples).probabilities

#: Engines selectable by name in the SR/BSR/BSRBK detectors.  All three
#: report ``nodes_touched`` / ``edges_touched`` in the same unit
#: (distinct per-world draws), but the batched/indexed union closures
#: explore past Algorithm 5's per-candidate early exits, so their counts
#: can run higher; experiments that *compare* work counts (Figure 6)
#: should pin ``engine="reference"``, the executable specification.
#: ``"indexed"`` (counter-based per-entity randomness, re-evaluable per
#: world — the streaming monitor's engine) is resolved lazily to avoid
#: an import cycle.
_ENGINES = {
    "batched": BatchedReverseSampler,
    "reference": ReverseSampler,
}


def reverse_engine(name: str):
    """Resolve ``"batched"`` / ``"reference"`` / ``"indexed"`` to a class."""
    if name == "indexed":
        from repro.sampling.indexed import IndexedReverseSampler

        return IndexedReverseSampler
    try:
        return _ENGINES[name]
    except KeyError:
        known = sorted([*_ENGINES, "indexed"])
        raise SamplingError(
            f"unknown reverse engine {name!r}; choose from {known}"
        ) from None
