"""Counter-based reverse sampling — the streaming-friendly third engine.

The batched engine (:class:`~repro.sampling.reverse.BatchedReverseSampler`)
draws its uniforms from one *sequential* stream, so the random choice made
for an entity depends on every draw that preceded it.  That is fine for a
one-shot detection, but it couples all worlds together: change one edge
probability and the whole stream downstream of its first draw shifts, so
nothing short of a full re-run reproduces what a fresh detection would
return.

This module replaces the stream with a **counter-based PRF**: the uniform
for node ``v`` (edge ``e``) in world ``w`` is a pure hash of
``(stream key, w, entity)`` — the SplitMix64 output function evaluated at
a per-entity counter (:func:`repro.sampling.rng.hashed_uniforms`, which
mixes whole counter blocks in place, one numpy dispatch per hash stage).
Consequences:

* every world's outcome is a pure function of ``(seed, w, graph)`` —
  worlds can be evaluated in any order, in any batch size, and
  re-evaluated individually, always bit-identically;
* a probability patch ``p -> p'`` flips an entity's realisation in world
  ``w`` only when its fixed uniform lies in ``(min(p, p'), max(p, p')]``,
  so the *expected fraction of invalidated worlds equals |p' - p|* — the
  property the streaming :class:`~repro.streaming.monitor.TopKMonitor`
  builds its incremental re-estimation on;
* the engine needs no memo tables at all: re-hashing an entity is as
  cheap as memoising it, and two directions/passes agree by construction;
* every world also carries a fixed *sample hash*
  (:meth:`IndexedReverseSampler.world_hashes`, a second PRF key), so
  BSRBK's ascending-hash processing order is a pure function of the
  world index — the bottom-k early stop decouples from the stream.

The exploration itself is the same two-pass structure as the batched
engine — a flat multi-world backward closure followed by forward
labelling through :func:`repro.core.propagation.propagate_edge_list` —
and it reports ``nodes_touched`` / ``edges_touched`` in the same unit
(distinct per-world entity draws).  Under entity-indexed uniforms the
per-world outcomes equal the reference :class:`ReverseWorld` fed the same
uniform arrays (see ``tests/test_streaming.py``).

Two work-count identities the compressed world state
(:mod:`repro.sampling.worldstate`) relies on, both direct consequences
of the closure drawing every entity at most once per world:

* ``node_draws[w] == popcount(touched_nodes[w])``;
* ``edge_draws[w] == sum(in_degree[v] for v in expanded_nodes[w])``
  where the *expanded* nodes are the touched nodes that did not
  self-default — an edge is drawn iff its head was expanded, so the
  ``(W, m)`` edge mask never needs to be materialised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.core.errors import SamplingError
from repro.core.graph import UncertainGraph
from repro.core.propagation import propagate_edge_list, ragged_positions
from repro.sampling.forward import ForwardEstimate
from repro.sampling.reverse import _validate_candidates
from repro.sampling.rng import (
    SeedLike,
    derive_stream_key,
    hashed_mantissas_inplace as _hashed_lattice,
    hashed_uniforms,
    splitmix64_mix,
)

__all__ = [
    "hashed_uniforms",
    "derive_stream_key",
    "WorldBlock",
    "IndexedReverseSampler",
    "STABLE_EDGE_BASE",
    "STABLE_STRIDE",
    "COUNTER_LAYOUTS",
]

_U64 = np.uint64
_TWO_53 = 2.0**53
#: Salt separating the per-world *sample hash* key from the draw key, so
#: BSRBK's processing order never correlates with world contents.
_HASH_SALT = _U64(0xD1B54A32D192ED03)

#: Counter layouts.  ``"packed"`` (the default) packs each world's
#: counters contiguously — node ``v`` of world ``w`` at ``w*(n+m) + v``,
#: edge ``e`` at ``w*(n+m) + n + e`` — which is the historical layout
#: every pinned result was produced under.  Its stride depends on the
#: graph's size, so *growing* the graph re-keys every counter.
#: ``"stable"`` reserves fixed-width lanes instead: node ``v`` at
#: ``w * 2^33 + v``, edge ``e`` at ``w * 2^33 + 2^32 + e``.  Topology
#: growth then never moves an existing ``(world, entity)`` counter —
#: cached realisations stay valid verbatim, which is what makes
#: incremental topology ingestion bit-identical to fresh detection on
#: the grown graph.  Capacity bounds: ``n <= 2^32``, ``m <= 2^32``,
#: world index ``< 2^31`` (so ``w * stride`` fits in 64 bits).
COUNTER_LAYOUTS = ("packed", "stable")

#: First edge counter within a world's lane under the stable layout.
STABLE_EDGE_BASE = _U64(2**32)

#: Counters reserved per world under the stable layout.
STABLE_STRIDE = _U64(2**33)

#: Largest world index addressable under the stable layout.
_STABLE_MAX_WORLD = 2**31


@dataclass(frozen=True)
class WorldBlock:
    """Outcomes of one explicitly-indexed block of possible worlds.

    Attributes
    ----------
    outcomes:
        Boolean ``(W, |B|)`` matrix; row ``i`` answers "does each
        candidate default in world ``world_indices[i]``".
    node_draws, edge_draws:
        Per-world counts of distinct node / edge draws (the work unit
        shared with the other reverse engines).
    touched_nodes, touched_edges, expanded_nodes:
        Present when requested: boolean ``(W, n)`` / ``(W, m)`` masks of
        the entities each world actually drew.  An entity outside a
        world's mask cannot influence that world's outcome — the
        invalidation test the streaming monitor relies on.
        ``expanded_nodes`` (``collect="compact"``) marks the touched
        nodes that did not self-default; edge ``e`` was drawn iff its
        head is expanded, so the compact mode carries the full edge-mask
        information in ``n`` bits instead of ``m``.
    """

    outcomes: np.ndarray
    node_draws: np.ndarray
    edge_draws: np.ndarray
    touched_nodes: np.ndarray | None = None
    touched_edges: np.ndarray | None = None
    expanded_nodes: np.ndarray | None = None


def _coerce_collect(collect_touched: bool | str | None) -> str | None:
    """Normalise the ``collect_touched`` argument to a mode name."""
    if collect_touched is None or collect_touched is False:
        return None
    if collect_touched is True or collect_touched == "dense":
        return "dense"
    if collect_touched == "compact":
        return "compact"
    raise SamplingError(
        "collect_touched must be False, True/'dense' or 'compact', "
        f"got {collect_touched!r}"
    )


class IndexedReverseSampler:
    """Reverse sampling with counter-based per-(world, entity) randomness.

    Drop-in engine for the SR/BSR/BSRBK detectors (``engine="indexed"``)
    with one extra power: :meth:`outcomes_for_worlds` evaluates an
    arbitrary set of world indices — including re-evaluating old ones —
    bit-identically to a sequential :meth:`run`.  Sequential consumption
    through :meth:`run` / :meth:`iter_samples` uses worlds ``0, 1, 2, …``
    so repeated calls never reuse a world.

    Parameters
    ----------
    graph, candidates, seed:
        As for :class:`~repro.sampling.reverse.ReverseSampler`; the seed
        is folded into a 64-bit stream key (:func:`derive_stream_key`).
    world_batch:
        Worlds explored per flat batch (memory/speed trade-off only —
        outcomes are independent of it, unlike the batched engine whose
        stream consumption depends on batching).
    counter_layout:
        ``"packed"`` (default) or ``"stable"`` — see
        :data:`COUNTER_LAYOUTS`.  Layouts draw *different* uniforms for
        the same entity, so results are reproducible within a layout
        but not across layouts.
    """

    __slots__ = (
        "_graph",
        "_candidates",
        "_unique_candidates",
        "_key",
        "_hash_key",
        "_in_csr",
        "_n",
        "_layout",
        "_world_batch",
        "_cursor",
        "nodes_touched",
        "edges_touched",
    )

    def __init__(
        self,
        graph: UncertainGraph,
        candidates: Sequence[int] | np.ndarray,
        seed: SeedLike = None,
        *,
        world_batch: int | None = None,
        counter_layout: str = "packed",
    ) -> None:
        self._graph = graph
        self._candidates = _validate_candidates(graph, candidates)
        self._unique_candidates = np.unique(self._candidates)
        self._key = derive_stream_key(seed)
        self._hash_key = _U64(
            splitmix64_mix(np.array([self._key ^ _HASH_SALT], dtype=_U64))[0]
        )
        self._in_csr = graph.in_csr()
        n = graph.num_nodes
        self._n = n
        if counter_layout not in COUNTER_LAYOUTS:
            raise SamplingError(
                f"counter_layout must be one of {COUNTER_LAYOUTS}, "
                f"got {counter_layout!r}"
            )
        if counter_layout == "stable" and (
            n > int(STABLE_EDGE_BASE) or graph.num_edges > int(STABLE_EDGE_BASE)
        ):
            raise SamplingError(
                "stable counter layout supports at most 2^32 nodes and edges"
            )
        self._layout = counter_layout
        if world_batch is None:
            world_batch = max(1, min(32, 2_000_000 // max(n, 1)))
        if world_batch <= 0:
            raise SamplingError(
                f"world_batch must be positive, got {world_batch}"
            )
        self._world_batch = int(world_batch)
        self._cursor = 0
        self.nodes_touched = 0
        self.edges_touched = 0

    @property
    def candidates(self) -> np.ndarray:
        """Candidate internal indices (copy not taken; treat as read-only)."""
        return self._candidates

    @property
    def world_batch(self) -> int:
        """Worlds explored per flat batch."""
        return self._world_batch

    @property
    def stream_key(self) -> np.uint64:
        """The 64-bit PRF key all of this sampler's uniforms hash from."""
        return self._key

    @property
    def counter_layout(self) -> str:
        """The counter layout this sampler hashes under."""
        return self._layout

    @property
    def counter_stride(self) -> np.uint64:
        """Counters per world: node ``v`` of world ``w`` sits at
        ``w * stride + v``, edge ``e`` at
        ``w * stride + edge_counter_offset + e``."""
        if self._layout == "stable":
            return STABLE_STRIDE
        return _U64(self._n + self._graph.num_edges)

    @property
    def edge_counter_offset(self) -> np.uint64:
        """Offset of edge 0's counter within one world's counter lane."""
        if self._layout == "stable":
            return STABLE_EDGE_BASE
        return _U64(self._n)

    def node_uniforms(self, world: int, nodes: np.ndarray) -> np.ndarray:
        """The fixed self-default uniforms of *nodes* in one world."""
        base = _U64(int(world)) * self.counter_stride
        return hashed_uniforms(
            self._key, base + np.asarray(nodes).astype(_U64)
        )

    def edge_uniforms(self, world: int, edges: np.ndarray) -> np.ndarray:
        """The fixed survival uniforms of edge ids *edges* in one world."""
        base = _U64(int(world)) * self.counter_stride + self.edge_counter_offset
        return hashed_uniforms(
            self._key, base + np.asarray(edges).astype(_U64)
        )

    def world_hashes(
        self, world_indices: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        """The fixed *sample hashes* of the given worlds, in ``[0, 1)``.

        A second counter PRF (salted key) independent of every draw the
        worlds themselves make.  BSRBK materialises worlds in ascending
        sample-hash order; because the hash is a pure function of the
        world index, that order — and therefore the bottom-k stopping
        point — is identical no matter how, or how incrementally, the
        worlds are evaluated.
        """
        return hashed_uniforms(
            self._hash_key, np.asarray(world_indices, dtype=np.int64)
        )

    def _explore(
        self, world_indices: np.ndarray, collect: str | None
    ) -> WorldBlock:
        """Backward closure + forward labelling for the given worlds."""
        n = self._n
        m = self._graph.num_edges
        key = self._key
        csr = self._in_csr
        indptr, indices, probs = csr.indptr, csr.indices, csr.probs
        edge_id_table = csr.edge_ids
        # Self-risks are re-read per block so probability mutations between
        # calls are observed (edge probs are read live through the CSR).
        ps = self._graph.self_risk_array
        # Probabilities lifted to the 53-bit integer lattice the PRF
        # emits mantissas on: ``(z >> 11) * 2^-53 <= p`` iff
        # ``z >> 11 <= floor(p * 2^53)`` (the product is exact — a pure
        # exponent shift of a 53-bit mantissa), so realisations compare
        # in uint64 without ever materialising the float uniforms.
        node_thresholds = np.floor(ps * _TWO_53).astype(_U64)
        edge_thresholds = np.floor(probs * _TWO_53).astype(_U64)
        worlds = world_indices.size
        closure = np.zeros(worlds * n, dtype=bool)
        defaulted = np.zeros(worlds * n, dtype=bool)
        touched_nodes = touched_edges = expanded_nodes = None
        if collect is not None:
            touched_nodes = np.zeros(worlds * n, dtype=bool)
            if collect == "dense":
                touched_edges = np.zeros(worlds * m, dtype=bool)
            else:
                expanded_nodes = np.zeros(worlds * n, dtype=bool)
        node_draw_counts = np.zeros(worlds, dtype=np.int64)
        edge_draw_counts = np.zeros(worlds, dtype=np.float64)
        offsets = np.arange(worlds, dtype=np.int64) * n
        frontier = (offsets[:, None] + self._unique_candidates[None, :]).ravel()
        closure[frontier] = True
        # Counter of flat key ``w_local*n + v`` in world ``world_indices
        # [w_local]`` is ``world_indices[w_local]*stride + v`` =
        # ``flat + (world_base[w_local] - w_local*n)``; precomputing the
        # per-world surplus folds the whole counter computation into one
        # gather + one add per frontier.  ``edge_base`` plays the same
        # role for edge counters (``world_base + n``, indexed by edge id).
        if self._layout == "stable" and int(world_indices.max()) >= _STABLE_MAX_WORLD:
            raise SamplingError(
                "stable counter layout addresses world indices below 2^31"
            )
        world_base = world_indices.astype(_U64) * self.counter_stride
        node_extra = world_base - offsets.astype(_U64)
        edge_base = world_base + self.edge_counter_offset
        seed_parts: list[np.ndarray] = []
        src_parts: list[np.ndarray] = []
        dst_parts: list[np.ndarray] = []
        while frontier.size:
            local_world = frontier // n
            nodes = frontier - local_world * n
            if touched_nodes is not None:
                touched_nodes[frontier] = True
            counters = frontier.astype(_U64)
            counters += node_extra[local_world]
            draws = _hashed_lattice(key, counters)
            self_default = draws <= node_thresholds[nodes]
            node_draw_counts += np.bincount(local_world, minlength=worlds)
            if self_default.any():
                seed_parts.append(frontier[self_default])
            keep = ~self_default
            expand = frontier[keep]
            if not expand.size:
                break
            if expanded_nodes is not None:
                expanded_nodes[expand] = True
            expand_nodes = nodes[keep]
            expand_world = local_world[keep]
            pos, counts = ragged_positions(indptr, expand_nodes)
            if pos.size == 0:
                break
            edge_ids = edge_id_table[pos]
            rep_world = np.repeat(expand_world, counts)
            edge_counters = edge_ids.astype(_U64)
            edge_counters += edge_base[rep_world]
            edge_draws = _hashed_lattice(key, edge_counters)
            if touched_edges is not None:
                touched_edges[rep_world * m + edge_ids] = True
            survived = edge_draws <= edge_thresholds[pos]
            edge_draw_counts += np.bincount(
                expand_world, weights=counts, minlength=worlds
            )
            if not survived.any():
                break
            src_keys = (rep_world * n + indices[pos])[survived]
            dst_keys = np.repeat(expand, counts)[survived]
            src_parts.append(src_keys)
            dst_parts.append(dst_keys)
            fresh = src_keys[~closure[src_keys]]
            if fresh.size:
                fresh = np.unique(fresh)
                closure[fresh] = True
            frontier = fresh
        if seed_parts:
            defaulted[np.concatenate(seed_parts)] = True
            if src_parts:
                propagate_edge_list(
                    defaulted,
                    np.concatenate(src_parts),
                    np.concatenate(dst_parts),
                    True,
                )
        keys = offsets[:, None] + self._candidates[None, :]
        return WorldBlock(
            outcomes=defaulted[keys],
            node_draws=node_draw_counts,
            edge_draws=edge_draw_counts.astype(np.int64),
            touched_nodes=(
                touched_nodes.reshape(worlds, n)
                if touched_nodes is not None
                else None
            ),
            touched_edges=(
                touched_edges.reshape(worlds, m)
                if touched_edges is not None
                else None
            ),
            expanded_nodes=(
                expanded_nodes.reshape(worlds, n)
                if expanded_nodes is not None
                else None
            ),
        )

    def iter_world_blocks(
        self,
        world_indices: Sequence[int] | np.ndarray,
        collect_touched: bool | str = False,
    ) -> Iterator[tuple[np.ndarray, WorldBlock]]:
        """Yield ``(positions, WorldBlock)`` per internal batch.

        ``positions`` indexes into *world_indices* for each yielded
        block, so consumers can stream arbitrarily many worlds without
        the dense concatenated masks ever existing at once — the surface
        the compressed world state is built through.  Does not advance
        the sequential cursor or the work counters.
        """
        collect = _coerce_collect(collect_touched)
        world_indices = np.asarray(world_indices, dtype=np.int64)
        if world_indices.ndim != 1 or world_indices.size == 0:
            raise SamplingError("world_indices must be a non-empty 1-d array")
        if world_indices.min() < 0:
            raise SamplingError("world indices must be non-negative")
        for start in range(0, world_indices.size, self._world_batch):
            stop = min(start + self._world_batch, world_indices.size)
            yield (
                np.arange(start, stop, dtype=np.int64),
                self._explore(world_indices[start:stop], collect),
            )

    def outcomes_for_worlds(
        self,
        world_indices: Sequence[int] | np.ndarray,
        collect_touched: bool | str = False,
    ) -> WorldBlock:
        """Evaluate exactly the given world indices (batched internally).

        Does not advance the sequential cursor or the work counters —
        this is the random-access surface the streaming monitor repairs
        invalidated worlds through; callers own the accounting.
        """
        blocks = [
            block
            for _, block in self.iter_world_blocks(
                world_indices, collect_touched
            )
        ]
        if len(blocks) == 1:
            return blocks[0]

        def _cat(field: str) -> np.ndarray | None:
            parts = [getattr(b, field) for b in blocks]
            if parts[0] is None:
                return None
            return np.concatenate(parts)

        return WorldBlock(
            outcomes=np.concatenate([b.outcomes for b in blocks]),
            node_draws=np.concatenate([b.node_draws for b in blocks]),
            edge_draws=np.concatenate([b.edge_draws for b in blocks]),
            touched_nodes=_cat("touched_nodes"),
            touched_edges=_cat("touched_edges"),
            expanded_nodes=_cat("expanded_nodes"),
        )

    def iter_samples(self, samples: int) -> Iterator[np.ndarray]:
        """Yield per-world candidate default vectors for the next worlds.

        Consumes world indices sequentially from the cursor; work
        counters are attributed per consumed world, as in the other
        engines.
        """
        if samples <= 0:
            raise SamplingError(f"samples must be positive, got {samples}")
        start = self._cursor
        self._cursor += int(samples)
        for lo in range(start, start + int(samples), self._world_batch):
            hi = min(lo + self._world_batch, start + int(samples))
            block = self._explore(
                np.arange(lo, hi, dtype=np.int64), collect=None
            )
            for index in range(hi - lo):
                self.nodes_touched += int(block.node_draws[index])
                self.edges_touched += int(block.edge_draws[index])
                yield block.outcomes[index]

    def run(self, samples: int) -> ForwardEstimate:
        """Run *samples* sequential worlds; counts align with ``candidates``."""
        if samples <= 0:
            raise SamplingError(f"samples must be positive, got {samples}")
        start = self._cursor
        self._cursor += int(samples)
        counts = np.zeros(self._candidates.size, dtype=np.int64)
        for lo in range(start, start + int(samples), self._world_batch):
            hi = min(lo + self._world_batch, start + int(samples))
            block = self._explore(
                np.arange(lo, hi, dtype=np.int64), collect=None
            )
            counts += block.outcomes.sum(axis=0)
            self.nodes_touched += int(block.node_draws.sum())
            self.edges_touched += int(block.edge_draws.sum())
        return ForwardEstimate(counts=counts, samples=int(samples))

    def estimate_probabilities(self, samples: int) -> np.ndarray:
        """Estimated ``p(v)`` for each candidate, aligned with input order."""
        return self.run(samples).probabilities
