"""Update-event vocabulary for the streaming monitor.

Events are plain frozen dataclasses describing *probability* changes to
a live :class:`~repro.core.graph.UncertainGraph` — the mutations the
paper's monitoring deployment sees month to month.  Topology changes
(new nodes/guarantees) are not events: apply them directly to the graph
and the monitor falls back to a full recomputation on its next refresh.

Semantics
---------
* :class:`SelfRiskUpdate` / :class:`EdgeProbabilityUpdate` patch one
  entity by label; values are validated by the graph setters (a bad
  probability raises before any state changes).
* :class:`BulkSelfRiskUpdate` / :class:`BulkEdgeProbabilityUpdate` carry
  a whole replacement vector (index-aligned / edge-id-aligned).  The
  monitor diffs against current values, so entries that did not actually
  move dirty nothing — a bulk event is a cheap way to say "here is this
  month's state".
* Events within one batch apply in order; the *last* write to an entity
  wins.  Batch application is **transactional** where it matters:
  :func:`validate_events` checks a whole batch against a graph without
  mutating anything, and both :func:`apply_events` and
  :meth:`~repro.streaming.monitor.TopKMonitor.apply` validate the batch
  up front — a mid-batch validation error therefore leaves no event
  applied (it used to leave the earlier ones in).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Union

import numpy as np

from repro.core.errors import GraphError, ProbabilityError
from repro.core.graph import NodeLabel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.graph import UncertainGraph

__all__ = [
    "SelfRiskUpdate",
    "EdgeProbabilityUpdate",
    "BulkSelfRiskUpdate",
    "BulkEdgeProbabilityUpdate",
    "UpdateEvent",
    "apply_event",
    "apply_events",
    "validate_event",
    "validate_events",
]


@dataclass(frozen=True)
class SelfRiskUpdate:
    """Replace one node's self-risk probability ``ps(label)``."""

    label: NodeLabel
    value: float

    def describe(self) -> str:
        """Short human-readable form for logs and CLI tables."""
        return f"ps({self.label!r}) <- {self.value:.4f}"


@dataclass(frozen=True)
class EdgeProbabilityUpdate:
    """Replace one guarantee edge's diffusion probability ``p(dst|src)``."""

    src: NodeLabel
    dst: NodeLabel
    value: float

    def describe(self) -> str:
        """Short human-readable form for logs and CLI tables."""
        return f"p({self.dst!r}|{self.src!r}) <- {self.value:.4f}"


@dataclass(frozen=True)
class BulkSelfRiskUpdate:
    """Replace every node's self-risk (index-aligned vector)."""

    values: np.ndarray

    def describe(self) -> str:
        """Short human-readable form for logs and CLI tables."""
        return f"bulk self-risks ({np.asarray(self.values).size} nodes)"


@dataclass(frozen=True)
class BulkEdgeProbabilityUpdate:
    """Replace every edge's diffusion probability (edge-id-aligned)."""

    values: np.ndarray

    def describe(self) -> str:
        """Short human-readable form for logs and CLI tables."""
        return f"bulk edge probabilities ({np.asarray(self.values).size} edges)"


UpdateEvent = Union[
    SelfRiskUpdate,
    EdgeProbabilityUpdate,
    BulkSelfRiskUpdate,
    BulkEdgeProbabilityUpdate,
]


def _check_value(value: float, what: str) -> None:
    v = float(value)
    if math.isnan(v) or not 0.0 <= v <= 1.0:
        raise ProbabilityError(f"{what} must be in [0, 1], got {value!r}")


def _check_vector(values: np.ndarray, count: int, what: str) -> None:
    array = np.asarray(values, dtype=np.float64)
    if array.shape != (count,):
        raise GraphError(f"need {count} {what}, got shape {array.shape}")
    if array.size and (
        np.any(np.isnan(array)) or np.any((array < 0.0) | (array > 1.0))
    ):
        raise ProbabilityError(f"{what} must all lie in [0, 1]")


def validate_event(graph: "UncertainGraph", event: UpdateEvent) -> None:
    """Check that *event* would apply cleanly to *graph* — no mutation.

    Raises exactly the error the corresponding graph setter would
    (unknown entity, out-of-range or NaN probability, shape mismatch),
    so callers can validate a whole batch before touching any state.
    Validity of one probability event never depends on earlier events
    in a batch (topology is not event-mutable), which is what makes
    validate-all-then-apply equivalent to a rolled-back transaction.
    """
    if isinstance(event, SelfRiskUpdate):
        graph.index(event.label)
        _check_value(event.value, f"self_risk of {event.label!r}")
    elif isinstance(event, EdgeProbabilityUpdate):
        graph.edge_id(event.src, event.dst)
        _check_value(event.value, f"p({event.dst!r}|{event.src!r})")
    elif isinstance(event, BulkSelfRiskUpdate):
        _check_vector(event.values, graph.num_nodes, "self-risks")
    elif isinstance(event, BulkEdgeProbabilityUpdate):
        _check_vector(event.values, graph.num_edges, "edge probabilities")
    else:
        raise GraphError(f"unknown update event: {event!r}")


def validate_events(
    graph: "UncertainGraph", events: Iterable[UpdateEvent]
) -> list[UpdateEvent]:
    """Validate a whole batch against *graph*; returns it materialised."""
    batch = list(events)
    for event in batch:
        validate_event(graph, event)
    return batch


def apply_event(graph: "UncertainGraph", event: UpdateEvent) -> None:
    """Apply one event directly to *graph* through its setters.

    The executable semantics of the event vocabulary — what a monitor's
    intake does, minus the dirty bookkeeping.  Serving benchmarks and
    equivalence tests use it to maintain shadow graphs that replay a
    tenant's stream outside any monitor.
    """
    if isinstance(event, SelfRiskUpdate):
        graph.set_self_risk(event.label, event.value)
    elif isinstance(event, EdgeProbabilityUpdate):
        graph.set_edge_probability(event.src, event.dst, event.value)
    elif isinstance(event, BulkSelfRiskUpdate):
        graph.set_all_self_risks(event.values)
    elif isinstance(event, BulkEdgeProbabilityUpdate):
        graph.set_all_edge_probabilities(event.values)
    else:
        raise GraphError(f"unknown update event: {event!r}")


def apply_events(
    graph: "UncertainGraph", events: Iterable[UpdateEvent]
) -> int:
    """Apply a batch transactionally: validate everything, then mutate.

    A validation error raises before any state changes, so the graph is
    never left holding half a batch; returns the number applied.
    """
    batch = validate_events(graph, events)
    for event in batch:
        apply_event(graph, event)
    return len(batch)
