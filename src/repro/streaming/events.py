"""Update-event vocabulary for the streaming monitor.

Events are plain frozen dataclasses describing changes to a live
:class:`~repro.core.graph.UncertainGraph` — the mutations the paper's
monitoring deployment sees month to month, plus the *topology growth*
a partial-observation crawl produces step by step.

Semantics
---------
* :class:`SelfRiskUpdate` / :class:`EdgeProbabilityUpdate` patch one
  entity by label; values are validated by the graph setters (a bad
  probability raises before any state changes).
* :class:`BulkSelfRiskUpdate` / :class:`BulkEdgeProbabilityUpdate` carry
  a whole replacement vector (index-aligned / edge-id-aligned).  The
  monitor diffs against current values, so entries that did not actually
  move dirty nothing — a bulk event is a cheap way to say "here is this
  month's state".
* :class:`NodeAdd` / :class:`EdgeAdd` grow the graph: a new node with
  its self-risk, a new guarantee edge with its diffusion probability.
  Growth is append-only (matching :class:`UncertainGraph`, which has no
  removal API), so node indices and edge ids assigned by earlier events
  are never disturbed by later ones.
* Per-entity events carry optional *provenance* (``source`` — e.g. which
  crawl strategy discovered the value — and ``confidence``).  Provenance
  is metadata only: it survives the persistence codec round-trip but
  never changes how an event validates or applies.
* Events within one batch apply in order; the *last* write to an entity
  wins, and a topology event makes its entity visible to every later
  event in the same batch (``NodeAdd`` then ``EdgeAdd`` then a bulk
  vector sized for the grown graph is one valid batch).  Batch
  application is **transactional**: :func:`validate_events` simulates
  the batch against a graph without mutating anything, and both
  :func:`apply_events` and
  :meth:`~repro.streaming.monitor.TopKMonitor.apply` validate the batch
  up front — a mid-batch validation error (duplicate node, dangling
  edge endpoint, bad probability, wrong bulk shape) therefore leaves no
  event applied.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Union

import numpy as np

from repro.core.errors import (
    DuplicateEdgeError,
    GraphError,
    ProbabilityError,
    UnknownNodeError,
)
from repro.core.graph import NodeLabel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.graph import UncertainGraph

__all__ = [
    "SelfRiskUpdate",
    "EdgeProbabilityUpdate",
    "BulkSelfRiskUpdate",
    "BulkEdgeProbabilityUpdate",
    "NodeAdd",
    "EdgeAdd",
    "UpdateEvent",
    "apply_event",
    "apply_events",
    "validate_event",
    "validate_events",
]


@dataclass(frozen=True)
class SelfRiskUpdate:
    """Replace one node's self-risk probability ``ps(label)``."""

    label: NodeLabel
    value: float
    source: str | None = None
    confidence: float | None = None

    def describe(self) -> str:
        """Short human-readable form for logs and CLI tables."""
        return f"ps({self.label!r}) <- {self.value:.4f}"


@dataclass(frozen=True)
class EdgeProbabilityUpdate:
    """Replace one guarantee edge's diffusion probability ``p(dst|src)``."""

    src: NodeLabel
    dst: NodeLabel
    value: float
    source: str | None = None
    confidence: float | None = None

    def describe(self) -> str:
        """Short human-readable form for logs and CLI tables."""
        return f"p({self.dst!r}|{self.src!r}) <- {self.value:.4f}"


@dataclass(frozen=True)
class BulkSelfRiskUpdate:
    """Replace every node's self-risk (index-aligned vector)."""

    values: np.ndarray

    def describe(self) -> str:
        """Short human-readable form for logs and CLI tables."""
        return f"bulk self-risks ({np.asarray(self.values).size} nodes)"


@dataclass(frozen=True)
class BulkEdgeProbabilityUpdate:
    """Replace every edge's diffusion probability (edge-id-aligned)."""

    values: np.ndarray

    def describe(self) -> str:
        """Short human-readable form for logs and CLI tables."""
        return f"bulk edge probabilities ({np.asarray(self.values).size} edges)"


@dataclass(frozen=True)
class NodeAdd:
    """Insert a new node with self-risk ``ps(label)`` (append-only)."""

    label: NodeLabel
    self_risk: float = 0.0
    source: str | None = None
    confidence: float | None = None

    def describe(self) -> str:
        """Short human-readable form for logs and CLI tables."""
        return f"+node {self.label!r} ps <- {self.self_risk:.4f}"


@dataclass(frozen=True)
class EdgeAdd:
    """Insert the guarantee edge ``src -> dst`` with ``p(dst|src)``."""

    src: NodeLabel
    dst: NodeLabel
    probability: float
    source: str | None = None
    confidence: float | None = None

    def describe(self) -> str:
        """Short human-readable form for logs and CLI tables."""
        return f"+edge {self.src!r} -> {self.dst!r} p <- {self.probability:.4f}"


UpdateEvent = Union[
    SelfRiskUpdate,
    EdgeProbabilityUpdate,
    BulkSelfRiskUpdate,
    BulkEdgeProbabilityUpdate,
    NodeAdd,
    EdgeAdd,
]


def _check_value(value: float, what: str) -> None:
    v = float(value)
    if math.isnan(v) or not 0.0 <= v <= 1.0:
        raise ProbabilityError(f"{what} must be in [0, 1], got {value!r}")


def _check_vector(values: np.ndarray, count: int, what: str) -> None:
    array = np.asarray(values, dtype=np.float64)
    if array.shape != (count,):
        raise GraphError(f"need {count} {what}, got shape {array.shape}")
    if array.size and (
        np.any(np.isnan(array)) or np.any((array < 0.0) | (array > 1.0))
    ):
        raise ProbabilityError(f"{what} must all lie in [0, 1]")


def _check_provenance(event: UpdateEvent) -> None:
    source = getattr(event, "source", None)
    if source is not None and not isinstance(source, str):
        raise GraphError(f"event source must be a string, got {source!r}")
    confidence = getattr(event, "confidence", None)
    if confidence is not None:
        _check_value(confidence, "event confidence")


class _BatchState:
    """Simulated topology of a graph while validating a batch in order.

    Tracks the nodes and edges that earlier events in the batch would
    have added, plus the running entity counts, so a later event can be
    checked against the graph *as it would be* at its turn — without
    mutating anything.  This is what keeps validate-all-then-apply
    equivalent to a rolled-back transaction now that topology is
    event-mutable.
    """

    __slots__ = ("_graph", "_added_nodes", "_added_edges", "num_nodes", "num_edges")

    def __init__(self, graph: "UncertainGraph") -> None:
        self._graph = graph
        self._added_nodes: set[NodeLabel] = set()
        self._added_edges: set[tuple[NodeLabel, NodeLabel]] = set()
        self.num_nodes = graph.num_nodes
        self.num_edges = graph.num_edges

    def has_node(self, label: NodeLabel) -> bool:
        return label in self._added_nodes or label in self._graph

    def has_edge(self, src: NodeLabel, dst: NodeLabel) -> bool:
        if (src, dst) in self._added_edges:
            return True
        try:
            return self._graph.has_edge(src, dst)
        except UnknownNodeError:
            return False

    def add_node(self, label: NodeLabel) -> None:
        self._added_nodes.add(label)
        self.num_nodes += 1

    def add_edge(self, src: NodeLabel, dst: NodeLabel) -> None:
        self._added_edges.add((src, dst))
        self.num_edges += 1


def _validate_against(state: _BatchState, event: UpdateEvent) -> None:
    """Validate one event against a (possibly simulated) topology."""
    if isinstance(event, SelfRiskUpdate):
        if not state.has_node(event.label):
            raise UnknownNodeError(event.label)
        _check_value(event.value, f"self_risk of {event.label!r}")
        _check_provenance(event)
    elif isinstance(event, EdgeProbabilityUpdate):
        if not state.has_node(event.src):
            raise UnknownNodeError(event.src)
        if not state.has_node(event.dst):
            raise UnknownNodeError(event.dst)
        if not state.has_edge(event.src, event.dst):
            raise UnknownNodeError((event.src, event.dst))
        _check_value(event.value, f"p({event.dst!r}|{event.src!r})")
        _check_provenance(event)
    elif isinstance(event, BulkSelfRiskUpdate):
        _check_vector(event.values, state.num_nodes, "self-risks")
    elif isinstance(event, BulkEdgeProbabilityUpdate):
        _check_vector(event.values, state.num_edges, "edge probabilities")
    elif isinstance(event, NodeAdd):
        if state.has_node(event.label):
            raise GraphError(f"node {event.label!r} already exists")
        _check_value(event.self_risk, f"self_risk of {event.label!r}")
        _check_provenance(event)
        state.add_node(event.label)
    elif isinstance(event, EdgeAdd):
        if not state.has_node(event.src):
            raise UnknownNodeError(event.src)
        if not state.has_node(event.dst):
            raise UnknownNodeError(event.dst)
        if event.src == event.dst:
            raise GraphError(f"self-loop on {event.src!r} is not allowed")
        if state.has_edge(event.src, event.dst):
            raise DuplicateEdgeError(
                f"edge {event.src!r} -> {event.dst!r} already exists"
            )
        _check_value(event.probability, f"p({event.dst!r}|{event.src!r})")
        _check_provenance(event)
        state.add_edge(event.src, event.dst)
    else:
        raise GraphError(f"unknown update event: {event!r}")


def validate_event(graph: "UncertainGraph", event: UpdateEvent) -> None:
    """Check that *event* would apply cleanly to *graph* — no mutation.

    Raises exactly the error the corresponding graph mutator would
    (unknown entity, duplicate node/edge, out-of-range or NaN
    probability, shape mismatch).  Validates against the graph as it is
    *now*; to validate a batch whose later events depend on earlier
    topology events, use :func:`validate_events`, which simulates the
    batch in order.
    """
    _validate_against(_BatchState(graph), event)


def validate_events(
    graph: "UncertainGraph", events: Iterable[UpdateEvent]
) -> list[UpdateEvent]:
    """Validate a whole batch against *graph*; returns it materialised.

    The batch is simulated in order: a ``NodeAdd``/``EdgeAdd`` makes its
    entity visible to every later event's check (and grows the expected
    bulk-vector lengths), so a batch validates iff serially applying it
    would succeed — without mutating the graph.
    """
    batch = list(events)
    state = _BatchState(graph)
    for event in batch:
        _validate_against(state, event)
    return batch


def apply_event(graph: "UncertainGraph", event: UpdateEvent) -> None:
    """Apply one event directly to *graph* through its mutators.

    The executable semantics of the event vocabulary — what a monitor's
    intake does, minus the dirty bookkeeping.  Serving benchmarks and
    equivalence tests use it to maintain shadow graphs that replay a
    tenant's stream outside any monitor.
    """
    if isinstance(event, SelfRiskUpdate):
        graph.set_self_risk(event.label, event.value)
    elif isinstance(event, EdgeProbabilityUpdate):
        graph.set_edge_probability(event.src, event.dst, event.value)
    elif isinstance(event, BulkSelfRiskUpdate):
        graph.set_all_self_risks(event.values)
    elif isinstance(event, BulkEdgeProbabilityUpdate):
        graph.set_all_edge_probabilities(event.values)
    elif isinstance(event, NodeAdd):
        graph.add_node(event.label, event.self_risk)
    elif isinstance(event, EdgeAdd):
        graph.add_edge(event.src, event.dst, event.probability)
    else:
        raise GraphError(f"unknown update event: {event!r}")


def apply_events(
    graph: "UncertainGraph", events: Iterable[UpdateEvent]
) -> int:
    """Apply a batch transactionally: validate everything, then mutate.

    A validation error raises before any state changes, so the graph is
    never left holding half a batch; returns the number applied.
    """
    batch = validate_events(graph, events)
    for event in batch:
        apply_event(graph, event)
    return len(batch)
