"""Update-event vocabulary for the streaming monitor.

Events are plain frozen dataclasses describing *probability* changes to
a live :class:`~repro.core.graph.UncertainGraph` — the mutations the
paper's monitoring deployment sees month to month.  Topology changes
(new nodes/guarantees) are not events: apply them directly to the graph
and the monitor falls back to a full recomputation on its next refresh.

Semantics
---------
* :class:`SelfRiskUpdate` / :class:`EdgeProbabilityUpdate` patch one
  entity by label; values are validated by the graph setters (a bad
  probability raises before any state changes).
* :class:`BulkSelfRiskUpdate` / :class:`BulkEdgeProbabilityUpdate` carry
  a whole replacement vector (index-aligned / edge-id-aligned).  The
  monitor diffs against current values, so entries that did not actually
  move dirty nothing — a bulk event is a cheap way to say "here is this
  month's state".
* Events within one batch apply in order; the *last* write to an entity
  wins.  A batch is not transactional: a mid-batch validation error
  leaves earlier events applied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Union

import numpy as np

from repro.core.errors import GraphError
from repro.core.graph import NodeLabel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.graph import UncertainGraph

__all__ = [
    "SelfRiskUpdate",
    "EdgeProbabilityUpdate",
    "BulkSelfRiskUpdate",
    "BulkEdgeProbabilityUpdate",
    "UpdateEvent",
    "apply_event",
]


@dataclass(frozen=True)
class SelfRiskUpdate:
    """Replace one node's self-risk probability ``ps(label)``."""

    label: NodeLabel
    value: float

    def describe(self) -> str:
        """Short human-readable form for logs and CLI tables."""
        return f"ps({self.label!r}) <- {self.value:.4f}"


@dataclass(frozen=True)
class EdgeProbabilityUpdate:
    """Replace one guarantee edge's diffusion probability ``p(dst|src)``."""

    src: NodeLabel
    dst: NodeLabel
    value: float

    def describe(self) -> str:
        """Short human-readable form for logs and CLI tables."""
        return f"p({self.dst!r}|{self.src!r}) <- {self.value:.4f}"


@dataclass(frozen=True)
class BulkSelfRiskUpdate:
    """Replace every node's self-risk (index-aligned vector)."""

    values: np.ndarray

    def describe(self) -> str:
        """Short human-readable form for logs and CLI tables."""
        return f"bulk self-risks ({np.asarray(self.values).size} nodes)"


@dataclass(frozen=True)
class BulkEdgeProbabilityUpdate:
    """Replace every edge's diffusion probability (edge-id-aligned)."""

    values: np.ndarray

    def describe(self) -> str:
        """Short human-readable form for logs and CLI tables."""
        return f"bulk edge probabilities ({np.asarray(self.values).size} edges)"


UpdateEvent = Union[
    SelfRiskUpdate,
    EdgeProbabilityUpdate,
    BulkSelfRiskUpdate,
    BulkEdgeProbabilityUpdate,
]


def apply_event(graph: "UncertainGraph", event: UpdateEvent) -> None:
    """Apply one event directly to *graph* through its setters.

    The executable semantics of the event vocabulary — what a monitor's
    intake does, minus the dirty bookkeeping.  Serving benchmarks and
    equivalence tests use it to maintain shadow graphs that replay a
    tenant's stream outside any monitor.
    """
    if isinstance(event, SelfRiskUpdate):
        graph.set_self_risk(event.label, event.value)
    elif isinstance(event, EdgeProbabilityUpdate):
        graph.set_edge_probability(event.src, event.dst, event.value)
    elif isinstance(event, BulkSelfRiskUpdate):
        graph.set_all_self_risks(event.values)
    elif isinstance(event, BulkEdgeProbabilityUpdate):
        graph.set_all_edge_probabilities(event.values)
    else:
        raise GraphError(f"unknown update event: {event!r}")
