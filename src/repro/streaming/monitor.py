"""TopKMonitor — incremental top-k detection over a live uncertain graph.

One monitor owns one continuous query: "the top-``k`` of this graph,
kept current as probabilities drift".  Its contract is *exact
equivalence*: after any sequence of updates, :meth:`TopKMonitor.top_k`
returns the same answer — nodes, scores, sample count, candidate set,
verified count, work counters — as constructing a fresh detector
(:class:`~repro.algorithms.bsr.BoundedSampleReverseDetector`, or
:class:`~repro.algorithms.bsrbk.BottomKDetector` when
``algorithm="bsrbk"``) with the same parameters and seed and calling
``detect`` on the patched graph.  All reuse below is therefore
*provable* reuse, never approximation.

The pipeline has three stages, each invalidated independently:

1. **Bounds** (Algorithms 2/3) — maintained by
   :class:`~repro.bounds.incremental.IncrementalBoundPair`: only nodes
   within ``z`` out-hops of a changed entity are re-evaluated, with
   arithmetic bit-identical to a fresh :func:`bound_pair`.
2. **Candidate reduction** (Algorithm 4) — every rule of the reduction
   is inert for bound values strictly below ``Tl`` (the k-th largest
   lower bound), so the cached reduction is reused verbatim unless some
   refreshed bound value crosses ``Tl``; crossing triggers one cheap
   O(n) re-run.
3. **Sampling** — depends on the engine:

   * ``engine="indexed"`` (default): per-world outcomes are pure
     functions of ``(seed, world, graph)``
     (:class:`~repro.sampling.indexed.IndexedReverseSampler`), so the
     monitor stores the per-world outcome matrix plus per-world
     touched-entity state (:mod:`repro.sampling.worldstate` —
     bit-packed by default, the dense PR-3 layout via
     ``world_state="dense"``).  A patched entity invalidates exactly
     the worlds where its fixed uniform crosses the old→new
     probability (expected fraction ``|Δp|``) *and* the entity was
     actually drawn; only those worlds are re-explored and spliced
     back in.  When Algorithm 4's candidate set or Theorem 5's budget
     move, added candidates are *columned in* (their closures explored
     against the cached worlds and OR-ed into the touched state, with
     draw counters advanced by the exact popcount deltas) and the world
     prefix grown or truncated, instead of resampling everything.
   * ``engine="batched"`` / ``"reference"``: the sequential random
     stream couples all worlds, so sampling is reused only when no
     changed entity lies in the candidates' ancestor closure (outside
     it, a fresh run provably replays bit-identically) and is otherwise
     re-run whole.

   With ``algorithm="bsrbk"`` the sampling stage runs BSRBK's bottom-k
   early stop instead of the full-budget estimate: worlds carry fixed
   PRF sample hashes, are materialised in ascending hash order, and the
   stopping rule is re-run as a pure scan over the cached prefix
   (:func:`~repro.sketch.bottom_k.bottom_k_scan`) after every repair —
   extending the evaluated prefix on demand when a repair pushes the
   stopping point later.  Requires the indexed engine (the stream-based
   engines cannot re-materialise an early-stopped run incrementally).

When the dirty region exceeds ``full_rebuild_fraction`` of the graph —
e.g. a bulk monthly re-scoring that moves everything — the monitor falls
back to a full recomputation, which is the same code path as fresh
detection and therefore trivially exact (the oracle tests cover both
routes).

**Topology growth.**  ``NodeAdd`` / ``EdgeAdd`` events (or the
:meth:`TopKMonitor.add_node` / :meth:`TopKMonitor.add_edge` intake)
grow the graph append-only.  Under the default ``counter_layout=
"packed"`` the counter PRF's stride is ``n + m``, so growth re-keys
every ``(world, entity)`` uniform and the monitor falls back to a full
recomputation — exact, but O(everything).  With ``counter_layout=
"stable"`` (requires ``engine="indexed"``) each world owns a fixed
2^33-counter lane (nodes at ``w·2^33 + v``, edges at ``w·2^33 + 2^32 +
e``), so growth never moves an existing counter and the monitor ingests
topology *incrementally*:

* cached world masks are extended by zero bits for the new entities
  (a cached closure can only reach a new entity through a new edge);
* the bound iterates extend with the new nodes and refresh with the
  attachment boundary (new nodes + new edges' heads) as the dirty seed;
* a cached world must be re-explored **iff** some new edge's head was
  *expanded* there — reverse exploration draws a node's in-edges only
  when the node is expanded, so a world whose expanded set misses every
  new head replays its exploration verbatim on the grown graph;
* everything else (candidate columning, world-prefix resizing, BSRBK's
  hash-order rescan) reuses the probability-path machinery.

The result is bit-identical to fresh detection on the grown graph with
the same stable layout — the crawl-while-monitoring oracle tests pin
this after every crawl step.  Direct mutations of the live graph that
bypass the monitor's intake are still caught by shape and handled by
the full fallback.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.algorithms.base import DetectionResult
from repro.algorithms.bsr import assemble_answer
from repro.bounds.candidates import CandidateReduction, reduce_candidates
from repro.bounds.incremental import BoundDelta, IncrementalBoundPair
from repro.bounds.iterative import (
    bound_pair,
    bounds_only_topk,
    certified_topk_mask,
)
from repro.core.errors import GraphError, SamplingError
from repro.core.graph import NodeLabel, UncertainGraph
from repro.core.propagation import ragged_positions
from repro.core.topk import validate_k
from repro.sampling.indexed import COUNTER_LAYOUTS, IndexedReverseSampler
from repro.sampling.reverse import reverse_engine
from repro.sampling.rng import SeedLike, hashed_uniform_tile, hashed_uniforms
from repro.sampling.sample_size import reduced_sample_size, validate_epsilon_delta
from repro.sampling.worldstate import (
    DenseWorldState,
    PackedWorldState,
    WorldView,
)
from repro.sketch.bottom_k import bottom_k_scan
from repro.streaming.events import (
    BulkEdgeProbabilityUpdate,
    BulkSelfRiskUpdate,
    EdgeAdd,
    EdgeProbabilityUpdate,
    NodeAdd,
    SelfRiskUpdate,
    UpdateEvent,
    validate_events,
)

__all__ = ["RefreshReport", "TopKMonitor"]

_U64 = np.uint64
#: Cells hashed per chunk when crossing-testing without touched state.
_TILE_CHUNK = 1 << 22


def ancestor_closure(graph: UncertainGraph, sources: np.ndarray) -> np.ndarray:
    """Boolean mask of all nodes backward-reachable from *sources*.

    Probability-agnostic (every in-edge counts): this is the superset of
    nodes any reverse-sampling run over these candidates can ever draw,
    and an edge can be drawn only if its head is in the mask.  Entities
    outside are provably irrelevant to the sampling stage.
    """
    in_csr = graph.in_csr()
    mask = np.zeros(graph.num_nodes, dtype=bool)
    mask[sources] = True
    frontier = np.unique(np.asarray(sources, dtype=np.int64))
    while frontier.size:
        positions, _ = ragged_positions(in_csr.indptr, frontier)
        if not positions.size:
            break
        neighbors = in_csr.indices[positions]
        fresh = np.unique(neighbors[~mask[neighbors]])
        if not fresh.size:
            break
        mask[fresh] = True
        frontier = fresh
    return mask


@dataclass(frozen=True)
class RefreshReport:
    """Telemetry of one :meth:`TopKMonitor.refresh` call.

    Attributes
    ----------
    mode:
        ``"initial"`` (first evaluation), ``"clean"`` (nothing pending),
        ``"incremental"`` (dirty-frontier path) or ``"full"`` (fallback).
    reason:
        Why this mode was taken (threshold exceeded, topology change, …).
    dirty_nodes, dirty_edges:
        Entities whose probability actually changed since last refresh.
    bounds_recomputed:
        Node evaluations spent refreshing the bound iterates.
    reduction_reused:
        Whether the cached Algorithm-4 reduction survived untouched.
    sampling:
        ``"reused"`` (cached estimates provably fresh), ``"repaired"``
        (indexed engine re-ran only invalidated worlds), ``"columned"``
        (candidate/budget change absorbed by columning added candidates
        into the cached worlds and/or resizing the world prefix),
        ``"resampled"`` (whole candidate set re-estimated) or
        ``"skipped"`` (``k' = k``, nothing to sample).
    worlds_repaired:
        Worlds re-evaluated this refresh (equals ``samples`` on a full
        resample, 0 on reuse).
    samples:
        The refresh's Theorem-5 sample budget.
    elapsed_seconds:
        Wall-clock cost of the refresh.
    """

    mode: str
    reason: str
    dirty_nodes: int
    dirty_edges: int
    bounds_recomputed: int
    reduction_reused: bool
    sampling: str
    worlds_repaired: int
    samples: int
    elapsed_seconds: float


class TopKMonitor:
    """Maintain the top-``k`` of a live graph under streaming updates.

    Parameters
    ----------
    graph:
        The live graph.  The monitor *shares* it (no copy): updates go
        through the monitor's setters (or :meth:`apply`), which patch
        the graph and record the dirty entities.
    k:
        Continuous answer size.
    epsilon, delta, lower_order, upper_order, seed:
        Exactly the parameters of
        :class:`~repro.algorithms.bsr.BoundedSampleReverseDetector`;
        the equivalence oracle is a fresh detector built with the same
        values.  Reproducible seeds (ints / SeedSequences) are required
        for the bit-identity guarantee to be observable.
    algorithm:
        ``"bsr"`` (default) maintains the full-budget BSR estimate;
        ``"bsrbk"`` maintains BSRBK's bottom-k early-stopped estimate
        (requires ``engine="indexed"``), with *bk* as the counter
        threshold.  The equivalence oracle is then a fresh
        :class:`~repro.algorithms.bsrbk.BottomKDetector`.
    bk:
        Bottom-k counter threshold when ``algorithm="bsrbk"``.
    engine:
        Reverse-sampling engine: ``"indexed"`` (default — enables
        per-world repair), ``"batched"`` or ``"reference"`` (coarse
        ancestor-closure invalidation, whole-set resampling).
    full_rebuild_fraction:
        Dirty-region threshold (fraction of ``n``) above which refresh
        falls back to full recomputation.
    world_state:
        Touched-entity representation: ``"packed"`` (default — two
        bit-packed ``n``-bit masks per world plus an entity→worlds
        inverted index, ~8–16× smaller) or ``"dense"`` (the PR-3
        boolean ``(samples, n)`` / ``(samples, m)`` layout).  Both are
        exact; the bit-identity tests drive them in lockstep.
    world_state_budget:
        Cap (in bytes) on the touched-entity state.  Above it the
        monitor keeps only outcome rows and invalidates on uniform
        crossings alone — still exact, marginally more re-exploration.
        The packed representation fits ~8× more worlds per byte, which
        is what extends exact repair to ~100k-node graphs.
    counter_layout:
        Counter-PRF layout for per-world uniforms (requires
        ``engine="indexed"`` when not ``"packed"``).  ``"packed"``
        (default) strides by ``n + m`` — minimal counter space, but any
        topology growth re-keys every uniform and forces the full
        fallback.  ``"stable"`` gives each world a fixed 2^33-counter
        lane so append-only growth (``NodeAdd`` / ``EdgeAdd``) never
        moves an existing counter, unlocking incremental topology
        ingestion (see the module docstring).  The two layouts draw
        *different* (equally exact) world realisations; bit-identity
        oracles must build the fresh detector with the same layout.
    """

    def __init__(
        self,
        graph: UncertainGraph,
        k: int,
        *,
        epsilon: float = 0.3,
        delta: float = 0.1,
        lower_order: int = 2,
        upper_order: int = 2,
        seed: SeedLike = 0,
        algorithm: str = "bsr",
        bk: int = 16,
        engine: str = "indexed",
        full_rebuild_fraction: float = 0.25,
        world_state: str = "packed",
        world_state_budget: int = 32_000_000,
        counter_layout: str = "packed",
    ) -> None:
        self._graph = graph
        self._k = validate_k(k, graph.num_nodes)
        self._epsilon, self._delta = validate_epsilon_delta(epsilon, delta)
        self._lower_order = int(lower_order)
        self._upper_order = int(upper_order)
        self._seed = seed
        self._engine_name = str(engine)
        self._engine = reverse_engine(self._engine_name)
        if algorithm not in ("bsr", "bsrbk"):
            raise GraphError(
                f"algorithm must be 'bsr' or 'bsrbk', got {algorithm!r}"
            )
        if algorithm == "bsrbk" and self._engine_name != "indexed":
            raise GraphError(
                "algorithm='bsrbk' requires engine='indexed': the "
                "stream-based engines cannot re-materialise an "
                "early-stopped run incrementally"
            )
        if bk < 2:
            raise SamplingError(f"bk must be >= 2, got {bk}")
        self._algorithm = algorithm
        self._bk = int(bk)
        if not 0.0 < full_rebuild_fraction <= 1.0:
            raise GraphError(
                "full_rebuild_fraction must be in (0, 1], got "
                f"{full_rebuild_fraction}"
            )
        self._full_fraction = float(full_rebuild_fraction)
        if world_state == "packed":
            self._state_cls = PackedWorldState
        elif world_state == "dense":
            self._state_cls = DenseWorldState
        else:
            raise GraphError(
                f"world_state must be 'packed' or 'dense', got {world_state!r}"
            )
        self._world_state_name = world_state
        self._world_state_budget = int(world_state_budget)
        if counter_layout not in COUNTER_LAYOUTS:
            raise GraphError(
                f"counter_layout must be one of {COUNTER_LAYOUTS}, got "
                f"{counter_layout!r}"
            )
        if counter_layout != "packed" and self._engine_name != "indexed":
            raise GraphError(
                "counter_layout='stable' requires engine='indexed': the "
                "stream-based engines derive their own draw schedules"
            )
        self._counter_layout = counter_layout
        # Pending dirt: entity -> probability at the last refresh.
        self._dirty_node_old: dict[int, float] = {}
        self._dirty_edge_old: dict[int, float] = {}
        # Tracked append-only growth since the last refresh: new node
        # indices / edge ids accepted through the monitor's own intake.
        # Growth that bypasses the intake desynchronises these from the
        # live shape and is caught by _topology_consistent.
        self._added_nodes: list[int] = []
        self._added_edges: list[int] = []
        # Monotone count of accepted probability mutations — the cache
        # key for the read-only bounds-only answer (see bounds_topk).
        self._mutations = 0
        self._bounds_only_cache: (
            tuple[tuple[int, tuple[int, int]], DetectionResult] | None
        ) = None
        # Query-engine dispatch over the repaired worlds: one memoising
        # engine per (mutation-state, shape); retired wholesale when the
        # underlying worlds change (see world_view / query).
        self._query_engine = None
        self._query_engine_key: tuple[int, tuple[int, int]] | None = None
        # Cached pipeline state (filled by the first refresh).
        self._shape = (graph.num_nodes, graph.num_edges)
        self._bounds: IncrementalBoundPair | None = None
        self._reduction: CandidateReduction | None = None
        self._samples = 0
        self._probs: np.ndarray | None = None
        self._sampling_candidates: np.ndarray | None = None
        self._nodes_touched = 0
        self._edges_touched = 0
        # Indexed-engine world state.
        self._sampler: IndexedReverseSampler | None = None
        self._counts: np.ndarray | None = None
        self._world_outcomes: np.ndarray | None = None
        self._world_node_draws: np.ndarray | None = None
        self._world_edge_draws: np.ndarray | None = None
        self._world_state: DenseWorldState | PackedWorldState | None = None
        self._world_ids: np.ndarray | None = None
        # BSRBK bookkeeping (hash order over the budgeted worlds).
        self._bk_order: np.ndarray | None = None
        self._bk_hashes: np.ndarray | None = None
        self._stop_after = 0
        self._processed = 0
        self._stopped_early = False
        # Coarse-engine closure state.
        self._closure: np.ndarray | None = None
        self._result: DetectionResult | None = None
        self._last_report: RefreshReport | None = None
        #: Row positions repaired by the most recent refresh (testing /
        #: introspection hook for the repair-set bit-identity suite).
        self.last_repaired_rows: np.ndarray = np.empty(0, dtype=np.int64)
        self.stats: dict[str, int] = {
            "refreshes": 0,
            "full": 0,
            "incremental": 0,
            "clean": 0,
            "topology": 0,
            "worlds_repaired": 0,
            "worlds_resampled": 0,
            "worlds_columned": 0,
        }

    def __setstate__(self, state: dict) -> None:
        # Monitors ride inside worker dumps and on-disk snapshots; blobs
        # written before topology ingestion existed lack the growth
        # bookkeeping, so default it rather than poison restored shards.
        self.__dict__.update(state)
        self.__dict__.setdefault("_added_nodes", [])
        self.__dict__.setdefault("_added_edges", [])
        self.__dict__.setdefault("_counter_layout", "packed")
        self.stats.setdefault("topology", 0)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def graph(self) -> UncertainGraph:
        """The live graph this monitor serves."""
        return self._graph

    @property
    def k(self) -> int:
        """The continuous answer size."""
        return self._k

    @property
    def engine_name(self) -> str:
        """Configured reverse-sampling engine."""
        return self._engine_name

    @property
    def algorithm(self) -> str:
        """The maintained detection algorithm (``"bsr"`` / ``"bsrbk"``)."""
        return self._algorithm

    @property
    def world_state_kind(self) -> str:
        """Configured touched-entity representation."""
        return self._world_state_name

    @property
    def counter_layout(self) -> str:
        """Configured counter-PRF layout (``"packed"`` / ``"stable"``)."""
        return self._counter_layout

    @property
    def world_state_nbytes(self) -> int:
        """Actual bytes the touched-entity state currently holds."""
        return 0 if self._world_state is None else self._world_state.nbytes

    @property
    def last_report(self) -> RefreshReport | None:
        """Telemetry of the most recent refresh, if any."""
        return self._last_report

    @property
    def pending_updates(self) -> int:
        """Entities patched since the last refresh."""
        return len(self._dirty_node_old) + len(self._dirty_edge_old)

    # ------------------------------------------------------------------
    # Update intake
    # ------------------------------------------------------------------
    def set_self_risk(self, label: NodeLabel, value: float) -> None:
        """Patch one node's self-risk and mark it dirty."""
        index = self._graph.index(label)
        old = self._graph.self_risk(label)
        self._graph.set_self_risk(label, value)
        if self._graph.self_risk(label) != old:
            self._dirty_node_old.setdefault(index, old)
            self._mutations += 1

    def set_edge_probability(
        self, src: NodeLabel, dst: NodeLabel, value: float
    ) -> None:
        """Patch one edge's diffusion probability and mark it dirty."""
        edge_id = self._graph.edge_id(src, dst)
        old = self._graph.edge_probability(src, dst)
        self._graph.set_edge_probability(src, dst, value)
        if self._graph.edge_probability(src, dst) != old:
            self._dirty_edge_old.setdefault(edge_id, old)
            self._mutations += 1

    def set_all_self_risks(self, values: Sequence[float] | np.ndarray) -> None:
        """Bulk-patch self-risks; only entries that moved become dirty."""
        old = self._graph.self_risk_array
        self._graph.set_all_self_risks(values)
        new = self._graph.self_risk_array
        for index in np.flatnonzero(new != old):
            self._dirty_node_old.setdefault(int(index), float(old[index]))
            self._mutations += 1

    def set_all_edge_probabilities(
        self, values: Sequence[float] | np.ndarray
    ) -> None:
        """Bulk-patch edge probabilities; only moved entries become dirty."""
        _, _, old = self._graph.edge_array
        self._graph.set_all_edge_probabilities(values)
        _, _, new = self._graph.edge_array
        for edge in np.flatnonzero(new != old):
            self._dirty_edge_old.setdefault(int(edge), float(old[edge]))
            self._mutations += 1

    def add_node(self, label: NodeLabel, self_risk: float = 0.0) -> int:
        """Append a node to the live graph and track it for ingestion.

        Returns the new node's index.  Under ``counter_layout="stable"``
        the next refresh folds the growth in incrementally; otherwise it
        takes the exact full fallback.
        """
        index = self._graph.add_node(label, self_risk)
        self._added_nodes.append(int(index))
        self._mutations += 1
        return int(index)

    def add_edge(
        self, src: NodeLabel, dst: NodeLabel, probability: float
    ) -> int:
        """Append an edge to the live graph and track it for ingestion.

        Returns the new edge's id.  See :meth:`add_node` for how the
        next refresh absorbs the growth.
        """
        edge_id = self._graph.add_edge(src, dst, probability)
        self._added_edges.append(int(edge_id))
        self._mutations += 1
        return int(edge_id)

    def apply(self, events: Iterable[UpdateEvent]) -> int:
        """Apply a batch of update events in order; returns the count.

        Transactional: the whole batch is validated against the graph
        before any mutation, so a bad event (unknown entity, NaN or
        out-of-range probability, shape mismatch) raises with the graph
        and the monitor's dirty bookkeeping untouched.  Within a valid
        batch, events apply in order and the last write per entity wins.
        """
        events = validate_events(self._graph, events)
        count = 0
        for event in events:
            if isinstance(event, SelfRiskUpdate):
                self.set_self_risk(event.label, event.value)
            elif isinstance(event, EdgeProbabilityUpdate):
                self.set_edge_probability(event.src, event.dst, event.value)
            elif isinstance(event, BulkSelfRiskUpdate):
                self.set_all_self_risks(event.values)
            elif isinstance(event, BulkEdgeProbabilityUpdate):
                self.set_all_edge_probabilities(event.values)
            elif isinstance(event, NodeAdd):
                self.add_node(event.label, event.self_risk)
            elif isinstance(event, EdgeAdd):
                self.add_edge(event.src, event.dst, event.probability)
            else:
                raise GraphError(f"unknown update event: {event!r}")
            count += 1
        return count

    # ------------------------------------------------------------------
    # Query surface
    # ------------------------------------------------------------------
    def top_k(self) -> DetectionResult:
        """The current answer, refreshing first if updates are pending.

        Pending updates include direct topology mutations on the live
        graph (detected by shape), not just events routed through the
        monitor's setters — a stale cached answer is never served.
        """
        graph = self._graph
        stale = (
            self._result is None
            or self.pending_updates
            or (graph.num_nodes, graph.num_edges) != self._shape
        )
        if stale:
            self.refresh()
        assert self._result is not None
        return self._result

    def bounds_topk(self) -> DetectionResult:
        """A *degraded*, bounds-only answer — cheap, current, read-only.

        Ranks every node by the Eq-(1) iterates alone
        (:func:`~repro.bounds.iterative.bounds_only_topk`): no candidate
        reduction, no sampling, no possible-world repair.  This is what
        the SLO-enforced front end serves when the caller's latency
        budget rules out a full refresh.

        Unlike :meth:`top_k`, this method **never mutates** the
        monitor's pipeline state: the incremental bound iterates, dirty
        bookkeeping, cached reduction and world state are all left
        exactly as they were, so the next :meth:`refresh` repairs the
        same frontier it would have without this call.  When the cached
        bound pair is warm (no pending updates, topology unchanged) it
        is reused; otherwise a throwaway :func:`bound_pair` is evaluated
        over the current graph — always-warm in the sense that its cost
        is ``O((n + m) · z)``, independent of the pending repair size.

        The answer is flagged ``degraded=True`` and is bounds-consistent
        by construction: every reported node's upper bound reaches
        ``details["threshold_lower"]`` (the k-th largest lower bound).
        Repeated calls between mutations hit a one-slot cache.
        """
        graph = self._graph
        shape = (graph.num_nodes, graph.num_edges)
        key = (self._mutations, shape)
        cached = self._bounds_only_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        started = time.perf_counter()
        warm = (
            self._bounds is not None
            and not self._dirty_node_old
            and not self._dirty_edge_old
            and shape == self._shape
        )
        if warm:
            lower, upper = self._bounds.pair()
        else:
            lower, upper = bound_pair(
                graph, self._lower_order, self._upper_order
            )
        top, threshold = bounds_only_topk(lower, upper, self._k)
        nodes = [graph.label(int(index)) for index in top]
        scores = {
            label: float(lower[index]) for label, index in zip(nodes, top)
        }
        # Certified partial answer: a reported node whose floor beats
        # every possible k-th competitor is an exact winner even while
        # the sampling pipeline is degraded/mid-repair.
        certified = certified_topk_mask(lower, upper, self._k)
        result = DetectionResult(
            method="BOUNDS",
            k=self._k,
            nodes=nodes,
            scores=scores,
            samples_used=0,
            candidate_size=graph.num_nodes,
            k_verified=0,
            elapsed_seconds=time.perf_counter() - started,
            details={
                "lower_order": self._lower_order,
                "upper_order": self._upper_order,
                "threshold_lower": float(threshold),
                "bounds_lower": [float(lower[index]) for index in top],
                "bounds_upper": [float(upper[index]) for index in top],
                "bounds_reused": warm,
                "bounds_only": True,
                "certified": [bool(certified[index]) for index in top],
                "certified_count": int(np.count_nonzero(certified[top])),
            },
            degraded=True,
        )
        self._bounds_only_cache = (key, result)
        return result

    def world_view(self, min_worlds: int = 256) -> WorldView:
        """A read-only :class:`WorldView` over the repaired worlds.

        Refreshes first when updates are pending (the dirty-propagation
        contract: a view is never handed out over stale worlds), then
        returns a view realising exactly the world indices the monitor
        currently keeps repaired, under the sampler's own stream key —
        so ``view.defaulted()[:, candidates]`` is bit-identical to the
        cached outcome matrix, and every registered query family
        integrates over the *same* worlds the top-k answer does.

        When the indexed sampling stage holds no worlds (``k' = 0``, a
        non-indexed engine, or an over-budget configuration) the view
        falls back to worlds ``0 .. min_worlds-1`` under a key derived
        from the monitor's seed — still deterministic, still repairable
        on the next call.

        Views are cached per mutation-state: repeated calls between
        accepted updates return the same object (and therefore share
        every derived per-world product); any accepted probability
        change or topology change retires the view wholesale.
        """
        self._ensure_query_engine(min_worlds)
        return self._query_engine.view

    def query(self, family: str, **params):
        """Run a registered query family over the repaired worlds.

        Dispatches through :mod:`repro.queries`: ``family`` names a
        registered :class:`~repro.queries.base.WorldQuery` (``"topk"``,
        ``"kcore"``, ``"reliability"``, ``"skyline"``, …) and *params*
        are its keyword parameters.  Results are memoised per
        ``(family, params)`` until the next accepted update, and all
        families share one :meth:`world_view` — one set of realised
        worlds, one propagation fixpoint, one component labelling,
        amortised across everything asked of this monitor.

        Returns a :class:`~repro.queries.base.QueryResult`.
        """
        self._ensure_query_engine()
        return self._query_engine.run(family, **params)

    def _ensure_query_engine(self, min_worlds: int = 256) -> None:
        """(Re)build the memoising engine when the worlds moved."""
        graph = self._graph
        stale = (
            self._result is None
            or self.pending_updates
            or (graph.num_nodes, graph.num_edges) != self._shape
        )
        if stale:
            self.refresh()
        key = (self._mutations, self._shape)
        if self._query_engine is not None and self._query_engine_key == key:
            return
        # Imported lazily: repro.queries depends on the sampling layer,
        # and the streaming layer must stay importable without it.
        from repro.queries import QueryEngine

        if (
            self._sampler is not None
            and self._world_ids is not None
            and self._world_ids.size
        ):
            view = WorldView(
                graph,
                self._world_ids,
                stream_key=self._sampler.stream_key,
                counter_layout=self._counter_layout,
            )
        else:
            view = WorldView(
                graph,
                np.arange(max(1, int(min_worlds)), dtype=np.int64),
                seed=self._seed,
                counter_layout=self._counter_layout,
            )
        self._query_engine = QueryEngine(view)
        self._query_engine_key = key

    def refresh(self) -> RefreshReport:
        """Fold all pending updates into the cached answer."""
        started = time.perf_counter()
        graph = self._graph
        shape = (graph.num_nodes, graph.num_edges)
        dirt = self._effective_dirt()
        nodes_idx, nodes_old, edges_idx, edges_old, heads = dirt
        self.last_repaired_rows = np.empty(0, dtype=np.int64)
        if self._result is None:
            report = self._full_refresh(
                started, "initial", "first evaluation", dirt
            )
        elif shape != self._shape:
            report = None
            if self._can_ingest_topology():
                report = self._topology_refresh(started, dirt)
            if report is None:
                report = self._full_refresh(
                    started, "full", "graph topology changed", dirt
                )
        elif nodes_idx.size == 0 and edges_idx.size == 0:
            report = RefreshReport(
                mode="clean",
                reason="no pending probability changes",
                dirty_nodes=0,
                dirty_edges=0,
                bounds_recomputed=0,
                reduction_reused=True,
                sampling="reused",
                worlds_repaired=0,
                samples=self._samples,
                elapsed_seconds=time.perf_counter() - started,
            )
        else:
            limit = max(1, int(self._full_fraction * graph.num_nodes))
            if nodes_idx.size + heads.size > limit:
                report = self._full_refresh(
                    started, "full", "dirty region above threshold", dirt
                )
            else:
                assert self._bounds is not None
                delta = self._bounds.refresh(nodes_idx, heads, limit=limit)
                if delta is None:
                    report = self._full_refresh(
                        started, "full", "bound frontier above threshold", dirt
                    )
                else:
                    report = self._incremental_refresh(started, delta, dirt)
        self._dirty_node_old.clear()
        self._dirty_edge_old.clear()
        self._added_nodes.clear()
        self._added_edges.clear()
        self._shape = shape
        self._last_report = report
        self.stats["refreshes"] += 1
        mode_key = "full" if report.mode == "initial" else report.mode
        self.stats[mode_key] = self.stats.get(mode_key, 0) + 1
        return report

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _effective_dirt(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Pending entities whose probability actually differs now.

        Returns ``(node_idx, node_old, edge_idx, edge_old, head_idx)``;
        entities patched back to their pre-refresh value drop out.

        Entity arrays come back sorted by index, *not* in ingestion
        order: the dirty dicts are keyed by entity (first-old wins, last
        value is whatever the graph holds now), so any two event
        sequences that leave the same graph state — e.g. a coalesced
        last-write-wins batch vs. its serial original — must hand the
        refresh pipeline exactly the same arrays.
        """
        graph = self._graph
        node_idx = np.fromiter(
            self._dirty_node_old.keys(), dtype=np.int64,
            count=len(self._dirty_node_old),
        )
        node_old = np.fromiter(
            self._dirty_node_old.values(), dtype=np.float64,
            count=len(self._dirty_node_old),
        )
        edge_idx = np.fromiter(
            self._dirty_edge_old.keys(), dtype=np.int64,
            count=len(self._dirty_edge_old),
        )
        edge_old = np.fromiter(
            self._dirty_edge_old.values(), dtype=np.float64,
            count=len(self._dirty_edge_old),
        )
        if node_idx.size:
            order = np.argsort(node_idx)
            node_idx, node_old = node_idx[order], node_old[order]
        if edge_idx.size:
            order = np.argsort(edge_idx)
            edge_idx, edge_old = edge_idx[order], edge_old[order]
        # Tracked append-only growth keeps every pre-existing index
        # valid (append-stable numbering), so the dirty entities filter
        # exactly as on a static graph.  Untracked topology change is
        # opaque; the full fallback ignores dirt entirely, so the stale
        # indices are never dereferenced.
        if (graph.num_nodes, graph.num_edges) != self._shape:
            if not self._topology_consistent():
                return node_idx, node_old, edge_idx, edge_old, edge_idx[:0]
        if node_idx.size:
            keep = graph.self_risk_array[node_idx] != node_old
            node_idx, node_old = node_idx[keep], node_old[keep]
        heads = edge_idx[:0]
        if edge_idx.size:
            _, dst, probs = graph.edge_array
            keep = probs[edge_idx] != edge_old
            edge_idx, edge_old = edge_idx[keep], edge_old[keep]
            heads = np.unique(dst[edge_idx])
        return node_idx, node_old, edge_idx, edge_old, heads

    def _topology_consistent(self) -> bool:
        """Whether the live shape is exactly the tracked append set."""
        n, m = self._shape
        return (
            self._graph.num_nodes == n + len(self._added_nodes)
            and self._graph.num_edges == m + len(self._added_edges)
        )

    def _can_ingest_topology(self) -> bool:
        """Whether the pending shape change qualifies for the
        incremental topology path (stable counters, warm pipeline, and
        growth fully explained by the monitor's own intake)."""
        return (
            self._engine_name == "indexed"
            and self._counter_layout == "stable"
            and self._bounds is not None
            and self._reduction is not None
            and self._topology_consistent()
        )

    def _topology_refresh(self, started: float, dirt) -> RefreshReport | None:
        """Fold tracked append-only growth in without a full rebuild.

        Returns ``None`` to fall back to the full path (dirty region or
        bound frontier above threshold).  Stage by stage:

        * **Bounds** extend with NaN placeholders for the new nodes and
          refresh with the attachment boundary — new nodes plus every
          new edge's head — unioned into the probability dirt as the
          seed (:meth:`IncrementalBoundPair.extend_topology`).
        * **Reduction** always re-runs: the bound delta's old-value
          telemetry is NaN for new nodes, so the Tl-crossing shortcut
          has nothing sound to compare against; Algorithm 4 itself is
          O(n) and cheap next to sampling.
        * **Sampling** extends the cached world masks with zero bits
          for the new entities (a cached closure cannot contain them),
          rebuilds the sampler over the grown CSR — same stream key,
          same stable counters — and re-explores exactly the worlds
          whose expanded set contains a new edge's head (reverse
          exploration draws a node's in-edges only once the node is
          expanded, so every other world replays verbatim) plus the
          usual probability-crossing rows.  Candidate/budget drift
          reuses the columning machinery; BSRBK re-runs its stopping
          scan over the repaired prefix.
        """
        graph = self._graph
        nodes_idx, nodes_old, edges_idx, edges_old, heads = dirt
        assert self._bounds is not None and self._reduction is not None
        new_nodes = np.asarray(sorted(self._added_nodes), dtype=np.int64)
        new_edges = np.asarray(sorted(self._added_edges), dtype=np.int64)
        _, dst, _ = graph.edge_array
        new_heads = (
            np.unique(dst[new_edges]) if new_edges.size else new_edges
        )
        limit = max(1, int(self._full_fraction * graph.num_nodes))
        bound_nodes = np.union1d(nodes_idx, new_nodes)
        bound_heads = np.union1d(heads, new_heads)
        if bound_nodes.size + bound_heads.size > limit:
            return None
        delta = self._bounds.extend_topology(
            bound_nodes, bound_heads, limit=limit
        )
        if delta is None:
            return None
        lower, upper = self._bounds.pair()
        reduction = reduce_candidates(graph, lower, upper, self._k)
        worlds_repaired = 0
        if reduction.k_remaining == 0:
            sampling = "skipped"
            self._clear_sampling_state()
        else:
            samples = reduced_sample_size(
                reduction.candidate_size,
                self._k,
                reduction.k_verified,
                self._epsilon,
                self._delta,
            )
            state = self._world_state
            over_budget = (
                state is not None
                and self._state_cls.bytes_needed(
                    self._samples, graph.num_nodes, graph.num_edges
                )
                > self._world_state_budget
            )
            if (
                self._sampler is None
                or self._world_outcomes is None
                or state is None
                or over_budget
            ):
                # Nothing extendable is cached (previous refresh skipped
                # sampling, or touched state is absent / would blow the
                # budget after growth).  Re-estimating afresh is still
                # exact — and bit-identical to the fresh oracle, which
                # takes this same path.
                self._resample(reduction, samples)
                sampling = "resampled"
                worlds_repaired = (
                    self._processed
                    if self._algorithm == "bsrbk"
                    else samples
                )
                self.stats["worlds_resampled"] += worlds_repaired
            else:
                # Extend first: old bits are preserved, new entities'
                # columns start zero, so the pre-growth invalidation
                # queries below read exactly the pre-growth masks.
                if self._state_cls is DenseWorldState:
                    state.extend(graph.num_nodes, graph.num_edges)
                else:
                    state.extend(
                        graph.num_nodes,
                        graph.num_edges,
                        heads=dst,
                        in_degrees=np.diff(graph.in_csr().indptr),
                    )
                # The cached sampler's CSR and candidate frontier
                # predate the growth; stable counters make the rebuild
                # draw-compatible with every cached world.
                self._sampler = self._make_indexed_sampler(
                    self._sampling_candidates
                )
                prob_affected = self._affected_rows(
                    nodes_idx, nodes_old, edges_idx, edges_old
                )
                if new_edges.size:
                    if self._state_cls is DenseWorldState:
                        # The dense state has no expanded mask and its
                        # drawn-edge columns are zero for new edges, so
                        # query the touched bits of the new heads —
                        # touched ⊇ expanded, and re-exploring a world
                        # that merely touched (never expanded) a new
                        # head replays verbatim, so the superset repair
                        # is exact, just marginally wider.
                        hit_rows, _ = state.node_pairs(new_heads)
                    else:
                        hit_rows, _ = state.edge_pairs(
                            new_edges, dst[new_edges]
                        )
                    topo_affected = np.unique(hit_rows)
                else:
                    topo_affected = new_edges
                affected = np.union1d(prob_affected, topo_affected).astype(
                    np.int64
                )
                inputs_unchanged = (
                    samples == self._samples
                    and np.array_equal(
                        reduction.candidates, self._sampling_candidates
                    )
                )
                if inputs_unchanged or self._can_column(reduction, samples):
                    if not inputs_unchanged:
                        appended = self._column_repair(reduction, samples)
                        affected = affected[affected < self._samples]
                        sampling = "columned"
                        worlds_repaired = int(affected.size) + appended
                        self.stats["worlds_columned"] += appended
                    elif affected.size:
                        sampling = "repaired"
                        worlds_repaired = int(affected.size)
                    else:
                        sampling = "reused"
                    if affected.size:
                        self._repair_rows(affected)
                        self.stats["worlds_repaired"] += int(affected.size)
                    if self._algorithm == "bsrbk":
                        stop_changed = (
                            int(reduction.k_remaining) != self._stop_after
                        )
                        self._stop_after = int(reduction.k_remaining)
                        if affected.size or stop_changed:
                            extended = self._bk_rescan()
                            worlds_repaired += extended
                            self.stats["worlds_repaired"] += extended
                            if extended and sampling == "reused":
                                sampling = "repaired"
                    self.last_repaired_rows = affected
                else:
                    self._resample(reduction, samples)
                    sampling = "resampled"
                    worlds_repaired = (
                        self._processed
                        if self._algorithm == "bsrbk"
                        else samples
                    )
                    self.stats["worlds_resampled"] += worlds_repaired
        self._reduction = reduction
        self._assemble(started)
        self.stats["topology"] += 1
        return RefreshReport(
            mode="incremental",
            reason="incremental topology ingestion",
            dirty_nodes=int(nodes_idx.size),
            dirty_edges=int(edges_idx.size),
            bounds_recomputed=delta.nodes_recomputed,
            reduction_reused=False,
            sampling=sampling,
            worlds_repaired=worlds_repaired,
            samples=self._samples,
            elapsed_seconds=time.perf_counter() - started,
        )

    def _full_refresh(
        self, started: float, mode: str, reason: str, dirt
    ) -> RefreshReport:
        """Recompute every stage — the same pipeline as fresh detection."""
        graph = self._graph
        self._bounds = IncrementalBoundPair(
            graph, self._lower_order, self._upper_order
        )
        lower, upper = self._bounds.pair()
        reduction = reduce_candidates(graph, lower, upper, self._k)
        if reduction.k_remaining > 0:
            samples = reduced_sample_size(
                reduction.candidate_size,
                self._k,
                reduction.k_verified,
                self._epsilon,
                self._delta,
            )
            self._resample(reduction, samples)
        else:
            self._clear_sampling_state()
        self._reduction = reduction
        self._assemble(started)
        nodes_idx, _, edges_idx, _, _ = dirt
        worlds = (
            self._processed if self._algorithm == "bsrbk" else self._samples
        )
        self.stats["worlds_resampled"] += worlds
        return RefreshReport(
            mode=mode,
            reason=reason,
            dirty_nodes=int(nodes_idx.size),
            dirty_edges=int(edges_idx.size),
            bounds_recomputed=graph.num_nodes
            * (self._lower_order + self._upper_order),
            reduction_reused=False,
            sampling="resampled" if worlds else "skipped",
            worlds_repaired=worlds,
            samples=self._samples,
            elapsed_seconds=time.perf_counter() - started,
        )

    def _incremental_refresh(
        self, started: float, delta: BoundDelta, dirt
    ) -> RefreshReport:
        """The dirty-frontier path: provable reuse stage by stage."""
        graph = self._graph
        nodes_idx, nodes_old, edges_idx, edges_old, heads = dirt
        assert self._bounds is not None and self._reduction is not None
        # Stage 2: Algorithm 4 is untouched unless a changed bound value
        # reaches Tl — below Tl both thresholds and both membership rules
        # are provably inert.
        crossed = (
            delta.max_changed_value >= self._reduction.threshold_lower
        )
        reduction = self._reduction
        if crossed:
            lower, upper = self._bounds.pair()
            reduction = reduce_candidates(graph, lower, upper, self._k)
        # Stage 3: sampling.
        worlds_repaired = 0
        if reduction.k_remaining == 0:
            sampling = "skipped"
            self._clear_sampling_state()
        else:
            samples = reduced_sample_size(
                reduction.candidate_size,
                self._k,
                reduction.k_verified,
                self._epsilon,
                self._delta,
            )
            inputs_unchanged = (
                self._sampling_candidates is not None
                and samples == self._samples
                and np.array_equal(reduction.candidates, self._sampling_candidates)
            )
            if self._engine_name == "indexed" and (
                inputs_unchanged or self._can_column(reduction, samples)
            ):
                # Invalidation runs against the pre-change world rows;
                # rows the columning step appends are explored against
                # the already-patched graph and need no repair.
                affected = self._affected_rows(
                    nodes_idx, nodes_old, edges_idx, edges_old
                )
                if not inputs_unchanged:
                    appended = self._column_repair(reduction, samples)
                    affected = affected[affected < self._samples]
                    sampling = "columned"
                    worlds_repaired = int(affected.size) + appended
                    self.stats["worlds_columned"] += appended
                elif affected.size:
                    sampling = "repaired"
                    worlds_repaired = int(affected.size)
                else:
                    sampling = "reused"
                if affected.size:
                    self._repair_rows(affected)
                    self.stats["worlds_repaired"] += int(affected.size)
                if self._algorithm == "bsrbk":
                    # The stopping rule also depends on k_remaining,
                    # which can move (k_verified drift) while the
                    # candidate set and Theorem-5 budget stay equal —
                    # the scan must always run against the fresh value.
                    stop_changed = (
                        int(reduction.k_remaining) != self._stop_after
                    )
                    self._stop_after = int(reduction.k_remaining)
                    if affected.size or stop_changed:
                        # A later stopping point can pull new worlds
                        # into the evaluated prefix; they are work done
                        # this refresh, so they count as repaired.
                        extended = self._bk_rescan()
                        worlds_repaired += extended
                        self.stats["worlds_repaired"] += extended
                        if extended and sampling == "reused":
                            sampling = "repaired"
                self.last_repaired_rows = affected
            elif not inputs_unchanged:
                self._resample(reduction, samples)
                sampling = "resampled"
                worlds_repaired = (
                    self._processed
                    if self._algorithm == "bsrbk"
                    else samples
                )
                self.stats["worlds_resampled"] += worlds_repaired
            else:
                assert self._closure is not None
                relevant = bool(self._closure[nodes_idx].any()) or bool(
                    self._closure[heads].any()
                )
                if relevant:
                    self._resample(reduction, samples)
                    sampling = "resampled"
                    worlds_repaired = samples
                    self.stats["worlds_resampled"] += samples
                else:
                    sampling = "reused"
        self._reduction = reduction
        self._assemble(started)
        return RefreshReport(
            mode="incremental",
            reason="dirty-frontier refresh",
            dirty_nodes=int(nodes_idx.size),
            dirty_edges=int(edges_idx.size),
            bounds_recomputed=delta.nodes_recomputed,
            reduction_reused=not crossed,
            sampling=sampling,
            worlds_repaired=worlds_repaired,
            samples=self._samples,
            elapsed_seconds=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------
    # Indexed-engine repair machinery
    # ------------------------------------------------------------------
    def _affected_rows(
        self,
        nodes_idx: np.ndarray,
        nodes_old: np.ndarray,
        edges_idx: np.ndarray,
        edges_old: np.ndarray,
    ) -> np.ndarray:
        """Row positions whose cached outcome a dirty entity can change.

        World ``w`` is invalidated by entity ``x`` only if ``x``'s fixed
        uniform in ``w`` crosses the old→new probability (its realisation
        flips) — expected fraction ``|Δp|`` of worlds — and, when touched
        state is kept, only if ``w`` actually drew ``x``.  All candidate
        ``(world, entity)`` pairs are hashed in bulk: one tile per chunk
        without touched state, one ragged gather through the
        entity→worlds index with it.
        """
        assert self._sampler is not None and self._world_ids is not None
        graph = self._graph
        rows = self._world_ids.size
        stride = self._sampler.counter_stride
        key = self._sampler.stream_key
        bases = self._world_ids.astype(_U64) * stride
        state = self._world_state
        affected = np.zeros(rows, dtype=bool)
        # edge_array copies all three m-length columns per access; pull
        # them once for the whole invalidation scan.
        if edges_idx.size:
            _, edge_heads, edge_probs = graph.edge_array
        else:
            edge_heads = edge_probs = None

        def crossing_pairs(entities, lows, highs, offset, is_edge):
            counters = entities.astype(_U64) + offset
            if state is None:
                # No touched state: test every (world, entity) pair,
                # tiled so one numpy call hashes a whole chunk.
                per_chunk = max(1, _TILE_CHUNK // max(entities.size, 1))
                for start in range(0, rows, per_chunk):
                    stop = min(start + per_chunk, rows)
                    tile = hashed_uniform_tile(
                        key, bases[start:stop], counters
                    )
                    hit = (tile > lows[None, :]) & (tile <= highs[None, :])
                    affected[start:stop] |= hit.any(axis=1)
                return
            if is_edge:
                pair_rows, positions = state.edge_pairs(
                    entities, edge_heads[entities]
                )
            else:
                pair_rows, positions = state.node_pairs(entities)
            if pair_rows.size == 0:
                return
            draws = hashed_uniforms(
                key, bases[pair_rows] + counters[positions]
            )
            crossed = (draws > lows[positions]) & (draws <= highs[positions])
            affected[pair_rows[crossed]] = True

        if nodes_idx.size:
            new_risks = self._graph.self_risk_array[nodes_idx]
            lows = np.minimum(nodes_old, new_risks)
            highs = np.maximum(nodes_old, new_risks)
            crossing_pairs(nodes_idx, lows, highs, _U64(0), is_edge=False)
        if edges_idx.size:
            new_probs = edge_probs[edges_idx]
            lows = np.minimum(edges_old, new_probs)
            highs = np.maximum(edges_old, new_probs)
            crossing_pairs(
                edges_idx,
                lows,
                highs,
                self._sampler.edge_counter_offset,
                is_edge=True,
            )
        return np.flatnonzero(affected)

    def _make_indexed_sampler(
        self, candidates: np.ndarray
    ) -> IndexedReverseSampler:
        """The monitor's canonical indexed-sampler construction.

        Every rebuild must thread the same seed *and* counter layout —
        a layout mismatch would re-key the per-world uniforms and
        silently break the repair-set bit-identity guarantee.
        """
        return IndexedReverseSampler(
            self._graph,
            candidates,
            seed=self._seed,
            counter_layout=self._counter_layout,
        )

    def _repair_rows(self, rows: np.ndarray) -> None:
        """Re-explore only the invalidated world rows and splice them in.

        Running totals (candidate counts, work counters) are updated by
        the repaired rows' delta — all integer arithmetic, so the state
        is exactly what a full re-summation would produce, at
        O(repaired) instead of O(samples) cost.
        """
        assert self._sampler is not None and self._world_outcomes is not None
        state = self._world_state
        collect = False if state is None else state.collect_mode
        world_ids = self._world_ids[rows]
        for positions, block in self._sampler.iter_world_blocks(
            world_ids, collect_touched=collect
        ):
            target = rows[positions]
            if self._counts is not None:  # BSRBK rescans instead
                old_rows = self._world_outcomes[target]
                self._counts += block.outcomes.sum(axis=0) - old_rows.sum(axis=0)
            self._nodes_touched += int(
                block.node_draws.sum() - self._world_node_draws[target].sum()
            )
            self._edges_touched += int(
                block.edge_draws.sum() - self._world_edge_draws[target].sum()
            )
            self._world_outcomes[target] = block.outcomes
            self._world_node_draws[target] = block.node_draws
            self._world_edge_draws[target] = block.edge_draws
            if state is not None:
                state.store_block(target, block)
        if self._algorithm == "bsr":
            self._probs = self._counts / float(self._samples)

    def _can_column(
        self, reduction: CandidateReduction, samples: int
    ) -> bool:
        """Whether a candidate/budget change is absorbable incrementally.

        Requires the indexed BSR pipeline with touched state (the
        popcount bookkeeping is what keeps the union draw counters
        exact), candidates that only *grew* (a removed candidate shrinks
        every world's closure in ways only a re-exploration can
        reproduce), and the resized state still within budget.  BSRBK's
        budget defines the hash order itself, so any change there
        resamples.
        """
        if (
            self._algorithm != "bsr"
            or self._world_state is None
            or self._sampling_candidates is None
            or self._sampler is None
        ):
            return False
        if not np.isin(
            self._sampling_candidates, reduction.candidates
        ).all():
            return False
        graph = self._graph
        return (
            self._state_cls.bytes_needed(
                samples, graph.num_nodes, graph.num_edges
            )
            <= self._world_state_budget
        )

    def _column_repair(
        self, reduction: CandidateReduction, samples: int
    ) -> int:
        """Absorb a candidate/budget change without resampling.

        Three exact moves, in order: truncate or grow the world prefix
        (indexed worlds are order-independent, so the first ``samples``
        worlds of a fresh run are exactly worlds ``0..samples-1``);
        explore only the *added* candidates over the kept worlds and OR
        their closures into the touched state (closures of a candidate
        union are unions of closures, so the merged masks — and the
        popcount/in-degree draw-count deltas — equal a from-scratch
        union run's); explore appended worlds with the full new set.
        Returns the number of appended worlds.
        """
        assert self._world_state is not None
        state = self._world_state
        graph = self._graph
        old_candidates = self._sampling_candidates
        new_candidates = reduction.candidates
        old_samples = self._samples
        keep = min(old_samples, samples)
        # 1. Truncate surplus worlds (recompute totals from survivors).
        if samples < old_samples:
            self._world_outcomes = self._world_outcomes[:samples].copy()
            self._world_node_draws = self._world_node_draws[:samples].copy()
            self._world_edge_draws = self._world_edge_draws[:samples].copy()
            state.resize(samples)
        # 2. Column added candidates into the kept worlds.
        added = np.setdiff1d(new_candidates, old_candidates)
        outcomes = np.zeros(
            (samples, new_candidates.size), dtype=bool
        )
        old_positions = np.searchsorted(new_candidates, old_candidates)
        outcomes[:keep, old_positions] = self._world_outcomes[:keep]
        if samples > old_samples:
            grow_nodes = np.zeros(samples, dtype=np.int64)
            grow_edges = np.zeros(samples, dtype=np.int64)
            grow_nodes[:keep] = self._world_node_draws
            grow_edges[:keep] = self._world_edge_draws
            self._world_node_draws = grow_nodes
            self._world_edge_draws = grow_edges
            state.resize(samples)
        self._world_outcomes = outcomes
        if added.size:
            added_positions = np.searchsorted(new_candidates, added)
            added_sampler = self._make_indexed_sampler(added)
            for positions, block in added_sampler.iter_world_blocks(
                np.arange(keep, dtype=np.int64),
                collect_touched=state.collect_mode,
            ):
                outcomes[np.ix_(positions, added_positions)] = block.outcomes
                node_delta, edge_delta = state.merge_block(positions, block)
                self._world_node_draws[positions] += node_delta
                self._world_edge_draws[positions] += edge_delta
        # 3. The monitor's sampler now serves the new candidate set.
        sampler = self._make_indexed_sampler(new_candidates)
        self._sampler = sampler
        appended = samples - keep
        if appended > 0:
            for positions, block in sampler.iter_world_blocks(
                np.arange(keep, samples, dtype=np.int64),
                collect_touched=state.collect_mode,
            ):
                target = positions + keep
                outcomes[target] = block.outcomes
                self._world_node_draws[target] = block.node_draws
                self._world_edge_draws[target] = block.edge_draws
                state.store_block(target, block)
        self._counts = outcomes.sum(axis=0)
        self._probs = self._counts / float(samples)
        self._nodes_touched = int(self._world_node_draws.sum())
        self._edges_touched = int(self._world_edge_draws.sum())
        self._samples = int(samples)
        self._world_ids = np.arange(samples, dtype=np.int64)
        self._sampling_candidates = new_candidates.copy()
        return appended

    # ------------------------------------------------------------------
    # (Re)sampling
    # ------------------------------------------------------------------
    def _tracked_state(
        self, samples: int, rows: int | None = None
    ) -> DenseWorldState | PackedWorldState | None:
        """Fresh touched-entity state, or ``None`` when over budget.

        The budget is judged against *samples* worlds (the most the run
        can ever hold); *rows* lets BSRBK start with an empty state that
        grows with the evaluated prefix.
        """
        graph = self._graph
        n, m = graph.num_nodes, graph.num_edges
        if self._state_cls.bytes_needed(samples, n, m) > self._world_state_budget:
            return None
        rows = samples if rows is None else rows
        if self._state_cls is DenseWorldState:
            return DenseWorldState(rows, n, m)
        in_csr = graph.in_csr()
        return PackedWorldState(
            rows,
            n,
            m,
            heads=graph.edge_array[1],
            in_degrees=np.diff(in_csr.indptr),
        )

    def _resample(self, reduction: CandidateReduction, samples: int) -> None:
        """Estimate the whole candidate set afresh (as fresh detection)."""
        graph = self._graph
        if self._engine_name == "indexed":
            sampler = self._make_indexed_sampler(reduction.candidates)
            self._sampler = sampler
            if self._algorithm == "bsrbk":
                self._bk_resample(reduction, samples)
            else:
                state = self._tracked_state(samples)
                collect = False if state is None else state.collect_mode
                outcomes = np.zeros(
                    (samples, reduction.candidates.size), dtype=bool
                )
                node_draws = np.zeros(samples, dtype=np.int64)
                edge_draws = np.zeros(samples, dtype=np.int64)
                for rows, block in sampler.iter_world_blocks(
                    np.arange(samples, dtype=np.int64),
                    collect_touched=collect,
                ):
                    outcomes[rows] = block.outcomes
                    node_draws[rows] = block.node_draws
                    edge_draws[rows] = block.edge_draws
                    if state is not None:
                        state.store_block(rows, block)
                self._world_outcomes = outcomes
                self._world_node_draws = node_draws
                self._world_edge_draws = edge_draws
                self._world_state = state
                self._world_ids = np.arange(samples, dtype=np.int64)
                self._counts = outcomes.sum(axis=0)
                self._probs = self._counts / float(samples)
                self._nodes_touched = int(node_draws.sum())
                self._edges_touched = int(edge_draws.sum())
                self._bk_order = self._bk_hashes = None
                self._processed = 0
            self._closure = None
        else:
            sampler = self._engine(graph, reduction.candidates, seed=self._seed)
            estimate = sampler.run(samples)
            self._probs = estimate.probabilities
            self._nodes_touched = sampler.nodes_touched
            self._edges_touched = sampler.edges_touched
            self._sampler = None
            self._counts = None
            self._world_outcomes = None
            self._world_node_draws = self._world_edge_draws = None
            self._world_state = None
            self._world_ids = None
            self._closure = ancestor_closure(graph, reduction.candidates)
        self._samples = int(samples)
        self._sampling_candidates = reduction.candidates.copy()
        self._stop_after = int(reduction.k_remaining)

    # ------------------------------------------------------------------
    # BSRBK (bottom-k early stop over hash-ordered indexed worlds)
    # ------------------------------------------------------------------
    def _bk_resample(self, reduction: CandidateReduction, samples: int) -> None:
        """Fresh BSRBK evaluation: hash-order worlds, evaluate until the
        stopping rule fires, keep everything evaluated for later repair."""
        sampler = self._sampler
        hashes = sampler.world_hashes(np.arange(samples, dtype=np.int64))
        order = np.argsort(hashes, kind="stable")
        self._bk_order = order
        self._bk_hashes = hashes[order]
        self._world_outcomes = np.zeros(
            (0, reduction.candidates.size), dtype=bool
        )
        self._world_node_draws = np.zeros(0, dtype=np.int64)
        self._world_edge_draws = np.zeros(0, dtype=np.int64)
        self._world_state = self._tracked_state(samples, rows=0)
        self._world_ids = order[:0]
        self._samples = int(samples)
        self._stop_after = int(reduction.k_remaining)
        self._bk_extend_and_scan()

    def _bk_extend_and_scan(self) -> int:
        """Evaluate hash-ordered worlds until the bottom-k rule stops.

        Re-runs the pure stopping scan over the evaluated prefix after
        every extension; because a longer prefix only appends later
        finishes, the stopping point is independent of the chunk
        schedule — the property that makes the monitor's incremental
        result bit-identical to a fresh run's.  Returns how many worlds
        the evaluated prefix grew by (work telemetry).
        """
        assert self._sampler is not None and self._bk_order is not None
        budget = self._samples
        initial = evaluated = self._world_ids.size
        chunk = max(64, self._sampler.world_batch, evaluated)
        scan = None
        state = self._world_state
        collect = False if state is None else state.collect_mode
        while True:
            if evaluated:
                scan = bottom_k_scan(
                    self._world_outcomes,
                    self._bk_hashes[:evaluated],
                    self._bk,
                    self._stop_after,
                    budget,
                )
                if scan.stopped_early or evaluated >= budget:
                    break
            take = min(chunk, budget - evaluated)
            chunk *= 2
            world_ids = self._bk_order[evaluated : evaluated + take]
            grown = evaluated + take
            outcomes = np.zeros(
                (grown, self._world_outcomes.shape[1]), dtype=bool
            )
            outcomes[:evaluated] = self._world_outcomes
            node_draws = np.zeros(grown, dtype=np.int64)
            edge_draws = np.zeros(grown, dtype=np.int64)
            node_draws[:evaluated] = self._world_node_draws
            edge_draws[:evaluated] = self._world_edge_draws
            if state is not None:
                state.resize(grown)
            for positions, block in self._sampler.iter_world_blocks(
                world_ids, collect_touched=collect
            ):
                target = positions + evaluated
                outcomes[target] = block.outcomes
                node_draws[target] = block.node_draws
                edge_draws[target] = block.edge_draws
                if state is not None:
                    state.store_block(target, block)
            self._world_outcomes = outcomes
            self._world_node_draws = node_draws
            self._world_edge_draws = edge_draws
            evaluated = grown
            self._world_ids = self._bk_order[:evaluated]
        self._processed = scan.processed
        self._stopped_early = scan.stopped_early
        self._probs = np.clip(scan.estimates, 0.0, 1.0)
        self._counts = None
        self._nodes_touched = int(
            self._world_node_draws[: scan.processed].sum()
        )
        self._edges_touched = int(
            self._world_edge_draws[: scan.processed].sum()
        )
        return evaluated - initial

    def _bk_rescan(self) -> int:
        """Re-run the stopping scan after repairs (extending on demand);
        returns the number of newly evaluated worlds."""
        return self._bk_extend_and_scan()

    def _clear_sampling_state(self) -> None:
        self._samples = 0
        self._probs = None
        self._sampling_candidates = None
        self._nodes_touched = 0
        self._edges_touched = 0
        self._sampler = None
        self._counts = None
        self._world_outcomes = None
        self._world_node_draws = self._world_edge_draws = None
        self._world_state = None
        self._world_ids = None
        self._bk_order = self._bk_hashes = None
        self._processed = 0
        self._stopped_early = False
        self._closure = None

    def _assemble(self, started: float) -> None:
        """Build the DetectionResult exactly as the fresh detector does."""
        assert self._bounds is not None and self._reduction is not None
        reduction = self._reduction
        nodes, scores = assemble_answer(
            self._graph, reduction, self._bounds.lower, self._probs, self._k
        )
        if self._algorithm == "bsrbk":
            samples_used = self._processed if self._probs is not None else 0
            details = {
                "bk": self._bk,
                "epsilon": self._epsilon,
                "delta": self._delta,
                "lower_order": self._lower_order,
                "upper_order": self._upper_order,
                "stopped_early": self._stopped_early
                if self._probs is not None
                else False,
                **reduction.summary(),
                "nodes_touched": self._nodes_touched,
                "edges_touched": self._edges_touched,
                "streaming_engine": self._engine_name,
            }
            method = "BSRBK"
        else:
            samples_used = self._samples
            details = {
                "epsilon": self._epsilon,
                "delta": self._delta,
                "lower_order": self._lower_order,
                "upper_order": self._upper_order,
                **reduction.summary(),
                "nodes_touched": self._nodes_touched,
                "edges_touched": self._edges_touched,
                "streaming_engine": self._engine_name,
            }
            method = "BSR"
        self._result = DetectionResult(
            method=method,
            k=self._k,
            nodes=nodes,
            scores=scores,
            samples_used=samples_used,
            candidate_size=reduction.candidate_size,
            k_verified=reduction.k_verified,
            elapsed_seconds=time.perf_counter() - started,
            details=details,
        )
