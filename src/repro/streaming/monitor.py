"""TopKMonitor — incremental top-k detection over a live uncertain graph.

One monitor owns one continuous query: "the BSR top-``k`` of this graph,
kept current as probabilities drift".  Its contract is *exact
equivalence*: after any sequence of updates, :meth:`TopKMonitor.top_k`
returns the same answer — nodes, scores, sample count, candidate set,
verified count, work counters — as constructing a fresh
:class:`~repro.algorithms.bsr.BoundedSampleReverseDetector` with the same
parameters and seed and calling ``detect`` on the patched graph.  All
reuse below is therefore *provable* reuse, never approximation.

The pipeline has three stages, each invalidated independently:

1. **Bounds** (Algorithms 2/3) — maintained by
   :class:`~repro.bounds.incremental.IncrementalBoundPair`: only nodes
   within ``z`` out-hops of a changed entity are re-evaluated, with
   arithmetic bit-identical to a fresh :func:`bound_pair`.
2. **Candidate reduction** (Algorithm 4) — every rule of the reduction
   is inert for bound values strictly below ``Tl`` (the k-th largest
   lower bound), so the cached reduction is reused verbatim unless some
   refreshed bound value crosses ``Tl``; crossing triggers one cheap
   O(n) re-run.
3. **Sampling** — depends on the engine:

   * ``engine="indexed"`` (default): per-world outcomes are pure
     functions of ``(seed, world, graph)``
     (:class:`~repro.sampling.indexed.IndexedReverseSampler`), so the
     monitor stores the per-world outcome matrix plus per-world
     touched-entity masks.  A patched entity invalidates exactly the
     worlds where its fixed uniform crosses the old→new probability
     (expected fraction ``|Δp|``) *and* the entity was actually drawn;
     only those worlds are re-explored and spliced back in.
   * ``engine="batched"`` / ``"reference"``: the sequential random
     stream couples all worlds, so sampling is reused only when no
     changed entity lies in the candidates' ancestor closure (outside
     it, a fresh run provably replays bit-identically) and is otherwise
     re-run whole.

When the dirty region exceeds ``full_rebuild_fraction`` of the graph —
e.g. a bulk monthly re-scoring that moves everything — the monitor falls
back to a full recomputation, which is the same code path as fresh
detection and therefore trivially exact (the oracle tests cover both
routes).  Topology mutations (``add_node`` / ``add_edge`` on the live
graph) are detected by shape and likewise trigger the full fallback.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.algorithms.base import DetectionResult
from repro.algorithms.bsr import assemble_answer
from repro.bounds.candidates import CandidateReduction, reduce_candidates
from repro.bounds.incremental import BoundDelta, IncrementalBoundPair
from repro.core.errors import GraphError
from repro.core.graph import NodeLabel, UncertainGraph
from repro.core.propagation import ragged_positions
from repro.core.topk import validate_k
from repro.sampling.indexed import IndexedReverseSampler, hashed_uniforms
from repro.sampling.reverse import reverse_engine
from repro.sampling.rng import SeedLike
from repro.sampling.sample_size import reduced_sample_size, validate_epsilon_delta
from repro.streaming.events import (
    BulkEdgeProbabilityUpdate,
    BulkSelfRiskUpdate,
    EdgeProbabilityUpdate,
    SelfRiskUpdate,
    UpdateEvent,
)

__all__ = ["RefreshReport", "TopKMonitor"]

_U64 = np.uint64


def ancestor_closure(graph: UncertainGraph, sources: np.ndarray) -> np.ndarray:
    """Boolean mask of all nodes backward-reachable from *sources*.

    Probability-agnostic (every in-edge counts): this is the superset of
    nodes any reverse-sampling run over these candidates can ever draw,
    and an edge can be drawn only if its head is in the mask.  Entities
    outside are provably irrelevant to the sampling stage.
    """
    in_csr = graph.in_csr()
    mask = np.zeros(graph.num_nodes, dtype=bool)
    mask[sources] = True
    frontier = np.unique(np.asarray(sources, dtype=np.int64))
    while frontier.size:
        positions, _ = ragged_positions(in_csr.indptr, frontier)
        if not positions.size:
            break
        neighbors = in_csr.indices[positions]
        fresh = np.unique(neighbors[~mask[neighbors]])
        if not fresh.size:
            break
        mask[fresh] = True
        frontier = fresh
    return mask


@dataclass(frozen=True)
class RefreshReport:
    """Telemetry of one :meth:`TopKMonitor.refresh` call.

    Attributes
    ----------
    mode:
        ``"initial"`` (first evaluation), ``"clean"`` (nothing pending),
        ``"incremental"`` (dirty-frontier path) or ``"full"`` (fallback).
    reason:
        Why this mode was taken (threshold exceeded, topology change, …).
    dirty_nodes, dirty_edges:
        Entities whose probability actually changed since last refresh.
    bounds_recomputed:
        Node evaluations spent refreshing the bound iterates.
    reduction_reused:
        Whether the cached Algorithm-4 reduction survived untouched.
    sampling:
        ``"reused"`` (cached estimates provably fresh), ``"repaired"``
        (indexed engine re-ran only invalidated worlds), ``"resampled"``
        (whole candidate set re-estimated) or ``"skipped"`` (``k' = k``,
        nothing to sample).
    worlds_repaired:
        Worlds re-evaluated this refresh (equals ``samples`` on a full
        resample, 0 on reuse).
    samples:
        The refresh's Theorem-5 sample budget.
    elapsed_seconds:
        Wall-clock cost of the refresh.
    """

    mode: str
    reason: str
    dirty_nodes: int
    dirty_edges: int
    bounds_recomputed: int
    reduction_reused: bool
    sampling: str
    worlds_repaired: int
    samples: int
    elapsed_seconds: float


class TopKMonitor:
    """Maintain the BSR top-``k`` of a live graph under streaming updates.

    Parameters
    ----------
    graph:
        The live graph.  The monitor *shares* it (no copy): updates go
        through the monitor's setters (or :meth:`apply`), which patch
        the graph and record the dirty entities.
    k:
        Continuous answer size.
    epsilon, delta, lower_order, upper_order, seed:
        Exactly the parameters of
        :class:`~repro.algorithms.bsr.BoundedSampleReverseDetector`;
        the equivalence oracle is a fresh detector built with the same
        values.  Reproducible seeds (ints / SeedSequences) are required
        for the bit-identity guarantee to be observable.
    engine:
        Reverse-sampling engine: ``"indexed"`` (default — enables
        per-world repair), ``"batched"`` or ``"reference"`` (coarse
        ancestor-closure invalidation, whole-set resampling).
    full_rebuild_fraction:
        Dirty-region threshold (fraction of ``n``) above which refresh
        falls back to full recomputation.
    world_state_budget:
        Cap (in matrix cells) on the indexed engine's per-world
        touched-mask storage, ``samples * (n + m)``.  Above it the
        monitor keeps only outcome rows and invalidates on uniform
        crossings alone — still exact, marginally more re-exploration.
    """

    def __init__(
        self,
        graph: UncertainGraph,
        k: int,
        *,
        epsilon: float = 0.3,
        delta: float = 0.1,
        lower_order: int = 2,
        upper_order: int = 2,
        seed: SeedLike = 0,
        engine: str = "indexed",
        full_rebuild_fraction: float = 0.25,
        world_state_budget: int = 32_000_000,
    ) -> None:
        self._graph = graph
        self._k = validate_k(k, graph.num_nodes)
        self._epsilon, self._delta = validate_epsilon_delta(epsilon, delta)
        self._lower_order = int(lower_order)
        self._upper_order = int(upper_order)
        self._seed = seed
        self._engine_name = str(engine)
        self._engine = reverse_engine(self._engine_name)
        if not 0.0 < full_rebuild_fraction <= 1.0:
            raise GraphError(
                "full_rebuild_fraction must be in (0, 1], got "
                f"{full_rebuild_fraction}"
            )
        self._full_fraction = float(full_rebuild_fraction)
        self._world_state_budget = int(world_state_budget)
        # Pending dirt: entity -> probability at the last refresh.
        self._dirty_node_old: dict[int, float] = {}
        self._dirty_edge_old: dict[int, float] = {}
        # Cached pipeline state (filled by the first refresh).
        self._shape = (graph.num_nodes, graph.num_edges)
        self._bounds: IncrementalBoundPair | None = None
        self._reduction: CandidateReduction | None = None
        self._samples = 0
        self._probs: np.ndarray | None = None
        self._sampling_candidates: np.ndarray | None = None
        self._nodes_touched = 0
        self._edges_touched = 0
        # Indexed-engine world state.
        self._sampler: IndexedReverseSampler | None = None
        self._counts: np.ndarray | None = None
        self._world_outcomes: np.ndarray | None = None
        self._world_node_draws: np.ndarray | None = None
        self._world_edge_draws: np.ndarray | None = None
        self._touched_nodes: np.ndarray | None = None
        self._touched_edges: np.ndarray | None = None
        # Coarse-engine closure state.
        self._closure: np.ndarray | None = None
        self._result: DetectionResult | None = None
        self._last_report: RefreshReport | None = None
        self.stats: dict[str, int] = {
            "refreshes": 0,
            "full": 0,
            "incremental": 0,
            "clean": 0,
            "worlds_repaired": 0,
            "worlds_resampled": 0,
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def graph(self) -> UncertainGraph:
        """The live graph this monitor serves."""
        return self._graph

    @property
    def k(self) -> int:
        """The continuous answer size."""
        return self._k

    @property
    def engine_name(self) -> str:
        """Configured reverse-sampling engine."""
        return self._engine_name

    @property
    def last_report(self) -> RefreshReport | None:
        """Telemetry of the most recent refresh, if any."""
        return self._last_report

    @property
    def pending_updates(self) -> int:
        """Entities patched since the last refresh."""
        return len(self._dirty_node_old) + len(self._dirty_edge_old)

    # ------------------------------------------------------------------
    # Update intake
    # ------------------------------------------------------------------
    def set_self_risk(self, label: NodeLabel, value: float) -> None:
        """Patch one node's self-risk and mark it dirty."""
        index = self._graph.index(label)
        old = self._graph.self_risk(label)
        self._graph.set_self_risk(label, value)
        if self._graph.self_risk(label) != old:
            self._dirty_node_old.setdefault(index, old)

    def set_edge_probability(
        self, src: NodeLabel, dst: NodeLabel, value: float
    ) -> None:
        """Patch one edge's diffusion probability and mark it dirty."""
        edge_id = self._graph.edge_id(src, dst)
        old = self._graph.edge_probability(src, dst)
        self._graph.set_edge_probability(src, dst, value)
        if self._graph.edge_probability(src, dst) != old:
            self._dirty_edge_old.setdefault(edge_id, old)

    def set_all_self_risks(self, values: Sequence[float] | np.ndarray) -> None:
        """Bulk-patch self-risks; only entries that moved become dirty."""
        old = self._graph.self_risk_array
        self._graph.set_all_self_risks(values)
        new = self._graph.self_risk_array
        for index in np.flatnonzero(new != old):
            self._dirty_node_old.setdefault(int(index), float(old[index]))

    def set_all_edge_probabilities(
        self, values: Sequence[float] | np.ndarray
    ) -> None:
        """Bulk-patch edge probabilities; only moved entries become dirty."""
        _, _, old = self._graph.edge_array
        self._graph.set_all_edge_probabilities(values)
        _, _, new = self._graph.edge_array
        for edge in np.flatnonzero(new != old):
            self._dirty_edge_old.setdefault(int(edge), float(old[edge]))

    def apply(self, events: Iterable[UpdateEvent]) -> int:
        """Apply a batch of update events in order; returns the count.

        Events apply immediately (last write wins); a validation error
        propagates and leaves earlier events applied.
        """
        count = 0
        for event in events:
            if isinstance(event, SelfRiskUpdate):
                self.set_self_risk(event.label, event.value)
            elif isinstance(event, EdgeProbabilityUpdate):
                self.set_edge_probability(event.src, event.dst, event.value)
            elif isinstance(event, BulkSelfRiskUpdate):
                self.set_all_self_risks(event.values)
            elif isinstance(event, BulkEdgeProbabilityUpdate):
                self.set_all_edge_probabilities(event.values)
            else:
                raise GraphError(f"unknown update event: {event!r}")
            count += 1
        return count

    # ------------------------------------------------------------------
    # Query surface
    # ------------------------------------------------------------------
    def top_k(self) -> DetectionResult:
        """The current answer, refreshing first if updates are pending.

        Pending updates include direct topology mutations on the live
        graph (detected by shape), not just events routed through the
        monitor's setters — a stale cached answer is never served.
        """
        graph = self._graph
        stale = (
            self._result is None
            or self.pending_updates
            or (graph.num_nodes, graph.num_edges) != self._shape
        )
        if stale:
            self.refresh()
        assert self._result is not None
        return self._result

    def refresh(self) -> RefreshReport:
        """Fold all pending updates into the cached answer."""
        started = time.perf_counter()
        graph = self._graph
        shape = (graph.num_nodes, graph.num_edges)
        dirt = self._effective_dirt()
        nodes_idx, nodes_old, edges_idx, edges_old, heads = dirt
        if self._result is None:
            report = self._full_refresh(
                started, "initial", "first evaluation", dirt
            )
        elif shape != self._shape:
            report = self._full_refresh(
                started, "full", "graph topology changed", dirt
            )
        elif nodes_idx.size == 0 and edges_idx.size == 0:
            report = RefreshReport(
                mode="clean",
                reason="no pending probability changes",
                dirty_nodes=0,
                dirty_edges=0,
                bounds_recomputed=0,
                reduction_reused=True,
                sampling="reused",
                worlds_repaired=0,
                samples=self._samples,
                elapsed_seconds=time.perf_counter() - started,
            )
        else:
            limit = max(1, int(self._full_fraction * graph.num_nodes))
            if nodes_idx.size + heads.size > limit:
                report = self._full_refresh(
                    started, "full", "dirty region above threshold", dirt
                )
            else:
                assert self._bounds is not None
                delta = self._bounds.refresh(nodes_idx, heads, limit=limit)
                if delta is None:
                    report = self._full_refresh(
                        started, "full", "bound frontier above threshold", dirt
                    )
                else:
                    report = self._incremental_refresh(started, delta, dirt)
        self._dirty_node_old.clear()
        self._dirty_edge_old.clear()
        self._shape = shape
        self._last_report = report
        self.stats["refreshes"] += 1
        mode_key = "full" if report.mode == "initial" else report.mode
        self.stats[mode_key] = self.stats.get(mode_key, 0) + 1
        return report

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _effective_dirt(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Pending entities whose probability actually differs now.

        Returns ``(node_idx, node_old, edge_idx, edge_old, head_idx)``;
        entities patched back to their pre-refresh value drop out.

        Entity arrays come back sorted by index, *not* in ingestion
        order: the dirty dicts are keyed by entity (first-old wins, last
        value is whatever the graph holds now), so any two event
        sequences that leave the same graph state — e.g. a coalesced
        last-write-wins batch vs. its serial original — must hand the
        refresh pipeline exactly the same arrays.
        """
        graph = self._graph
        node_idx = np.fromiter(
            self._dirty_node_old.keys(), dtype=np.int64,
            count=len(self._dirty_node_old),
        )
        node_old = np.fromiter(
            self._dirty_node_old.values(), dtype=np.float64,
            count=len(self._dirty_node_old),
        )
        edge_idx = np.fromiter(
            self._dirty_edge_old.keys(), dtype=np.int64,
            count=len(self._dirty_edge_old),
        )
        edge_old = np.fromiter(
            self._dirty_edge_old.values(), dtype=np.float64,
            count=len(self._dirty_edge_old),
        )
        if node_idx.size:
            order = np.argsort(node_idx)
            node_idx, node_old = node_idx[order], node_old[order]
        if edge_idx.size:
            order = np.argsort(edge_idx)
            edge_idx, edge_old = edge_idx[order], edge_old[order]
        # A topology change renumbers entities; the full fallback ignores
        # dirt entirely, so stale indices are never dereferenced.
        if (graph.num_nodes, graph.num_edges) != self._shape:
            return node_idx, node_old, edge_idx, edge_old, edge_idx[:0]
        if node_idx.size:
            keep = graph.self_risk_array[node_idx] != node_old
            node_idx, node_old = node_idx[keep], node_old[keep]
        heads = edge_idx[:0]
        if edge_idx.size:
            _, dst, probs = graph.edge_array
            keep = probs[edge_idx] != edge_old
            edge_idx, edge_old = edge_idx[keep], edge_old[keep]
            heads = np.unique(dst[edge_idx])
        return node_idx, node_old, edge_idx, edge_old, heads

    def _full_refresh(
        self, started: float, mode: str, reason: str, dirt
    ) -> RefreshReport:
        """Recompute every stage — the same pipeline as fresh detection."""
        graph = self._graph
        self._bounds = IncrementalBoundPair(
            graph, self._lower_order, self._upper_order
        )
        lower, upper = self._bounds.pair()
        reduction = reduce_candidates(graph, lower, upper, self._k)
        if reduction.k_remaining > 0:
            samples = reduced_sample_size(
                reduction.candidate_size,
                self._k,
                reduction.k_verified,
                self._epsilon,
                self._delta,
            )
            self._resample(reduction, samples)
        else:
            self._clear_sampling_state()
        self._reduction = reduction
        self._assemble(started)
        nodes_idx, _, edges_idx, _, _ = dirt
        worlds = self._samples
        self.stats["worlds_resampled"] += worlds
        return RefreshReport(
            mode=mode,
            reason=reason,
            dirty_nodes=int(nodes_idx.size),
            dirty_edges=int(edges_idx.size),
            bounds_recomputed=graph.num_nodes
            * (self._lower_order + self._upper_order),
            reduction_reused=False,
            sampling="resampled" if worlds else "skipped",
            worlds_repaired=worlds,
            samples=self._samples,
            elapsed_seconds=time.perf_counter() - started,
        )

    def _incremental_refresh(
        self, started: float, delta: BoundDelta, dirt
    ) -> RefreshReport:
        """The dirty-frontier path: provable reuse stage by stage."""
        graph = self._graph
        nodes_idx, nodes_old, edges_idx, edges_old, heads = dirt
        assert self._bounds is not None and self._reduction is not None
        # Stage 2: Algorithm 4 is untouched unless a changed bound value
        # reaches Tl — below Tl both thresholds and both membership rules
        # are provably inert.
        crossed = (
            delta.max_changed_value >= self._reduction.threshold_lower
        )
        reduction = self._reduction
        if crossed:
            lower, upper = self._bounds.pair()
            reduction = reduce_candidates(graph, lower, upper, self._k)
        # Stage 3: sampling.
        worlds_repaired = 0
        if reduction.k_remaining == 0:
            sampling = "skipped"
            self._clear_sampling_state()
        else:
            samples = reduced_sample_size(
                reduction.candidate_size,
                self._k,
                reduction.k_verified,
                self._epsilon,
                self._delta,
            )
            inputs_unchanged = (
                self._sampling_candidates is not None
                and samples == self._samples
                and np.array_equal(reduction.candidates, self._sampling_candidates)
            )
            if not inputs_unchanged:
                self._resample(reduction, samples)
                sampling = "resampled"
                worlds_repaired = samples
                self.stats["worlds_resampled"] += samples
            elif self._engine_name == "indexed":
                affected = self._affected_worlds(
                    nodes_idx, nodes_old, edges_idx, edges_old
                )
                if affected.size:
                    self._repair_worlds(affected)
                    sampling = "repaired"
                    worlds_repaired = int(affected.size)
                    self.stats["worlds_repaired"] += worlds_repaired
                else:
                    sampling = "reused"
            else:
                assert self._closure is not None
                relevant = bool(self._closure[nodes_idx].any()) or bool(
                    self._closure[heads].any()
                )
                if relevant:
                    self._resample(reduction, samples)
                    sampling = "resampled"
                    worlds_repaired = samples
                    self.stats["worlds_resampled"] += samples
                else:
                    sampling = "reused"
        self._reduction = reduction
        self._assemble(started)
        return RefreshReport(
            mode="incremental",
            reason="dirty-frontier refresh",
            dirty_nodes=int(nodes_idx.size),
            dirty_edges=int(edges_idx.size),
            bounds_recomputed=delta.nodes_recomputed,
            reduction_reused=not crossed,
            sampling=sampling,
            worlds_repaired=worlds_repaired,
            samples=self._samples,
            elapsed_seconds=time.perf_counter() - started,
        )

    def _affected_worlds(
        self,
        nodes_idx: np.ndarray,
        nodes_old: np.ndarray,
        edges_idx: np.ndarray,
        edges_old: np.ndarray,
    ) -> np.ndarray:
        """Worlds whose cached outcome a dirty entity can have changed.

        World ``w`` is invalidated by entity ``x`` only if ``x``'s fixed
        uniform in ``w`` crosses the old→new probability (its realisation
        flips) — expected fraction ``|Δp|`` of worlds — and, when touched
        masks are kept, only if ``w`` actually drew ``x``.
        """
        assert self._sampler is not None
        graph = self._graph
        samples = self._samples
        stride = self._sampler.counter_stride
        key = self._sampler.stream_key
        bases = np.arange(samples, dtype=np.uint64) * stride
        affected = np.zeros(samples, dtype=bool)
        if nodes_idx.size:
            new_risks = graph.self_risk_array[nodes_idx]
            for index, old, new in zip(nodes_idx, nodes_old, new_risks):
                low, high = sorted((float(old), float(new)))
                flips = hashed_uniforms(key, bases + _U64(int(index)))
                flips = (flips > low) & (flips <= high)
                if self._touched_nodes is not None:
                    flips &= self._touched_nodes[:, int(index)]
                affected |= flips
        if edges_idx.size:
            offset = _U64(graph.num_nodes)
            _, _, probs = graph.edge_array
            for edge, old in zip(edges_idx, edges_old):
                low, high = sorted((float(old), float(probs[edge])))
                flips = hashed_uniforms(key, bases + offset + _U64(int(edge)))
                flips = (flips > low) & (flips <= high)
                if self._touched_edges is not None:
                    flips &= self._touched_edges[:, int(edge)]
                affected |= flips
        return np.flatnonzero(affected)

    def _repair_worlds(self, worlds: np.ndarray) -> None:
        """Re-explore only the invalidated worlds and splice them in.

        Running totals (candidate counts, work counters) are updated by
        the repaired rows' delta — all integer arithmetic, so the state
        is exactly what a full re-summation would produce, at
        O(repaired) instead of O(samples) cost.
        """
        assert self._sampler is not None and self._world_outcomes is not None
        collect = self._touched_nodes is not None
        block = self._sampler.outcomes_for_worlds(
            worlds, collect_touched=collect
        )
        old_rows = self._world_outcomes[worlds]
        self._counts += block.outcomes.sum(axis=0) - old_rows.sum(axis=0)
        self._nodes_touched += int(
            block.node_draws.sum() - self._world_node_draws[worlds].sum()
        )
        self._edges_touched += int(
            block.edge_draws.sum() - self._world_edge_draws[worlds].sum()
        )
        self._world_outcomes[worlds] = block.outcomes
        self._world_node_draws[worlds] = block.node_draws
        self._world_edge_draws[worlds] = block.edge_draws
        if collect:
            self._touched_nodes[worlds] = block.touched_nodes
            self._touched_edges[worlds] = block.touched_edges
        self._probs = self._counts / float(self._samples)

    def _resample(self, reduction: CandidateReduction, samples: int) -> None:
        """Estimate the whole candidate set afresh (as fresh BSR would)."""
        graph = self._graph
        sampler = self._engine(graph, reduction.candidates, seed=self._seed)
        if self._engine_name == "indexed":
            cells = samples * (graph.num_nodes + graph.num_edges)
            track = cells <= self._world_state_budget
            block = sampler.outcomes_for_worlds(
                np.arange(samples, dtype=np.int64), collect_touched=track
            )
            self._sampler = sampler
            self._world_outcomes = block.outcomes
            self._world_node_draws = block.node_draws.copy()
            self._world_edge_draws = block.edge_draws.copy()
            self._touched_nodes = block.touched_nodes
            self._touched_edges = block.touched_edges
            self._counts = block.outcomes.sum(axis=0)
            self._probs = self._counts / float(samples)
            self._nodes_touched = int(block.node_draws.sum())
            self._edges_touched = int(block.edge_draws.sum())
            self._closure = None
        else:
            estimate = sampler.run(samples)
            self._probs = estimate.probabilities
            self._nodes_touched = sampler.nodes_touched
            self._edges_touched = sampler.edges_touched
            self._sampler = None
            self._counts = None
            self._world_outcomes = None
            self._touched_nodes = self._touched_edges = None
            self._world_node_draws = self._world_edge_draws = None
            self._closure = ancestor_closure(graph, reduction.candidates)
        self._samples = int(samples)
        self._sampling_candidates = reduction.candidates.copy()

    def _clear_sampling_state(self) -> None:
        self._samples = 0
        self._probs = None
        self._sampling_candidates = None
        self._nodes_touched = 0
        self._edges_touched = 0
        self._sampler = None
        self._counts = None
        self._world_outcomes = None
        self._world_node_draws = self._world_edge_draws = None
        self._touched_nodes = self._touched_edges = None
        self._closure = None

    def _assemble(self, started: float) -> None:
        """Build the DetectionResult exactly as BSR's ``_detect`` does."""
        assert self._bounds is not None and self._reduction is not None
        reduction = self._reduction
        nodes, scores = assemble_answer(
            self._graph, reduction, self._bounds.lower, self._probs, self._k
        )
        self._result = DetectionResult(
            method="BSR",
            k=self._k,
            nodes=nodes,
            scores=scores,
            samples_used=self._samples,
            candidate_size=reduction.candidate_size,
            k_verified=reduction.k_verified,
            elapsed_seconds=time.perf_counter() - started,
            details={
                "epsilon": self._epsilon,
                "delta": self._delta,
                "lower_order": self._lower_order,
                "upper_order": self._upper_order,
                **reduction.summary(),
                "nodes_touched": self._nodes_touched,
                "edges_touched": self._edges_touched,
                "streaming_engine": self._engine_name,
            },
        )
