"""Turn datasets and synthetic drift into replayable update streams.

Two sources feed the streaming monitor in this repository:

* :func:`panel_update_stream` — the temporal guaranteed-loan panel
  (:class:`~repro.datasets.temporal.GuaranteePanel`): each year's true
  self-risks become one bulk update batch, replaying the year-over-year
  drift the paper's deployment re-scores monthly.  Edge probabilities
  are constant across panel years (guarantee contracts are long-lived),
  so the batches carry self-risk vectors only.
* :func:`random_patch_stream` — synthetic single-entity monitoring
  patches (one node's re-scored self-risk or one guarantee's re-assessed
  strength per event), the workload of the streaming benchmark.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.core.errors import DatasetError
from repro.core.graph import UncertainGraph
from repro.sampling.rng import SeedLike, make_rng
from repro.streaming.events import (
    BulkSelfRiskUpdate,
    EdgeProbabilityUpdate,
    SelfRiskUpdate,
    UpdateEvent,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.datasets.temporal import GuaranteePanel

__all__ = ["panel_update_stream", "random_patch_stream"]


def panel_update_stream(
    panel: "GuaranteePanel",
) -> Iterator[tuple[int, list[UpdateEvent]]]:
    """Yield ``(year, events)`` batches replaying the panel's drift.

    Years come in panel order (train year first); the first batch
    re-asserts the training year's risks, which the panel's graph
    already carries, so a monitor diffing against current state sees it
    as a no-op — convenient for replaying from the panel's initial
    condition.  Feed each batch to :meth:`TopKMonitor.apply` and query
    between batches to monitor the panel year by year.
    """
    years = (panel.train_year, *panel.test_years)
    for year in years:
        snapshot = panel.snapshots.get(year)
        if snapshot is None:
            raise DatasetError(f"panel has no snapshot for year {year}")
        yield year, [BulkSelfRiskUpdate(values=snapshot.self_risks)]


def random_patch_stream(
    graph: UncertainGraph,
    count: int,
    seed: SeedLike = 0,
    *,
    edge_fraction: float = 0.5,
    drift: float | None = None,
    self_risk_cap: float = 0.5,
) -> Iterator[UpdateEvent]:
    """Yield *count* single-entity monitoring patches for *graph*.

    Each event re-scores one uniformly chosen node's self-risk or one
    uniformly chosen guarantee edge's strength.  With ``drift`` set, new
    values are a clipped Gaussian step from the current value — the
    month-over-month re-assessment pattern of the deployed system; with
    ``drift=None`` values are drawn fresh (``U[0, self_risk_cap)`` for
    nodes, ``U[0, 1)`` for edges), exercising arbitrarily large patches.

    The stream is lazy and reads current values at yield time, so it
    composes with a monitor that is applying the events as they come.
    """
    if count < 0:
        raise DatasetError(f"count must be non-negative, got {count}")
    if not 0.0 <= edge_fraction <= 1.0:
        raise DatasetError(
            f"edge_fraction must be in [0, 1], got {edge_fraction}"
        )
    rng = make_rng(seed)
    has_edges = graph.num_edges > 0
    edge_src, edge_dst, _ = graph.edge_array
    for _ in range(count):
        patch_edge = has_edges and rng.random() < edge_fraction
        if patch_edge:
            edge = int(rng.integers(graph.num_edges))
            src = graph.label(int(edge_src[edge]))
            dst = graph.label(int(edge_dst[edge]))
            if drift is None:
                value = float(rng.random())
            else:
                current = graph.edge_probability(src, dst)
                value = float(
                    np.clip(current + rng.normal(0.0, drift), 0.0, 1.0)
                )
            yield EdgeProbabilityUpdate(src=src, dst=dst, value=value)
        else:
            label = graph.label(int(rng.integers(graph.num_nodes)))
            if drift is None:
                value = float(rng.random() * self_risk_cap)
            else:
                current = graph.self_risk(label)
                value = float(
                    np.clip(current + rng.normal(0.0, drift), 0.0, 1.0)
                )
            yield SelfRiskUpdate(label=label, value=value)
