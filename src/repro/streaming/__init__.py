"""Streaming top-k monitoring — incremental detection over a live graph.

The deployed system of the paper's §5 is a *monitoring* system: guarantee
probabilities and self-risks drift month to month, and the risk-control
centre re-detects the vulnerable set on every change.  This package
serves that workload without recomputing from scratch:

* :mod:`repro.streaming.events` — the update-event vocabulary
  (single-entity and bulk self-risk / edge-probability patches, plus
  append-only ``NodeAdd``/``EdgeAdd`` topology growth);
* :mod:`repro.streaming.monitor` — :class:`TopKMonitor`, which holds a
  live :class:`~repro.core.graph.UncertainGraph` and keeps the top-k
  answer maintained incrementally, bit-identical to fresh
  :class:`~repro.algorithms.bsr.BoundedSampleReverseDetector` detection;
* :mod:`repro.streaming.replay` — adapters that turn the temporal
  guarantee panel and synthetic drift into replayable update streams.
"""

from repro.streaming.events import (
    BulkEdgeProbabilityUpdate,
    BulkSelfRiskUpdate,
    EdgeAdd,
    EdgeProbabilityUpdate,
    NodeAdd,
    SelfRiskUpdate,
    UpdateEvent,
    apply_event,
    apply_events,
    validate_event,
    validate_events,
)
from repro.streaming.monitor import RefreshReport, TopKMonitor
from repro.streaming.replay import panel_update_stream, random_patch_stream

__all__ = [
    "SelfRiskUpdate",
    "EdgeProbabilityUpdate",
    "BulkSelfRiskUpdate",
    "BulkEdgeProbabilityUpdate",
    "NodeAdd",
    "EdgeAdd",
    "UpdateEvent",
    "apply_event",
    "apply_events",
    "validate_event",
    "validate_events",
    "TopKMonitor",
    "RefreshReport",
    "panel_update_stream",
    "random_patch_stream",
]
