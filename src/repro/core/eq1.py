"""Equation (1): the recursive default-probability operator.

The paper defines the default probability of a node as

    p(v) = 1 - (1 - ps(v)) * prod over in-neighbours x of (1 - p(v|x) p(x))

This module implements one application of that operator
(:func:`apply_eq1`), iterated evaluation from a starting vector
(:func:`iterate_eq1`), and an exact topological evaluation for DAGs
(:func:`dag_default_probabilities`).

Semantics caveat (documented in DESIGN.md): Equation (1) treats the
default events of in-neighbours as independent.  On trees/forests this is
exact; on graphs with shared ancestors it is an approximation of the
possible-world value.  The library therefore uses Equation (1) exactly
where the paper uses it — to derive the lower/upper bounds of Algorithms 2
and 3 — and uses Monte Carlo / enumeration for unbiased values.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import GraphError
from repro.core.graph import UncertainGraph

__all__ = [
    "apply_eq1",
    "iterate_eq1",
    "dag_default_probabilities",
    "topological_order",
]


def apply_eq1(graph: UncertainGraph, current: np.ndarray) -> np.ndarray:
    """One application of the Equation-(1) operator.

    Parameters
    ----------
    graph:
        The uncertain graph.
    current:
        ``float64`` array over internal node indices holding the current
        estimate of every node's default probability (``p(x)`` on the
        right-hand side of Equation (1)).

    Returns
    -------
    numpy.ndarray
        New estimates ``p'(v) = 1 - (1 - ps(v)) * prod (1 - p(v|x) p(x))``.

    Notes
    -----
    Vectorised: the per-node product over in-edges is computed as
    ``exp(sum(log1p(-p(v|x) p(x))))`` with segment sums over the in-CSR,
    which is numerically stable for small probabilities and handles
    zero-probability factors via ``-inf`` logs.
    """
    n = graph.num_nodes
    current = np.asarray(current, dtype=np.float64)
    if current.shape != (n,):
        raise GraphError(f"current has shape {current.shape}, expected ({n},)")
    ps = graph.self_risk_array
    if n == 0:
        return ps.copy()
    in_csr = graph.in_csr()
    # Per in-edge factor (1 - p(v|x) p(x)), aligned with the in-CSR layout.
    factors = 1.0 - in_csr.probs * current[in_csr.indices]
    with np.errstate(divide="ignore"):
        logs = np.log(np.maximum(factors, 0.0))
    # Segment-sum of logs per destination node.
    sums = np.zeros(n, dtype=np.float64)
    if logs.size:
        destinations = np.repeat(np.arange(n), np.diff(in_csr.indptr))
        np.add.at(sums, destinations, logs)
    survive = np.exp(sums)  # prod of (1 - p(v|x) p(x)); exp(-inf) == 0.
    return 1.0 - (1.0 - ps) * survive


def iterate_eq1(
    graph: UncertainGraph,
    start: np.ndarray | None = None,
    max_iter: int = 100,
    tol: float = 1e-12,
) -> tuple[np.ndarray, int]:
    """Iterate Equation (1) to (approximate) fixed point.

    Parameters
    ----------
    graph:
        The uncertain graph.
    start:
        Initial estimate vector; defaults to the self-risk vector ``ps``.
    max_iter:
        Iteration cap.
    tol:
        Stop when the max absolute change drops below this.

    Returns
    -------
    tuple
        ``(probabilities, iterations_used)``.

    Notes
    -----
    Starting from ``ps`` the operator is monotone non-decreasing and
    bounded by 1, so the iteration always converges.
    """
    current = graph.self_risk_array if start is None else np.asarray(
        start, dtype=np.float64
    ).copy()
    iterations = 0
    for iterations in range(1, max_iter + 1):
        updated = apply_eq1(graph, current)
        if np.max(np.abs(updated - current), initial=0.0) < tol:
            current = updated
            break
        current = updated
    return current, iterations


def topological_order(graph: UncertainGraph) -> list[int]:
    """Topological order of internal indices; raises on cycles.

    Kahn's algorithm on the out-CSR.  Used by the exact DAG evaluator and
    by dataset validators that must certify acyclicity.
    """
    n = graph.num_nodes
    in_deg = graph.in_csr().degrees.copy()
    out = graph.out_csr()
    order: list[int] = [int(i) for i in np.flatnonzero(in_deg == 0)]
    head = 0
    while head < len(order):
        u = order[head]
        head += 1
        for v in out.neighbors(u):
            in_deg[v] -= 1
            if in_deg[v] == 0:
                order.append(int(v))
    if len(order) != n:
        raise GraphError("graph has a directed cycle; no topological order")
    return order


def dag_default_probabilities(graph: UncertainGraph) -> np.ndarray:
    """Evaluate Equation (1) exactly on a DAG in one topological pass.

    On a DAG every node's in-neighbours are fully evaluated before the node
    itself, so a single sweep reaches the Equation-(1) fixed point.  (The
    value still assumes in-neighbour independence; on trees it equals the
    possible-world probability exactly.)
    """
    order = topological_order(graph)
    in_csr = graph.in_csr()
    ps = graph.self_risk_array
    p = ps.copy()
    for v in order:
        start, stop = in_csr.indptr[v], in_csr.indptr[v + 1]
        survive = 1.0
        for pos in range(start, stop):
            survive *= 1.0 - in_csr.probs[pos] * p[in_csr.indices[pos]]
        p[v] = 1.0 - (1.0 - ps[v]) * survive
    return p
