"""Connectivity analysis for uncertain graphs.

The paper's introduction centres on *guarantee circles* — groups of
enterprises backing each other in cycles, which is where contagion
amplifies.  This module provides the connectivity machinery to find
them: weakly connected components (the "loan communities" the deployed
UI monitors), strongly connected components (SCCs with more than one
node are exactly the guarantee circles), and reachability queries used
by analysis scripts.

All three entry points are vectorised:

* weak components run a union-find over the edge arrays — vectorised
  min-hooking (``np.minimum.at``) alternating with pointer-jumping path
  compression, ``O((n + m) log n)`` numpy work and no per-node Python
  BFS;
* strong components first *trim* away nodes that cannot sit on a cycle
  (no live in-edges or no live out-edges — vectorised ``bincount``
  rounds peel whole layers at once), then run an iterative Tarjan over
  plain Python lists on the usually-tiny remainder;
* reachability expands whole frontiers at a time through the shared
  CSR gather of :func:`repro.core.propagation.ragged_positions`.
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import NodeLabel, UncertainGraph
from repro.core.propagation import ragged_positions

__all__ = [
    "weakly_connected_components",
    "strongly_connected_components",
    "guarantee_circles",
    "reachable_from",
]

#: Vectorised trim rounds before Tarjan takes over.  Each round peels
#: every node that provably sits in a singleton SCC, so sparse real
#: graphs usually trim to (almost) nothing; pathological long chains
#: fall through to Tarjan, which is linear anyway.
_TRIM_ROUNDS = 32


def _components_from_roots(
    graph: UncertainGraph, parent: np.ndarray
) -> list[list[NodeLabel]]:
    """Group node indices by union-find root, largest component first."""
    order = np.argsort(parent, kind="stable")
    sorted_roots = parent[order]
    starts = np.flatnonzero(
        np.concatenate(([True], sorted_roots[1:] != sorted_roots[:-1]))
    )
    bounds = np.append(starts, parent.size)
    components = [
        [graph.label(int(i)) for i in order[a:b]]
        for a, b in zip(bounds[:-1], bounds[1:])
    ]
    components.sort(key=len, reverse=True)
    return components


def weakly_connected_components(graph: UncertainGraph) -> list[list[NodeLabel]]:
    """Connected components ignoring edge direction, largest first.

    These are the paper's "loan communities": thousands of independent
    guarantee networks coexist in one bank's book.

    Vectorised union-find: every round hooks the root of each edge's
    larger endpoint onto the smaller root (one ``np.minimum.at``), then
    pointer-jumps the parent forest flat.  Rounds are ``O(n + m)`` numpy
    work and the forest height halves each jump, so the loop finishes in
    ``O(log n)`` rounds.
    """
    n = graph.num_nodes
    if n == 0:
        return []
    parent = np.arange(n, dtype=np.int64)
    src, dst, _ = graph.edge_array
    while src.size:
        root_src = parent[src]
        root_dst = parent[dst]
        merge = root_src != root_dst
        if not merge.any():
            break
        low = np.minimum(root_src[merge], root_dst[merge])
        high = np.maximum(root_src[merge], root_dst[merge])
        np.minimum.at(parent, high, low)
        while True:
            jumped = parent[parent]
            if np.array_equal(jumped, parent):
                break
            parent = jumped
    return _components_from_roots(graph, parent)


def _trim_acyclic_fringe(
    n: int, src: np.ndarray, dst: np.ndarray
) -> tuple[list[int], np.ndarray, np.ndarray]:
    """Peel nodes that cannot lie on a directed cycle.

    A node with no live in-edges (or no live out-edges) is a singleton
    SCC; removing it can expose more.  Each vectorised round peels every
    currently exposed node at once.  Returns the peeled singletons (in
    deterministic index order per round) plus the surviving edges.
    """
    alive_node = np.ones(n, dtype=bool)
    alive_edge = np.ones(src.size, dtype=bool)
    singletons: list[int] = []
    for _ in range(_TRIM_ROUNDS):
        live_src = src[alive_edge]
        live_dst = dst[alive_edge]
        in_degree = np.bincount(live_dst, minlength=n)
        out_degree = np.bincount(live_src, minlength=n)
        peel = alive_node & ((in_degree == 0) | (out_degree == 0))
        if not peel.any():
            break
        singletons.extend(np.flatnonzero(peel).tolist())
        alive_node &= ~peel
        if not alive_node.any():
            break
        alive_edge &= alive_node[src] & alive_node[dst]
    return singletons, src[alive_edge], dst[alive_edge]


def _tarjan(
    nodes: np.ndarray, n: int, src: np.ndarray, dst: np.ndarray
) -> list[list[int]]:
    """Iterative Tarjan over plain Python lists (safe on deep graphs).

    Runs only on the post-trim core, with adjacency flattened once into
    Python lists so the inner loop never touches numpy scalars.
    """
    order = np.argsort(src, kind="stable")
    sorted_dst = dst[order]
    counts = np.bincount(src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indptr_list = indptr.tolist()
    neighbor_list = sorted_dst.tolist()

    index_of = [-1] * n
    low_link = [0] * n
    on_stack = [False] * n
    stack: list[int] = []
    components: list[list[int]] = []
    counter = 0
    for root in nodes.tolist():
        if index_of[root] != -1:
            continue
        # Each frame is [node, next-neighbour-position].
        work: list[list[int]] = [[root, indptr_list[root]]]
        while work:
            frame = work[-1]
            node = frame[0]
            if frame[1] == indptr_list[node]:  # first visit
                index_of[node] = low_link[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = True
            advanced = False
            stop = indptr_list[node + 1]
            while frame[1] < stop:
                neighbor = neighbor_list[frame[1]]
                frame[1] += 1
                if index_of[neighbor] == -1:
                    work.append([neighbor, indptr_list[neighbor]])
                    advanced = True
                    break
                if on_stack[neighbor] and index_of[neighbor] < low_link[node]:
                    low_link[node] = index_of[neighbor]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if low_link[node] < low_link[parent]:
                    low_link[parent] = low_link[node]
            if low_link[node] == index_of[node]:
                members: list[int] = []
                while True:
                    top = stack.pop()
                    on_stack[top] = False
                    members.append(top)
                    if top == node:
                        break
                components.append(members)
    return components


def strongly_connected_components(
    graph: UncertainGraph,
) -> list[list[NodeLabel]]:
    """Strongly connected components, largest first.

    A vectorised trim pass peels everything that provably sits in a
    singleton SCC (typically almost the whole graph — guarantee books
    are sparse); iterative Tarjan finishes the remaining cyclic core.
    """
    n = graph.num_nodes
    if n == 0:
        return []
    src, dst, _ = graph.edge_array
    singletons, live_src, live_dst = _trim_acyclic_fringe(n, src, dst)
    index_components: list[list[int]] = [[i] for i in singletons]
    if len(singletons) < n:
        remaining = np.ones(n, dtype=bool)
        remaining[singletons] = False
        index_components.extend(
            _tarjan(np.flatnonzero(remaining), n, live_src, live_dst)
        )
    components = [
        [graph.label(i) for i in members] for members in index_components
    ]
    components.sort(key=len, reverse=True)
    return components


def guarantee_circles(graph: UncertainGraph) -> list[list[NodeLabel]]:
    """SCCs of size >= 2 — the mutual-guarantee circles of the paper.

    A circle means contagion can cycle: every member is (indirectly)
    exposed to every other member's default.
    """
    return [
        component
        for component in strongly_connected_components(graph)
        if len(component) >= 2
    ]


def reachable_from(graph: UncertainGraph, label: NodeLabel) -> set[NodeLabel]:
    """All nodes reachable from *label* along edge directions.

    Ignores probabilities: this is the *support* of contagion — nodes
    with any chance at all of being hit if *label* defaults.  Expands a
    whole frontier per iteration through the shared CSR gather, so the
    Python work is one loop turn per BFS level, not per edge.
    """
    out = graph.out_csr()
    start = graph.index(label)
    seen = np.zeros(graph.num_nodes, dtype=bool)
    seen[start] = True
    frontier = np.array([start], dtype=np.int64)
    while frontier.size:
        positions, _ = ragged_positions(out.indptr, frontier)
        if not positions.size:
            break
        neighbors = out.indices[positions]
        fresh = np.unique(neighbors[~seen[neighbors]])
        if not fresh.size:
            break
        seen[fresh] = True
        frontier = fresh
    return {graph.label(int(i)) for i in np.flatnonzero(seen)}
