"""Connectivity analysis for uncertain graphs.

The paper's introduction centres on *guarantee circles* — groups of
enterprises backing each other in cycles, which is where contagion
amplifies.  This module provides the connectivity machinery to find
them: weakly connected components (the "loan communities" the deployed
UI monitors), strongly connected components (Tarjan, iterative — SCCs
with more than one node are exactly the guarantee circles), and
reachability queries used by analysis scripts.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.graph import NodeLabel, UncertainGraph

__all__ = [
    "weakly_connected_components",
    "strongly_connected_components",
    "guarantee_circles",
    "reachable_from",
]


def weakly_connected_components(graph: UncertainGraph) -> list[list[NodeLabel]]:
    """Connected components ignoring edge direction, largest first.

    These are the paper's "loan communities": thousands of independent
    guarantee networks coexist in one bank's book.
    """
    n = graph.num_nodes
    out_csr = graph.out_csr()
    in_csr = graph.in_csr()
    seen = np.zeros(n, dtype=bool)
    components: list[list[NodeLabel]] = []
    for start in range(n):
        if seen[start]:
            continue
        queue: deque[int] = deque((start,))
        seen[start] = True
        members: list[int] = []
        while queue:
            u = queue.popleft()
            members.append(u)
            for v in out_csr.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    queue.append(int(v))
            for v in in_csr.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    queue.append(int(v))
        components.append([graph.label(i) for i in members])
    components.sort(key=len, reverse=True)
    return components


def strongly_connected_components(
    graph: UncertainGraph,
) -> list[list[NodeLabel]]:
    """Tarjan's SCCs (iterative — safe on deep graphs), largest first."""
    n = graph.num_nodes
    out_csr = graph.out_csr()
    index_of = np.full(n, -1, dtype=np.int64)
    low_link = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    stack: list[int] = []
    components: list[list[NodeLabel]] = []
    counter = 0

    for root in range(n):
        if index_of[root] != -1:
            continue
        # Each frame is [node, position-in-neighbour-list].
        work: list[list[int]] = [[root, 0]]
        while work:
            node, position = work[-1]
            if position == 0:  # first visit
                index_of[node] = low_link[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = True
            neighbors = out_csr.neighbors(node)
            advanced = False
            while work[-1][1] < len(neighbors):
                neighbor = int(neighbors[work[-1][1]])
                work[-1][1] += 1
                if index_of[neighbor] == -1:
                    work.append([neighbor, 0])
                    advanced = True
                    break
                if on_stack[neighbor]:
                    low_link[node] = min(low_link[node], index_of[neighbor])
            if advanced:
                continue
            # All neighbours done: close the frame.
            work.pop()
            if work:
                parent = work[-1][0]
                low_link[parent] = min(low_link[parent], low_link[node])
            if low_link[node] == index_of[node]:
                members: list[int] = []
                while True:
                    top = stack.pop()
                    on_stack[top] = False
                    members.append(top)
                    if top == node:
                        break
                components.append([graph.label(i) for i in members])
    components.sort(key=len, reverse=True)
    return components


def guarantee_circles(graph: UncertainGraph) -> list[list[NodeLabel]]:
    """SCCs of size >= 2 — the mutual-guarantee circles of the paper.

    A circle means contagion can cycle: every member is (indirectly)
    exposed to every other member's default.
    """
    return [
        component
        for component in strongly_connected_components(graph)
        if len(component) >= 2
    ]


def reachable_from(graph: UncertainGraph, label: NodeLabel) -> set[NodeLabel]:
    """All nodes reachable from *label* along edge directions.

    Ignores probabilities: this is the *support* of contagion — nodes
    with any chance at all of being hit if *label* defaults.
    """
    out_csr = graph.out_csr()
    start = graph.index(label)
    seen = {start}
    queue: deque[int] = deque((start,))
    while queue:
        u = queue.popleft()
        for v in out_csr.neighbors(u):
            if int(v) not in seen:
                seen.add(int(v))
                queue.append(int(v))
    return {graph.label(i) for i in seen}
