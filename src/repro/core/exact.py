"""Exact default probabilities by possible-world enumeration.

The paper proves computing ``p(v)`` is #P-hard (Theorem 1), so exact values
are only feasible for small graphs.  This module provides the exact oracle
used as ground truth in unit tests and for validating the samplers:

    p(v) = sum over worlds W of  p(W) * I_W(v)

where ``I_W(v)`` indicates that ``v`` defaults in ``W``.

Two engines compute the sum:

* ``engine="block"`` (the default) — the bit-parallel engine: worlds are
  streamed in Gray-code blocks through
  :func:`repro.core.worlds.enumerate_world_blocks` and the contagion of a
  whole block is resolved at once by the shared propagation engine
  (:func:`repro.core.propagation.propagate_defaults_block`).  Memory is
  bounded by the block size, so the default ``max_choices`` cap is 28
  (``2^28`` worlds) instead of the former 24.
* ``engine="reference"`` — the scalar generator
  (:func:`repro.core.worlds.enumerate_worlds` plus a per-world Python
  BFS).  It is kept as the executable specification; the test suite
  enforces that the block engine reproduces its per-world defaults and
  masses exactly.

``benchmarks/bench_exact_oracle.py`` tracks the speed gap between the two
(the block engine is two orders of magnitude faster at 20 choices).
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import GraphError
from repro.core.graph import UncertainGraph
from repro.core.propagation import propagate_defaults_block
from repro.core.topk import top_k_labels
from repro.core.worlds import (
    DEFAULT_BLOCK_WORLDS,
    DEFAULT_MAX_CHOICES,
    enumerate_world_blocks,
    enumerate_worlds,
    propagate_defaults,
)

__all__ = ["exact_default_probabilities", "exact_top_k"]


def _two_sum(a, b):
    """Knuth's error-free transformation: ``a + b = s + err`` exactly."""
    s = a + b
    t = s - a
    err = (a - (s - t)) + (b - t)
    return s, err


def _block_node_sums(
    masses: np.ndarray, defaulted: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-node sum of world masses over one block, in double-double.

    ``masses[w] * defaulted[w, v]`` is exact (the boolean factor is 0.0 or
    1.0), and the tree reduction keeps every pairwise addition's rounding
    error through :func:`_two_sum`, so the returned ``(value, residual)``
    pair carries the block sum to ~eps^2.  This makes the oracle's output
    independent of accumulation order at double precision: nodes whose
    exact probabilities are mathematically equal (symmetric positions in
    the graph) come out bit-for-bit equal, as the scalar reference's
    tie-breaking tests require.
    """
    values = masses[:, None] * defaulted
    residuals = np.zeros_like(values)
    while values.shape[0] > 1:
        if values.shape[0] & 1:
            pad = np.zeros((1, values.shape[1]))
            values = np.concatenate((values, pad))
            residuals = np.concatenate((residuals, pad))
        summed, err = _two_sum(values[0::2], values[1::2])
        residuals = residuals[0::2] + residuals[1::2] + err
        values = summed
    return values[0], residuals[0]


def exact_default_probabilities(
    graph: UncertainGraph,
    max_choices: int = DEFAULT_MAX_CHOICES,
    *,
    engine: str = "block",
    block_worlds: int = DEFAULT_BLOCK_WORLDS,
) -> np.ndarray:
    """Exact ``p(v)`` for every node by enumerating all possible worlds.

    Parameters
    ----------
    graph:
        A small uncertain graph (at most *max_choices* non-deterministic
        node/edge choices).
    max_choices:
        Enumeration safety cap, forwarded to the world enumerators.
    engine:
        ``"block"`` (bit-parallel, default) or ``"reference"`` (scalar
        specification).  Both compute the same sum; per-world masses and
        defaults agree bit-for-bit, and the block engine's compensated
        accumulation is at least as accurate as the reference's
        sequential one, so totals agree to a few ulps (exactly, when the
        masses are exactly representable).
    block_worlds:
        Worlds materialised per block by the block engine; bounds its
        memory use.  Ignored by the reference engine.

    Returns
    -------
    numpy.ndarray
        ``float64`` array over internal node indices; entry ``i`` is the
        exact default probability of the node at index ``i``.
    """
    probabilities = np.zeros(graph.num_nodes, dtype=np.float64)
    if engine == "block":
        residual = np.zeros(graph.num_nodes, dtype=np.float64)
        for block in enumerate_world_blocks(
            graph, max_choices=max_choices, block_worlds=block_worlds
        ):
            defaulted = propagate_defaults_block(
                graph, block.self_default, block.edge_survives
            )
            value, block_residual = _block_node_sums(block.masses, defaulted)
            probabilities, err = _two_sum(probabilities, value)
            residual += block_residual + err
        probabilities += residual
    elif engine == "reference":
        for world, mass in enumerate_worlds(graph, max_choices=max_choices):
            if mass == 0.0:
                continue
            defaulted = propagate_defaults(graph, world)
            probabilities[defaulted] += mass
    else:
        raise GraphError(
            f"unknown exact engine {engine!r}; choose from ['block', 'reference']"
        )
    # Accumulating many world masses can overshoot 1.0 by a few ulps,
    # which breaks downstream sqrt(p * (1 - p)) variance formulas.
    return np.clip(probabilities, 0.0, 1.0)


def exact_top_k(
    graph: UncertainGraph,
    k: int,
    max_choices: int = DEFAULT_MAX_CHOICES,
    *,
    engine: str = "block",
) -> list:
    """Exact top-k most vulnerable node labels (ties broken by index).

    This is the ground-truth ordering used by the correctness tests for the
    five detection algorithms.
    """
    probabilities = exact_default_probabilities(
        graph, max_choices=max_choices, engine=engine
    )
    return top_k_labels(graph, probabilities, k)
