"""Exact default probabilities by possible-world enumeration.

The paper proves computing ``p(v)`` is #P-hard (Theorem 1), so exact values
are only feasible for tiny graphs.  This module provides the exact oracle
used as ground truth in unit tests and for validating the samplers:

    p(v) = sum over worlds W of  p(W) * I_W(v)

where ``I_W(v)`` indicates that ``v`` defaults in ``W``.
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import UncertainGraph
from repro.core.topk import top_k_labels
from repro.core.worlds import enumerate_worlds, propagate_defaults

__all__ = ["exact_default_probabilities", "exact_top_k"]


def exact_default_probabilities(
    graph: UncertainGraph, max_choices: int = 24
) -> np.ndarray:
    """Exact ``p(v)`` for every node by enumerating all possible worlds.

    Parameters
    ----------
    graph:
        A small uncertain graph (at most *max_choices* non-deterministic
        node/edge choices).
    max_choices:
        Enumeration safety cap, forwarded to
        :func:`repro.core.worlds.enumerate_worlds`.

    Returns
    -------
    numpy.ndarray
        ``float64`` array over internal node indices; entry ``i`` is the
        exact default probability of the node at index ``i``.
    """
    probabilities = np.zeros(graph.num_nodes, dtype=np.float64)
    for world, mass in enumerate_worlds(graph, max_choices=max_choices):
        if mass == 0.0:
            continue
        defaulted = propagate_defaults(graph, world)
        probabilities[defaulted] += mass
    # Accumulating many world masses can overshoot 1.0 by a few ulps,
    # which breaks downstream sqrt(p * (1 - p)) variance formulas.
    return np.clip(probabilities, 0.0, 1.0)


def exact_top_k(graph: UncertainGraph, k: int, max_choices: int = 24) -> list:
    """Exact top-k most vulnerable node labels (ties broken by index).

    This is the ground-truth ordering used by the correctness tests for the
    five detection algorithms.
    """
    probabilities = exact_default_probabilities(graph, max_choices=max_choices)
    return top_k_labels(graph, probabilities, k)
