"""Top-k selection helpers shared by all detectors.

Selection must be deterministic so that experiments are reproducible and
precision comparisons are well defined; ties on the score are broken by
internal node index (insertion order), matching how the paper's Algorithm 1
"returns k results with the largest estimated value" with a stable sort.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.errors import GraphError
from repro.core.graph import UncertainGraph

__all__ = [
    "top_k_indices",
    "top_k_labels",
    "kth_largest",
    "validate_k",
    "validate_finite_scores",
]


def validate_finite_scores(values: np.ndarray, what: str = "scores") -> None:
    """Reject NaN/inf score vectors before any selection runs on them.

    NaN ordering is *inconsistent* between the selection primitives:
    ``argsort`` on negated scores sorts NaN last (treated as worst) while
    ``partition`` treats NaN as largest (best), so a NaN bound vector
    would silently produce ``Tl``/``Tu`` thresholds that contradict the
    ranking.  All public selection entry points therefore refuse
    non-finite input outright.
    """
    if values.size and not np.isfinite(values).all():
        bad = int(np.flatnonzero(~np.isfinite(values))[0])
        raise GraphError(
            f"{what} must be finite; index {bad} is {values[bad]!r}"
        )


def validate_k(k: int, n: int) -> int:
    """Check that ``1 <= k <= n`` and return *k* as an ``int``."""
    k = int(k)
    if n <= 0:
        raise GraphError("graph has no nodes")
    if not 1 <= k <= n:
        raise GraphError(f"k must be in [1, {n}], got {k}")
    return k


def top_k_indices(scores: Sequence[float] | np.ndarray, k: int) -> np.ndarray:
    """Indices of the *k* largest scores, best first, ties by low index.

    Implemented as a stable sort on ``(-score, index)`` so equal scores
    keep insertion order — important for reproducibility when many nodes
    share an estimate (common with small sample sizes).
    """
    arr = np.asarray(scores, dtype=np.float64)
    validate_finite_scores(arr)
    k = validate_k(k, arr.size)
    order = np.argsort(-arr, kind="stable")
    return order[:k]


def top_k_labels(
    graph: UncertainGraph, scores: Sequence[float] | np.ndarray, k: int
) -> list:
    """Labels of the *k* highest-scoring nodes, best first."""
    arr = np.asarray(scores, dtype=np.float64)
    if arr.size != graph.num_nodes:
        raise GraphError(
            f"scores has length {arr.size}, expected {graph.num_nodes}"
        )
    return [graph.label(int(i)) for i in top_k_indices(arr, k)]


def kth_largest(values: Sequence[float] | np.ndarray, k: int) -> float:
    """The k-th largest value (1-based), e.g. the paper's ``Tl``/``Tu``.

    >>> kth_largest([0.9, 0.1, 0.5], 2)
    0.5
    """
    arr = np.asarray(values, dtype=np.float64)
    validate_finite_scores(arr)
    k = validate_k(k, arr.size)
    return float(np.partition(arr, arr.size - k)[arr.size - k])
