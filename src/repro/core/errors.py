"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "UnknownNodeError",
    "DuplicateEdgeError",
    "ProbabilityError",
    "SamplingError",
    "NotFittedError",
    "DatasetError",
    "ExperimentError",
    "BackpressureError",
    "FrontendError",
    "QueryError",
    "ReplicationError",
    "FencedError",
]


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class GraphError(ReproError):
    """Raised for structural problems with an :class:`UncertainGraph`."""


class UnknownNodeError(GraphError, KeyError):
    """Raised when a node label is not present in the graph."""

    def __init__(self, label: object) -> None:
        super().__init__(label)
        self.label = label

    def __str__(self) -> str:  # KeyError quotes its repr; give a message.
        return f"unknown node label: {self.label!r}"


class DuplicateEdgeError(GraphError):
    """Raised when inserting an edge that already exists."""


class ProbabilityError(ReproError, ValueError):
    """Raised when a probability value falls outside ``[0, 1]``."""


class SamplingError(ReproError):
    """Raised when a sampling routine is configured inconsistently."""


class NotFittedError(ReproError, RuntimeError):
    """Raised when a model is used before :meth:`fit` was called."""


class DatasetError(ReproError):
    """Raised when a dataset specification cannot be satisfied."""


class ExperimentError(ReproError):
    """Raised when an experiment configuration is invalid."""


class BackpressureError(ReproError):
    """Raised when an ingestion backlog hits its hard ``max_pending`` cap."""


class FrontendError(ReproError):
    """Raised for network front-end failures (protocol, auth, admission)."""


class QueryError(ReproError):
    """Raised when a world-query family is unknown or misconfigured."""


class ReplicationError(ReproError):
    """Raised when WAL shipping or replica catch-up cannot proceed."""


class FencedError(ReplicationError):
    """Raised when a deposed primary's write is rejected by epoch fencing.

    Carries the epoch the writer believed it held and the newer epoch
    that fenced it, so callers can log the hand-off and clients can be
    redirected to the current primary.
    """

    def __init__(self, held_epoch: int, current_epoch: int) -> None:
        super().__init__(
            f"writer fenced: holds epoch {held_epoch}, "
            f"cluster is at epoch {current_epoch}"
        )
        self.held_epoch = held_epoch
        self.current_epoch = current_epoch
