"""Shared multi-world contagion propagation engine.

Three different subsystems need the same primitive — "given which nodes
self-default and which edges survive, which nodes end up defaulting?" —
evaluated over *many* possible worlds at once:

* the batched reverse sampler's forward-labelling pass
  (:class:`repro.sampling.reverse.BatchedReverseSampler`),
* the bit-parallel exact oracle
  (:func:`repro.core.exact.exact_default_probabilities`), and
* the Monte-Carlo ground truth of the effectiveness experiments
  (:mod:`repro.experiments.ground_truth`).

This module is the single implementation all three share.  The central
idea is a **flat multi-world index space**: world ``w``, node ``v`` maps
to the key ``w * n + v``, so a whole block of worlds becomes one big
graph whose connected regions never cross world boundaries.  Contagion
over the block is then a single fixpoint loop over flat numpy arrays —
no per-world Python BFS, no ``deque``, no scalar casts.

Contract of the kernel (:func:`propagate_edge_list`)
----------------------------------------------------
The kernel receives a flat *defaulted* array plus the endpoints of every
*surviving* edge (flat keys) and marks, in place, every key reachable
from an already-marked key.  It is deliberately agnostic about what the
marks are: a boolean array with ``epoch=True`` (exact oracle, ground
truth) and an ``int64`` stamp array with an integer ``epoch`` (the
arena-style reusable buffers of the batched reverse sampler) run the
exact same code.  Each fixpoint iteration drops edges whose destination
is already marked and crosses edges whose source is marked, so the work
per iteration shrinks monotonically and the loop terminates after at
most ``longest contagion chain`` iterations.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import GraphError
from repro.core.graph import UncertainGraph

__all__ = [
    "propagate_edge_list",
    "propagate_defaults_block",
    "ragged_positions",
]


def ragged_positions(
    indptr: np.ndarray, nodes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Flat CSR slot positions of every adjacency segment of *nodes*.

    Given a CSR ``indptr`` and a vector of node indices, returns
    ``(positions, counts)`` where ``positions`` concatenates, segment by
    segment, the positions ``indptr[u] .. indptr[u + 1] - 1`` of each
    node ``u`` in *nodes* (repeats allowed), and ``counts`` holds each
    segment's length.  This is the vectorised replacement for the
    classic ``for u in frontier: for pos in range(indptr[u], ...)``
    double loop; both the batched reverse sampler and the connectivity
    helpers gather neighbours through it.
    """
    counts = indptr[nodes + 1] - indptr[nodes]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), counts
    starts = indptr[nodes]
    exclusive = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.cumsum(counts[:-1]))
    )
    positions = np.arange(total, dtype=np.int64) + np.repeat(
        starts - exclusive, counts
    )
    return positions, counts


def propagate_edge_list(
    defaulted: np.ndarray,
    edge_src: np.ndarray,
    edge_dst: np.ndarray,
    epoch=True,
) -> None:
    """Mark every key reachable from a marked key along the given edges.

    In-place fixpoint over a flat (multi-world) key space: wherever
    ``defaulted[edge_src[i]] == epoch``, the kernel sets
    ``defaulted[edge_dst[i]] = epoch``, transitively, until no edge can
    fire any more.

    Parameters
    ----------
    defaulted:
        Flat mark array.  Either boolean (pass ``epoch=True``) or an
        ``int64`` epoch-stamp buffer (pass the current epoch), as used
        by the arena-style reusable buffers of the batched samplers.
    edge_src, edge_dst:
        Flat keys of the surviving edges.  Within one call the arrays
        are filtered down monotonically; the caller's arrays are never
        modified.
    epoch:
        The value that means "marked" in *defaulted*.
    """
    while edge_src.size:
        pending = defaulted[edge_dst] != epoch
        if not pending.all():
            edge_src = edge_src[pending]
            edge_dst = edge_dst[pending]
        carrying = defaulted[edge_src] == epoch
        reached = edge_dst[carrying]
        if not reached.size:
            break
        defaulted[reached] = epoch


def propagate_defaults_block(
    graph: UncertainGraph,
    self_default: np.ndarray,
    edge_survives: np.ndarray,
) -> np.ndarray:
    """Forward contagion for a whole block of worlds at once.

    The vectorised counterpart of
    :func:`repro.core.worlds.propagate_defaults`: row ``w`` of the
    result is exactly what the scalar BFS computes for world ``w`` (the
    equivalence tests assert this bit for bit).

    Parameters
    ----------
    graph:
        The uncertain graph the worlds realise.
    self_default:
        Boolean array of shape ``(W, n)``; ``True`` where the node
        defaults by itself in that world.
    edge_survives:
        Boolean array of shape ``(W, m)``; ``True`` where contagion can
        cross the edge in that world.

    Returns
    -------
    numpy.ndarray
        Boolean array of shape ``(W, n)``: which nodes default in each
        world.  Always a fresh array; the inputs are not modified.
    """
    n = graph.num_nodes
    m = graph.num_edges
    self_default = np.asarray(self_default)
    edge_survives = np.asarray(edge_survives)
    if self_default.ndim != 2 or self_default.shape[1] != n:
        raise GraphError(
            f"self_default has shape {self_default.shape}, expected (W, {n})"
        )
    worlds = self_default.shape[0]
    if edge_survives.shape != (worlds, m):
        raise GraphError(
            "edge_survives has shape "
            f"{edge_survives.shape}, expected ({worlds}, {m})"
        )
    if self_default.dtype != np.bool_ or edge_survives.dtype != np.bool_:
        raise GraphError("world block arrays must be boolean")
    defaulted = np.ascontiguousarray(self_default).copy()
    if worlds and m and defaulted.any() and edge_survives.any():
        src, dst, _ = graph.edge_array
        world_index, edge_index = np.nonzero(edge_survives)
        base = world_index * np.int64(n)
        propagate_edge_list(
            defaulted.reshape(-1), base + src[edge_index], base + dst[edge_index]
        )
    return defaulted
