"""Core data structures: the uncertain graph and possible-world semantics."""

from repro.core.components import (
    guarantee_circles,
    reachable_from,
    strongly_connected_components,
    weakly_connected_components,
)
from repro.core.errors import (
    DatasetError,
    DuplicateEdgeError,
    ExperimentError,
    GraphError,
    NotFittedError,
    ProbabilityError,
    ReproError,
    SamplingError,
    UnknownNodeError,
)
from repro.core.eq1 import (
    apply_eq1,
    dag_default_probabilities,
    iterate_eq1,
    topological_order,
)
from repro.core.exact import exact_default_probabilities, exact_top_k
from repro.core.graph import CSRAdjacency, GraphStats, UncertainGraph, graph_from_mapping
from repro.core.propagation import (
    propagate_defaults_block,
    propagate_edge_list,
    ragged_positions,
)
from repro.core.topk import kth_largest, top_k_indices, top_k_labels, validate_k
from repro.core.worlds import (
    DEFAULT_BLOCK_WORLDS,
    DEFAULT_MAX_CHOICES,
    PossibleWorld,
    WorldBlock,
    enumerate_world_blocks,
    enumerate_worlds,
    propagate_defaults,
    world_probability,
)

__all__ = [
    "guarantee_circles",
    "reachable_from",
    "strongly_connected_components",
    "weakly_connected_components",
    "CSRAdjacency",
    "GraphStats",
    "UncertainGraph",
    "graph_from_mapping",
    "PossibleWorld",
    "WorldBlock",
    "enumerate_worlds",
    "enumerate_world_blocks",
    "propagate_defaults",
    "propagate_defaults_block",
    "propagate_edge_list",
    "ragged_positions",
    "world_probability",
    "DEFAULT_BLOCK_WORLDS",
    "DEFAULT_MAX_CHOICES",
    "exact_default_probabilities",
    "exact_top_k",
    "apply_eq1",
    "iterate_eq1",
    "dag_default_probabilities",
    "topological_order",
    "top_k_indices",
    "top_k_labels",
    "kth_largest",
    "validate_k",
    "ReproError",
    "GraphError",
    "UnknownNodeError",
    "DuplicateEdgeError",
    "ProbabilityError",
    "SamplingError",
    "NotFittedError",
    "DatasetError",
    "ExperimentError",
]
