"""Possible-world semantics for uncertain graphs.

A *possible world* of an uncertain graph fixes, for every node, whether it
defaults by itself, and for every edge, whether the contagion along it
survives.  A node **defaults in a world** when it self-defaults or is
reachable from a self-defaulting node through surviving edges (Section 2.1
and Figure 3 of the paper).

This module provides two enumeration engines over the ``2^(n+m)`` worlds:

* :func:`enumerate_worlds` — the scalar reference: one
  :class:`PossibleWorld` at a time, in plain binary-counting order.  It is
  the executable specification the bit-parallel engine is tested against.
* :func:`enumerate_world_blocks` — the bit-parallel production engine:
  worlds are materialised in blocks of ``W`` as ``(W, n)`` self-default
  and ``(W, m)`` edge-survival boolean matrices plus a ``(W,)`` mass
  vector, ready for :func:`repro.core.propagation.propagate_defaults_block`.
  Memory is bounded by the block size, never by ``2^choices``.

Block scheme and Gray-code masses
---------------------------------
Only the *free* choices (probability strictly between 0 and 1) are
enumerated; deterministic choices are pinned.  The free choices are
ordered nodes-then-edges and walked in **binary-reflected Gray-code
order**, so successive worlds — including across block boundaries —
differ in exactly one choice.  The last ``log2(W)`` choices (the "low"
choices) sweep all combinations inside each block; the remaining "high"
choices are constant per block and advance by one Gray flip between
blocks.

World masses are never recomputed as a fresh ``O(n + m)`` product per
world.  The high part of each mass is maintained incrementally: one Gray
flip patches a single choice's term and the sequential suffix product
after it (:class:`_ExactSuffixProduct`, amortised O(1) multiplies per
block).  The low part is a handful of vectorised column multiplies per
block.  Both are *sequential* products in the canonical choice order, so
every mass is **bit-identical** to what :func:`world_probability`
computes from scratch for the same realisation — the equivalence tests
assert exact equality, not approximate.

Scalar helpers (:class:`PossibleWorld`, :func:`propagate_defaults`,
:func:`world_probability`) are unchanged reference semantics used by the
tests and by per-world consumers such as the temporal dataset builder.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.errors import GraphError
from repro.core.graph import UncertainGraph

__all__ = [
    "PossibleWorld",
    "WorldBlock",
    "propagate_defaults",
    "world_probability",
    "enumerate_worlds",
    "enumerate_world_blocks",
    "DEFAULT_MAX_CHOICES",
    "DEFAULT_BLOCK_WORLDS",
]

#: Safety cap on enumerated binary choices.  The block engine streams
#: ``2^choices`` worlds through block-sized buffers, so the cap is a
#: run-time guard, not a memory one.
DEFAULT_MAX_CHOICES = 28

#: Worlds materialised per block by :func:`enumerate_world_blocks`.
DEFAULT_BLOCK_WORLDS = 4096


@dataclass(frozen=True)
class PossibleWorld:
    """One realisation of all random choices of an uncertain graph.

    Attributes
    ----------
    self_default:
        Boolean array over internal node indices; ``True`` where the node
        defaults because of its own factors.
    edge_survives:
        Boolean array over canonical edge ids; ``True`` where contagion can
        cross the edge.
    """

    self_default: np.ndarray
    edge_survives: np.ndarray

    def __post_init__(self) -> None:
        if self.self_default.dtype != np.bool_ or self.edge_survives.dtype != np.bool_:
            raise GraphError("possible world arrays must be boolean")


@dataclass(frozen=True)
class WorldBlock:
    """A block of possible worlds materialised as boolean matrices.

    Attributes
    ----------
    self_default:
        Boolean ``(W, n)`` matrix; row ``j`` is world ``j``'s self-default
        vector.
    edge_survives:
        Boolean ``(W, m)`` matrix; row ``j`` is world ``j``'s edge-survival
        vector.
    masses:
        ``float64`` ``(W,)`` vector of world probabilities, bit-identical
        to :func:`world_probability` of each row.
    indices:
        ``int64`` ``(W,)`` vector mapping each row to its position in the
        binary-counting order of :func:`enumerate_worlds` (the rows
        themselves are in Gray-code order).  Over a full enumeration the
        concatenated ``indices`` are a permutation of ``range(2^free)``.
    """

    self_default: np.ndarray
    edge_survives: np.ndarray
    masses: np.ndarray
    indices: np.ndarray

    @property
    def num_worlds(self) -> int:
        """Number of worlds in this block."""
        return int(self.masses.size)

    def world(self, row: int) -> PossibleWorld:
        """The explicit :class:`PossibleWorld` of one block row."""
        return PossibleWorld(
            self_default=self.self_default[row].copy(),
            edge_survives=self.edge_survives[row].copy(),
        )


def propagate_defaults(graph: UncertainGraph, world: PossibleWorld) -> np.ndarray:
    """Compute which nodes default in *world* by forward contagion BFS.

    Starting from all self-defaulting nodes, follow surviving out-edges;
    every reached node defaults.  Mirrors lines 8–19 of Algorithm 1, with
    the random draws replaced by the fixed world realisation.

    This is the scalar reference; blocks of worlds go through
    :func:`repro.core.propagation.propagate_defaults_block`, which the
    tests hold to exact agreement with this function.

    Returns
    -------
    numpy.ndarray
        Boolean array over internal node indices (the paper's ``hv``).
    """
    n = graph.num_nodes
    if world.self_default.shape != (n,):
        raise GraphError(
            f"self_default has shape {world.self_default.shape}, expected ({n},)"
        )
    if world.edge_survives.shape != (graph.num_edges,):
        raise GraphError(
            "edge_survives has shape "
            f"{world.edge_survives.shape}, expected ({graph.num_edges},)"
        )
    defaulted = world.self_default.copy()
    out = graph.out_csr()
    queue: deque[int] = deque(np.flatnonzero(defaulted).tolist())
    while queue:
        u = queue.popleft()
        start, stop = out.indptr[u], out.indptr[u + 1]
        for pos in range(start, stop):
            v = int(out.indices[pos])
            if defaulted[v]:
                continue
            if world.edge_survives[out.edge_ids[pos]]:
                defaulted[v] = True
                queue.append(v)
    return defaulted


def world_probability(graph: UncertainGraph, world: PossibleWorld) -> float:
    """Probability mass ``p(W)`` of an explicit world realisation.

    The node and edge choices are mutually independent, so the mass is the
    product of per-node self-default terms and per-edge survival terms.
    Both products are sequential left-to-right reductions; the Gray-code
    incremental masses of :func:`enumerate_world_blocks` reproduce them
    bit for bit.
    """
    ps = graph.self_risk_array
    _, _, pe = graph.edge_array
    node_terms = np.where(world.self_default, ps, 1.0 - ps)
    edge_terms = np.where(world.edge_survives, pe, 1.0 - pe)
    return float(np.prod(node_terms) * np.prod(edge_terms))


def _free_choices(
    graph: UncertainGraph,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split the graph's choices into free and pinned parts.

    Returns ``(ps, pe, free_nodes, free_edges, base_nodes, base_edges)``:
    the probability vectors, the indices of the non-deterministic node and
    edge choices, and the pinned realisation every world shares.
    """
    ps = graph.self_risk_array
    _, _, pe = graph.edge_array
    free_nodes = np.flatnonzero((ps > 0.0) & (ps < 1.0))
    free_edges = np.flatnonzero((pe > 0.0) & (pe < 1.0))
    return ps, pe, free_nodes, free_edges, ps >= 1.0, pe >= 1.0


def _check_choice_cap(free: int, max_choices: int) -> None:
    if free > max_choices:
        raise GraphError(
            f"graph has {free} free choices; enumeration capped at {max_choices}"
        )


def enumerate_worlds(
    graph: UncertainGraph, max_choices: int = DEFAULT_MAX_CHOICES
) -> Iterator[tuple[PossibleWorld, float]]:
    """Yield every possible world with its probability (scalar reference).

    Worlds are produced in binary-counting order over the free choices
    (nodes first, then edges; the last choice varies fastest).  Only
    worlds with non-zero probability are produced: choices whose
    probability is exactly 0 or 1 are pinned instead of enumerated, which
    keeps the loop feasible for graphs with deterministic components.

    This generator is the executable specification; the production
    engine is :func:`enumerate_world_blocks`, which the tests hold to
    exact (bit-level) agreement with this one.

    Parameters
    ----------
    graph:
        The uncertain graph; ``n + m`` *free* (non-deterministic) choices
        must not exceed *max_choices*.
    max_choices:
        Safety cap on the number of enumerated binary choices; the number
        of yielded worlds is ``2 ** free_choices``.

    Raises
    ------
    GraphError
        When the graph has more free choices than *max_choices*.
    """
    ps, pe, free_node_array, free_edge_array, base_nodes, base_edges = (
        _free_choices(graph)
    )
    free_nodes = free_node_array.tolist()
    free_edges = free_edge_array.tolist()
    free = len(free_nodes) + len(free_edges)
    _check_choice_cap(free, max_choices)
    for bits in itertools.product((False, True), repeat=free):
        self_default = base_nodes.copy()
        edge_survives = base_edges.copy()
        for flag, i in zip(bits[: len(free_nodes)], free_nodes):
            self_default[i] = flag
        for flag, e in zip(bits[len(free_nodes) :], free_edges):
            edge_survives[e] = flag
        world = PossibleWorld(self_default=self_default, edge_survives=edge_survives)
        yield world, world_probability(graph, world)


class _ExactSuffixProduct:
    """Sequential product over per-choice terms with exact one-flip patches.

    Maintains ``cum[i] = t[0] * t[1] * ... * t[i]`` (left-to-right) for
    the current term of every choice.  Flipping choice ``i`` replaces its
    term and recomputes ``cum[i:]`` — because the recomputation *is* the
    left-to-right product, the patched value is bit-identical to a
    from-scratch product at every step, while Gray-code enumeration makes
    the amortised patch cost O(1) multiplies per flip (fast-flipping
    choices sit at the end of the order).
    """

    __slots__ = ("_false_terms", "_true_terms", "_terms", "_cum")

    def __init__(self, probabilities: np.ndarray) -> None:
        p = np.asarray(probabilities, dtype=np.float64)
        self._true_terms = p
        self._false_terms = 1.0 - p
        self._terms = self._false_terms.copy()  # Gray code starts all-False
        self._cum = np.empty(p.size, dtype=np.float64)
        self._recompute(0)

    def _recompute(self, start: int) -> None:
        running = self._cum[start - 1] if start else np.float64(1.0)
        terms = self._terms
        cum = self._cum
        for i in range(start, terms.size):
            running = running * terms[i]
            cum[i] = running

    def flip(self, position: int, bit: bool) -> None:
        """Set choice *position* to *bit* and repair the suffix products."""
        source = self._true_terms if bit else self._false_terms
        self._terms[position] = source[position]
        self._recompute(position)

    @property
    def value(self) -> float:
        """The current full product (1.0 when there are no choices)."""
        return float(self._cum[-1]) if self._cum.size else 1.0


def enumerate_world_blocks(
    graph: UncertainGraph,
    max_choices: int = DEFAULT_MAX_CHOICES,
    block_worlds: int = DEFAULT_BLOCK_WORLDS,
) -> Iterator[WorldBlock]:
    """Yield all possible worlds in Gray-code order, a block at a time.

    Each yielded :class:`WorldBlock` owns fresh arrays (callers may keep
    or mutate them).  Memory use is bounded by one block —
    ``O(block_worlds * (n + m))`` booleans — regardless of how many
    blocks the enumeration streams.

    Parameters
    ----------
    graph:
        The uncertain graph; at most *max_choices* free choices.
    max_choices:
        Safety cap on the number of enumerated binary choices.
    block_worlds:
        Upper bound on worlds per block; rounded down to a power of two
        and capped at the total number of worlds.

    Raises
    ------
    GraphError
        When the graph has more free choices than *max_choices*, or
        *block_worlds* is not positive.
    """
    if block_worlds < 1:
        raise GraphError(f"block_worlds must be positive, got {block_worlds}")
    ps, pe, free_nodes, free_edges, base_nodes, base_edges = _free_choices(graph)
    n_free = int(free_nodes.size)
    f = n_free + int(free_edges.size)
    _check_choice_cap(f, max_choices)

    # Free choices are ordered nodes-then-edges; choice c maps to Gray bit
    # f - 1 - c, so the *last* choices are the fastest-flipping bits.  The
    # low b bits sweep inside a block, the high h = f - b bits are fixed
    # per block and advance by one Gray flip between blocks.
    b = min(int(block_worlds).bit_length() - 1, f)
    width = 1 << b
    blocks = 1 << (f - b)
    h = f - b
    free_probs = np.concatenate((ps[free_nodes], pe[free_edges]))
    n_high_nodes = min(h, n_free)

    # --- low-choice machinery, fixed for the whole enumeration ---------
    row = np.arange(width, dtype=np.int64)
    gray_low = row ^ (row >> 1)
    gray_low_rev = gray_low[::-1].copy()

    def _low_columns(direction_forward: bool):
        node_cols, edge_cols = [], []
        source = gray_low if direction_forward else gray_low_rev
        for c in range(h, f):
            bits = ((source >> (f - 1 - c)) & 1) != 0
            p = float(free_probs[c])
            terms = np.where(bits, p, 1.0 - p)
            if c < n_free:
                node_cols.append((int(free_nodes[c]), bits, terms))
            else:
                edge_cols.append((int(free_edges[c - n_free]), bits, terms))
        return node_cols, edge_cols

    low_cols = {True: _low_columns(True), False: _low_columns(False)}

    def _template(direction_forward: bool):
        self_default = np.repeat(base_nodes[None, :], width, axis=0)
        edge_survives = np.repeat(base_edges[None, :], width, axis=0)
        node_cols, edge_cols = low_cols[direction_forward]
        for index, bits, _ in node_cols:
            self_default[:, index] = bits
        for index, bits, _ in edge_cols:
            edge_survives[:, index] = bits
        return self_default, edge_survives

    templates = {True: _template(True), False: _template(False)}

    # --- high-choice machinery: exact incremental Gray-code masses -----
    node_cascade = _ExactSuffixProduct(free_probs[:n_high_nodes])
    edge_cascade = _ExactSuffixProduct(free_probs[n_high_nodes:h])
    high_nodes = [(c, int(free_nodes[c])) for c in range(n_high_nodes)]
    high_edges = [(c, int(free_edges[c - n_free])) for c in range(n_high_nodes, h)]
    high_bits = np.zeros(h, dtype=bool)

    for k in range(blocks):
        gray_high = k ^ (k >> 1)
        if k:
            # Between blocks exactly one high bit flips: the bit at the
            # position of k's lowest set bit.  Patch that choice's term.
            flip_bit = (k & -k).bit_length() - 1
            choice = h - 1 - flip_bit
            bit = bool((gray_high >> flip_bit) & 1)
            high_bits[choice] = bit
            if choice < n_high_nodes:
                node_cascade.flip(choice, bit)
            else:
                edge_cascade.flip(choice - n_high_nodes, bit)
        forward = (k & 1) == 0
        template_sd, template_es = templates[forward]
        self_default = template_sd.copy()
        edge_survives = template_es.copy()
        for choice, index in high_nodes:
            if high_bits[choice]:
                self_default[:, index] = True
        for choice, index in high_edges:
            if high_bits[choice]:
                edge_survives[:, index] = True
        node_cols, edge_cols = low_cols[forward]
        node_part = np.full(width, node_cascade.value, dtype=np.float64)
        for _, _, terms in node_cols:
            node_part *= terms
        edge_part = np.full(width, edge_cascade.value, dtype=np.float64)
        for _, _, terms in edge_cols:
            edge_part *= terms
        indices = (gray_high << b) | (gray_low if forward else gray_low_rev)
        yield WorldBlock(
            self_default=self_default,
            edge_survives=edge_survives,
            masses=node_part * edge_part,
            indices=indices,
        )
