"""Possible-world semantics for uncertain graphs.

A *possible world* of an uncertain graph fixes, for every node, whether it
defaults by itself, and for every edge, whether the contagion along it
survives.  A node **defaults in a world** when it self-defaults or is
reachable from a self-defaulting node through surviving edges (Section 2.1
and Figure 3 of the paper).

This module provides:

* :class:`PossibleWorld` — an explicit world realisation.
* :func:`propagate_defaults` — the forward contagion BFS that turns a world
  into the set of defaulting nodes.
* :func:`world_probability` — the probability mass of an explicit world.
* :func:`enumerate_worlds` — generator over all ``2^(n+m)`` worlds for tiny
  graphs (used by the exact oracle and by the test suite).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.errors import GraphError
from repro.core.graph import UncertainGraph

__all__ = [
    "PossibleWorld",
    "propagate_defaults",
    "world_probability",
    "enumerate_worlds",
]


@dataclass(frozen=True)
class PossibleWorld:
    """One realisation of all random choices of an uncertain graph.

    Attributes
    ----------
    self_default:
        Boolean array over internal node indices; ``True`` where the node
        defaults because of its own factors.
    edge_survives:
        Boolean array over canonical edge ids; ``True`` where contagion can
        cross the edge.
    """

    self_default: np.ndarray
    edge_survives: np.ndarray

    def __post_init__(self) -> None:
        if self.self_default.dtype != np.bool_ or self.edge_survives.dtype != np.bool_:
            raise GraphError("possible world arrays must be boolean")


def propagate_defaults(graph: UncertainGraph, world: PossibleWorld) -> np.ndarray:
    """Compute which nodes default in *world* by forward contagion BFS.

    Starting from all self-defaulting nodes, follow surviving out-edges;
    every reached node defaults.  Mirrors lines 8–19 of Algorithm 1, with
    the random draws replaced by the fixed world realisation.

    Returns
    -------
    numpy.ndarray
        Boolean array over internal node indices (the paper's ``hv``).
    """
    n = graph.num_nodes
    if world.self_default.shape != (n,):
        raise GraphError(
            f"self_default has shape {world.self_default.shape}, expected ({n},)"
        )
    if world.edge_survives.shape != (graph.num_edges,):
        raise GraphError(
            "edge_survives has shape "
            f"{world.edge_survives.shape}, expected ({graph.num_edges},)"
        )
    defaulted = world.self_default.copy()
    out = graph.out_csr()
    queue: deque[int] = deque(np.flatnonzero(defaulted).tolist())
    while queue:
        u = queue.popleft()
        start, stop = out.indptr[u], out.indptr[u + 1]
        for pos in range(start, stop):
            v = int(out.indices[pos])
            if defaulted[v]:
                continue
            if world.edge_survives[out.edge_ids[pos]]:
                defaulted[v] = True
                queue.append(v)
    return defaulted


def world_probability(graph: UncertainGraph, world: PossibleWorld) -> float:
    """Probability mass ``p(W)`` of an explicit world realisation.

    The node and edge choices are mutually independent, so the mass is the
    product of per-node self-default terms and per-edge survival terms.
    """
    ps = graph.self_risk_array
    _, _, pe = graph.edge_array
    node_terms = np.where(world.self_default, ps, 1.0 - ps)
    edge_terms = np.where(world.edge_survives, pe, 1.0 - pe)
    return float(np.prod(node_terms) * np.prod(edge_terms))


def enumerate_worlds(
    graph: UncertainGraph, max_choices: int = 24
) -> Iterator[tuple[PossibleWorld, float]]:
    """Yield every possible world with its probability.

    Only worlds with non-zero probability are produced: choices whose
    probability is exactly 0 or 1 are pinned instead of enumerated, which
    keeps the loop feasible for graphs with deterministic components.

    Parameters
    ----------
    graph:
        The uncertain graph; ``n + m`` *free* (non-deterministic) choices
        must not exceed *max_choices*.
    max_choices:
        Safety cap on the number of enumerated binary choices; the number
        of yielded worlds is ``2 ** free_choices``.

    Raises
    ------
    GraphError
        When the graph has more free choices than *max_choices*.
    """
    ps = graph.self_risk_array
    _, _, pe = graph.edge_array
    free_nodes = [i for i, p in enumerate(ps) if 0.0 < p < 1.0]
    free_edges = [e for e, p in enumerate(pe) if 0.0 < p < 1.0]
    free = len(free_nodes) + len(free_edges)
    if free > max_choices:
        raise GraphError(
            f"graph has {free} free choices; enumeration capped at {max_choices}"
        )
    base_nodes = ps >= 1.0
    base_edges = pe >= 1.0
    for bits in itertools.product((False, True), repeat=free):
        self_default = base_nodes.copy()
        edge_survives = base_edges.copy()
        for flag, i in zip(bits[: len(free_nodes)], free_nodes):
            self_default[i] = flag
        for flag, e in zip(bits[len(free_nodes) :], free_edges):
            edge_survives[e] = flag
        world = PossibleWorld(self_default=self_default, edge_survives=edge_survives)
        yield world, world_probability(graph, world)
