"""Directed uncertain graph container.

This module implements :class:`UncertainGraph`, the data structure every
algorithm in the library operates on.  It models the graph of the paper's
Section 2.1: a directed graph where each node ``v`` carries a *self-risk
probability* ``ps(v)`` and each edge ``(u, v)`` carries a *diffusion
probability* ``p(v|u)``.

Design notes
------------
* Nodes are identified by arbitrary hashable *labels* at the API surface
  (enterprise ids, strings, ints).  Internally every node gets a dense
  integer *index* so the hot sampling loops can run on numpy arrays.
* Node and edge attributes (self-risks, endpoints, diffusion
  probabilities) live in amortised-growable **numpy buffers**
  (:class:`_GrowableArray`), not Python lists: incremental ``add_node`` /
  ``add_edge`` stay O(1) amortised, while the bulk paths—
  :meth:`UncertainGraph.from_arrays`, :meth:`UncertainGraph.reverse`,
  :meth:`UncertainGraph.subgraph`, :meth:`UncertainGraph.copy` — go
  through one vectorised constructor that validates whole probability
  vectors with numpy and **adopts** the caller's arrays where safe.  No
  per-edge Python work happens on any bulk path.
* The label→index and ``(src, dst)``→edge-id hash maps are built
  **lazily**: a graph assembled from arrays and consumed by the numeric
  kernels never pays for a Python dict at all; the maps materialise on
  the first label or edge lookup.
* Adjacency is stored twice in CSR (compressed sparse row) form — once
  for out-neighbours (forward propagation, Algorithm 1) and once for
  in-neighbours (Equation 1 and the reverse sampling of Algorithm 5).
  The CSR views are built lazily from the edge arrays.  Topology
  mutations invalidate them, but **probability-only updates patch the
  cached CSR arrays in place** — both views address the patch through
  the shared canonical edge ids, so ``set_edge_probability`` is O(1)
  after the inverse permutation exists and never triggers a rebuild.
* All probabilities are validated on insertion; values outside ``[0, 1]``
  raise :class:`~repro.core.errors.ProbabilityError`.  Bulk setters and
  constructors validate the entire vector *before* touching any state,
  so a failed call leaves the graph unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.core.errors import (
    DuplicateEdgeError,
    GraphError,
    ProbabilityError,
    UnknownNodeError,
)

__all__ = ["UncertainGraph", "CSRAdjacency", "GraphStats"]

NodeLabel = Hashable


def _check_probability(value: float, what: str) -> float:
    """Validate that *value* is a probability and return it as a float."""
    p = float(value)
    if not 0.0 <= p <= 1.0:
        raise ProbabilityError(f"{what} must be in [0, 1], got {value!r}")
    if np.isnan(p):
        raise ProbabilityError(f"{what} must not be NaN")
    return p


def _check_probability_vector(array: np.ndarray, what: str) -> None:
    """Vectorised range/NaN validation of a whole probability array."""
    if array.size and (
        np.any(np.isnan(array)) or np.any((array < 0.0) | (array > 1.0))
    ):
        raise ProbabilityError(f"{what} must all lie in [0, 1]")


class _GrowableArray:
    """Amortised-growable numpy buffer backing one attribute column.

    Supports O(1) amortised :meth:`append` for the incremental mutation
    API while exposing the live prefix as a real ndarray (:attr:`array`)
    for the vectorised kernels — the best of a Python list and a numpy
    array without converting between them on every access.
    """

    __slots__ = ("_data", "_size")

    def __init__(self, dtype, values: np.ndarray | None = None) -> None:
        if values is None:
            self._data = np.empty(8, dtype=dtype)
            self._size = 0
        else:
            self._data = np.ascontiguousarray(values, dtype=dtype)
            self._size = int(self._data.size)

    @property
    def array(self) -> np.ndarray:
        """Writable view of the live prefix (no copy)."""
        return self._data[: self._size]

    def append(self, value) -> None:
        if self._size == self._data.size:
            grown = np.empty(max(8, self._data.size * 2), dtype=self._data.dtype)
            grown[: self._size] = self._data[: self._size]
            self._data = grown
        self._data[self._size] = value
        self._size += 1

    def replace(self, values: np.ndarray) -> None:
        """Swap in a whole new column of the same length."""
        self._data = np.ascontiguousarray(values, dtype=self._data.dtype)
        self._size = int(self._data.size)

    def __len__(self) -> int:
        return self._size

    def __getitem__(self, index):
        return self.array[index]

    def __setitem__(self, index, value) -> None:
        self.array[index] = value

    def __iter__(self):
        return iter(self.array)


class _CowColumn(_GrowableArray):
    """A column whose buffer is shared between graphs until first write.

    :meth:`UncertainGraph.share_view` hands the same underlying ndarray
    to several graphs; every holder wraps it in one of these.  Reads go
    straight to the shared buffer; the first mutation — an in-place
    element write or an append — forks a private copy first, so no
    holder can ever observe another holder's writes.  ``replace`` swaps
    in a whole new buffer and therefore never needs a fork.

    Forking is not thread-safe; a shared graph must be mutated from one
    thread at a time (the serving layer pins each tenant to one worker).
    """

    __slots__ = ("_shared",)

    def __init__(self, base: np.ndarray) -> None:
        self._data = base
        self._size = int(base.size)
        self._shared = True

    def _fork(self) -> None:
        if self._shared:
            self._data = self._data[: self._size].copy()
            self._shared = False

    @property
    def is_shared(self) -> bool:
        """Whether the buffer is still the shared (never-written) one."""
        return self._shared

    def append(self, value) -> None:
        self._fork()
        super().append(value)

    def replace(self, values: np.ndarray) -> None:
        array = np.ascontiguousarray(values, dtype=self._data.dtype)
        if self._shared and array is self._data:
            array = array.copy()
        self._data = array
        self._size = int(array.size)
        self._shared = False

    def __setitem__(self, index, value) -> None:
        self._fork()
        super().__setitem__(index, value)


@dataclass(frozen=True)
class CSRAdjacency:
    """A compressed-sparse-row view of one direction of adjacency.

    Attributes
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; neighbours of node ``i`` live
        in ``indices[indptr[i]:indptr[i + 1]]``.
    indices:
        ``int64`` array of neighbour indices, one entry per edge.
    probs:
        ``float64`` array aligned with ``indices`` holding the diffusion
        probability of each edge.  Probability-only graph updates are
        patched into this array in place (the view object survives).
    edge_ids:
        ``int64`` array aligned with ``indices`` giving each entry's
        position in the graph's canonical edge ordering.  Both the forward
        and the reverse CSR views refer to the *same* edge ids, which lets
        samplers share one random draw per edge between directions.
    """

    indptr: np.ndarray
    indices: np.ndarray
    probs: np.ndarray
    edge_ids: np.ndarray

    def neighbors(self, index: int) -> np.ndarray:
        """Neighbour indices of the node at internal *index*."""
        return self.indices[self.indptr[index] : self.indptr[index + 1]]

    def edge_probs(self, index: int) -> np.ndarray:
        """Diffusion probabilities aligned with :meth:`neighbors`."""
        return self.probs[self.indptr[index] : self.indptr[index + 1]]

    def edges_of(self, index: int) -> np.ndarray:
        """Canonical edge ids aligned with :meth:`neighbors`."""
        return self.edge_ids[self.indptr[index] : self.indptr[index + 1]]

    def degree(self, index: int) -> int:
        """Number of neighbours of the node at internal *index*."""
        return int(self.indptr[index + 1] - self.indptr[index])

    @property
    def degrees(self) -> np.ndarray:
        """Vector of per-node degrees in this direction."""
        return np.diff(self.indptr)


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a graph (mirrors the paper's Table 2)."""

    num_nodes: int
    num_edges: int
    avg_degree: float
    max_degree: int
    mean_self_risk: float
    mean_diffusion: float

    def as_row(self) -> dict[str, float | int]:
        """Return the statistics as a plain dict (for table printing)."""
        return {
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "avg_deg": round(self.avg_degree, 2),
            "max_deg": self.max_degree,
            "mean_ps": round(self.mean_self_risk, 4),
            "mean_pe": round(self.mean_diffusion, 4),
        }


class UncertainGraph:
    """A directed graph with node self-risk and edge diffusion probabilities.

    Parameters
    ----------
    nodes:
        Optional iterable of ``(label, self_risk)`` pairs to insert.
    edges:
        Optional iterable of ``(src, dst, diffusion_probability)`` triples;
        endpoint labels must already be present via *nodes* (or be inserted
        first through :meth:`add_node`).

    Examples
    --------
    >>> g = UncertainGraph()
    >>> g.add_node("A", self_risk=0.2)
    >>> g.add_node("B", self_risk=0.1)
    >>> g.add_edge("A", "B", probability=0.3)
    >>> g.num_nodes, g.num_edges
    (2, 1)
    """

    __slots__ = (
        "_index_of",
        "_labels",
        "_self_risk",
        "_edge_src",
        "_edge_dst",
        "_edge_prob",
        "_edge_index",
        "_out_csr",
        "_in_csr",
        "_out_inverse",
        "_in_inverse",
        "_shared_maps",
        "__weakref__",
    )

    def __init__(
        self,
        nodes: Iterable[tuple[NodeLabel, float]] | None = None,
        edges: Iterable[tuple[NodeLabel, NodeLabel, float]] | None = None,
    ) -> None:
        self._index_of: dict[NodeLabel, int] | None = {}
        self._labels: list[NodeLabel] = []
        self._self_risk = _GrowableArray(np.float64)
        self._edge_src = _GrowableArray(np.int64)
        self._edge_dst = _GrowableArray(np.int64)
        self._edge_prob = _GrowableArray(np.float64)
        self._edge_index: dict[tuple[int, int], int] | None = {}
        self._out_csr: CSRAdjacency | None = None
        self._in_csr: CSRAdjacency | None = None
        self._out_inverse: np.ndarray | None = None
        self._in_inverse: np.ndarray | None = None
        self._shared_maps = False
        if nodes is not None:
            for label, risk in nodes:
                self.add_node(label, risk)
        if edges is not None:
            for src, dst, prob in edges:
                self.add_edge(src, dst, prob)

    # ------------------------------------------------------------------
    # Lazy lookup maps
    # ------------------------------------------------------------------
    def _node_lookup(self) -> dict[NodeLabel, int]:
        """Label → index map, materialised on first use after bulk build."""
        if self._index_of is None:
            self._index_of = {
                label: i for i, label in enumerate(self._labels)
            }
        return self._index_of

    def _edge_lookup(self) -> dict[tuple[int, int], int]:
        """``(src, dst)`` → edge-id map, materialised on first use."""
        if self._edge_index is None:
            self._edge_index = {
                (int(s), int(d)): eid
                for eid, (s, d) in enumerate(
                    zip(self._edge_src.array, self._edge_dst.array)
                )
            }
        return self._edge_index

    def _fork_shared_maps(self) -> None:
        """Privatise label/edge maps shared with sibling COW views.

        Structural mutations append to the label list and lookup dicts;
        when those objects are shared with :meth:`share_view` siblings,
        fork them first so a tenant's ``add_node``/``add_edge`` stays
        invisible to every other holder.
        """
        if self._shared_maps:
            self._labels = list(self._labels)
            if self._index_of is not None:
                self._index_of = dict(self._index_of)
            if self._edge_index is not None:
                self._edge_index = dict(self._edge_index)
            self._shared_maps = False

    # ------------------------------------------------------------------
    # Construction and mutation
    # ------------------------------------------------------------------
    def add_node(self, label: NodeLabel, self_risk: float = 0.0) -> int:
        """Insert a node and return its internal index.

        Raises
        ------
        GraphError
            If *label* is already present.
        ProbabilityError
            If *self_risk* is outside ``[0, 1]``.
        """
        if label in self._node_lookup():
            raise GraphError(f"node {label!r} already exists")
        risk = _check_probability(self_risk, f"self_risk of {label!r}")
        self._fork_shared_maps()
        lookup = self._node_lookup()
        index = len(self._labels)
        lookup[label] = index
        self._labels.append(label)
        self._self_risk.append(risk)
        self._invalidate()
        return index

    def add_edge(self, src: NodeLabel, dst: NodeLabel, probability: float) -> int:
        """Insert the directed edge ``src -> dst`` and return its edge id.

        The edge means: if *src* defaults, *dst* defaults with the given
        *probability* (the paper's ``p(dst|src)``).

        Raises
        ------
        UnknownNodeError
            If either endpoint has not been added.
        DuplicateEdgeError
            If the edge already exists (uncertain graphs here are simple).
        GraphError
            If the edge is a self-loop.
        """
        s = self.index(src)
        d = self.index(dst)
        if s == d:
            raise GraphError(f"self-loop on {src!r} is not allowed")
        if (s, d) in self._edge_lookup():
            raise DuplicateEdgeError(f"edge {src!r} -> {dst!r} already exists")
        prob = _check_probability(probability, f"p({dst!r}|{src!r})")
        self._fork_shared_maps()
        lookup = self._edge_lookup()
        edge_id = len(self._edge_src)
        self._edge_src.append(s)
        self._edge_dst.append(d)
        self._edge_prob.append(prob)
        lookup[(s, d)] = edge_id
        self._invalidate()
        return edge_id

    def set_self_risk(self, label: NodeLabel, self_risk: float) -> None:
        """Replace the self-risk probability of an existing node."""
        index = self.index(label)
        self._self_risk[index] = _check_probability(
            self_risk, f"self_risk of {label!r}"
        )

    def set_edge_probability(
        self, src: NodeLabel, dst: NodeLabel, probability: float
    ) -> None:
        """Replace the diffusion probability of an existing edge.

        A probability patch does **not** invalidate the cached CSR views:
        the new value is written through the inverse edge-id permutation
        into both views' ``probs`` arrays in place, so long-lived CSR
        holders observe the update and nothing is rebuilt.
        """
        edge_id = self.edge_id(src, dst)
        prob = _check_probability(probability, f"p({dst!r}|{src!r})")
        self._edge_prob[edge_id] = prob
        if self._out_csr is not None:
            self._out_csr.probs[self._out_inverse[edge_id]] = prob
        if self._in_csr is not None:
            self._in_csr.probs[self._in_inverse[edge_id]] = prob

    def set_all_self_risks(self, values: Sequence[float] | np.ndarray) -> None:
        """Bulk-replace every node's self-risk (index-aligned array).

        Validates the whole vector first so a failed call leaves the graph
        unchanged.
        """
        array = np.asarray(values, dtype=np.float64)
        if array.shape != (self.num_nodes,):
            raise GraphError(
                f"need {self.num_nodes} self-risks, got shape {array.shape}"
            )
        _check_probability_vector(array, "self-risks")
        self._self_risk.replace(array.copy())

    def set_all_edge_probabilities(
        self, values: Sequence[float] | np.ndarray
    ) -> None:
        """Bulk-replace every edge's diffusion probability (edge-id order).

        Validates the whole vector first so a failed call leaves the graph
        unchanged.  Like :meth:`set_edge_probability`, cached CSR views are
        patched in place (one vectorised gather per view), never rebuilt.
        """
        array = np.asarray(values, dtype=np.float64)
        if array.shape != (self.num_edges,):
            raise GraphError(
                f"need {self.num_edges} probabilities, got shape {array.shape}"
            )
        _check_probability_vector(array, "edge probabilities")
        self._edge_prob.replace(array.copy())
        if self._out_csr is not None:
            self._out_csr.probs[:] = array[self._out_csr.edge_ids]
        if self._in_csr is not None:
            self._in_csr.probs[:] = array[self._in_csr.edge_ids]

    def _invalidate(self) -> None:
        self._out_csr = None
        self._in_csr = None
        self._out_inverse = None
        self._in_inverse = None

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes, the paper's ``n``."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of directed edges, the paper's ``m``."""
        return len(self._edge_src)

    def __len__(self) -> int:
        return self.num_nodes

    def __contains__(self, label: NodeLabel) -> bool:
        return label in self._node_lookup()

    def index(self, label: NodeLabel) -> int:
        """Internal index of *label*; raises :class:`UnknownNodeError`."""
        try:
            return self._node_lookup()[label]
        except KeyError:
            raise UnknownNodeError(label) from None

    def label(self, index: int) -> NodeLabel:
        """Label of the node at internal *index*."""
        if not 0 <= index < len(self._labels):
            raise UnknownNodeError(index)
        return self._labels[index]

    def labels(self) -> list[NodeLabel]:
        """All node labels in internal-index order (a copy)."""
        return list(self._labels)

    def nodes(self) -> Iterator[NodeLabel]:
        """Iterate over node labels in insertion order."""
        return iter(self._labels)

    def edges(self) -> Iterator[tuple[NodeLabel, NodeLabel, float]]:
        """Iterate over ``(src_label, dst_label, probability)`` triples."""
        labels = self._labels
        src = self._edge_src.array
        dst = self._edge_dst.array
        prob = self._edge_prob.array
        for eid in range(self.num_edges):
            yield (labels[src[eid]], labels[dst[eid]], float(prob[eid]))

    def has_edge(self, src: NodeLabel, dst: NodeLabel) -> bool:
        """Whether the directed edge ``src -> dst`` exists."""
        try:
            return (self.index(src), self.index(dst)) in self._edge_lookup()
        except UnknownNodeError:
            return False

    def self_risk(self, label: NodeLabel) -> float:
        """Self-risk probability ``ps(label)``."""
        return float(self._self_risk[self.index(label)])

    def edge_id(self, src: NodeLabel, dst: NodeLabel) -> int:
        """Canonical edge id of ``src -> dst`` (position in edge-id order).

        The id indexes the arrays of :attr:`edge_array` and the
        ``edge_ids`` column of both CSR views; probability-only updates
        keep ids stable (only topology mutations renumber).
        """
        s = self.index(src)
        d = self.index(dst)
        edge_id = self._edge_lookup().get((s, d))
        if edge_id is None:
            raise UnknownNodeError((src, dst))
        return edge_id

    def edge_probability(self, src: NodeLabel, dst: NodeLabel) -> float:
        """Diffusion probability ``p(dst|src)``."""
        return float(self._edge_prob[self.edge_id(src, dst)])

    def in_neighbors(self, label: NodeLabel) -> list[NodeLabel]:
        """Labels of in-neighbours — the paper's ``N(v)``."""
        csr = self.in_csr()
        return [self._labels[i] for i in csr.neighbors(self.index(label))]

    def out_neighbors(self, label: NodeLabel) -> list[NodeLabel]:
        """Labels of out-neighbours (nodes this node can infect)."""
        csr = self.out_csr()
        return [self._labels[i] for i in csr.neighbors(self.index(label))]

    def in_degree(self, label: NodeLabel) -> int:
        """Number of in-neighbours of *label*."""
        return self.in_csr().degree(self.index(label))

    def out_degree(self, label: NodeLabel) -> int:
        """Number of out-neighbours of *label*."""
        return self.out_csr().degree(self.index(label))

    # ------------------------------------------------------------------
    # Array views (used by the numeric kernels)
    # ------------------------------------------------------------------
    @property
    def self_risk_array(self) -> np.ndarray:
        """``float64`` array of self-risk probabilities, index-aligned."""
        return self._self_risk.array.copy()

    @property
    def edge_array(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Canonical edge arrays ``(src, dst, prob)`` in edge-id order."""
        return (
            self._edge_src.array.copy(),
            self._edge_dst.array.copy(),
            self._edge_prob.array.copy(),
        )

    def _build_csr(self, direction: str) -> CSRAdjacency:
        n = self.num_nodes
        src = self._edge_src.array
        dst = self._edge_dst.array
        prob = self._edge_prob.array
        keys, values = (src, dst) if direction == "out" else (dst, src)
        order = np.argsort(keys, kind="stable")
        counts = np.bincount(keys, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        inverse = np.empty(order.size, dtype=np.int64)
        inverse[order] = np.arange(order.size, dtype=np.int64)
        if direction == "out":
            self._out_inverse = inverse
        else:
            self._in_inverse = inverse
        return CSRAdjacency(
            indptr=indptr,
            indices=values[order],
            probs=prob[order],
            edge_ids=np.asarray(order, dtype=np.int64),
        )

    def out_csr(self) -> CSRAdjacency:
        """CSR view of out-adjacency (lazily built, cached)."""
        if self._out_csr is None:
            self._out_csr = self._build_csr("out")
        return self._out_csr

    def in_csr(self) -> CSRAdjacency:
        """CSR view of in-adjacency (lazily built, cached)."""
        if self._in_csr is None:
            self._in_csr = self._build_csr("in")
        return self._in_csr

    # ------------------------------------------------------------------
    # Bulk construction
    # ------------------------------------------------------------------
    @classmethod
    def _from_validated_arrays(
        cls,
        labels: list[NodeLabel],
        self_risks: np.ndarray,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        edge_probs: np.ndarray,
    ) -> "UncertainGraph":
        """Adopt pre-validated arrays without copying (internal fast path).

        Callers guarantee: labels unique, probabilities in range,
        endpoints in range, no self-loops, no duplicate edges, and that
        the arrays are private to the new graph.
        """
        graph = cls.__new__(cls)
        graph._index_of = None
        graph._labels = labels
        graph._self_risk = _GrowableArray(np.float64, self_risks)
        graph._edge_src = _GrowableArray(np.int64, edge_src)
        graph._edge_dst = _GrowableArray(np.int64, edge_dst)
        graph._edge_prob = _GrowableArray(np.float64, edge_probs)
        graph._edge_index = None
        graph._out_csr = None
        graph._in_csr = None
        graph._out_inverse = None
        graph._in_inverse = None
        graph._shared_maps = False
        return graph

    @classmethod
    def from_arrays(
        cls,
        self_risks: Sequence[float] | np.ndarray,
        edge_src: Sequence[int] | np.ndarray,
        edge_dst: Sequence[int] | np.ndarray,
        edge_probs: Sequence[float] | np.ndarray,
        labels: Sequence[NodeLabel] | None = None,
    ) -> "UncertainGraph":
        """Bulk constructor from parallel arrays (fast path for generators).

        Node ``i`` gets label ``labels[i]`` (default: the integer ``i``).
        All validation is vectorised and runs **before** the graph is
        assembled, so a rejected input raises without side effects; the
        graph is built with zero per-edge Python work.

        Raises
        ------
        GraphError
            On mismatched array lengths, out-of-range endpoints,
            self-loops, or duplicate labels.
        DuplicateEdgeError
            If the same ``(src, dst)`` pair appears twice.
        ProbabilityError
            If any probability lies outside ``[0, 1]`` or is NaN.
        """
        risk_array = np.asarray(self_risks, dtype=np.float64)
        if risk_array.ndim != 1:
            raise GraphError("self_risks must be one-dimensional")
        n = risk_array.size
        if labels is None:
            label_list: list[NodeLabel] = list(range(n))
        else:
            label_list = list(labels)
            if len(label_list) != n:
                raise GraphError("labels and self_risks must have equal length")
            if len(set(label_list)) != n:
                raise GraphError("labels must be unique")
        src_array = np.asarray(edge_src, dtype=np.int64)
        dst_array = np.asarray(edge_dst, dtype=np.int64)
        prob_array = np.asarray(edge_probs, dtype=np.float64)
        if not src_array.size == dst_array.size == prob_array.size:
            raise GraphError("edge arrays must have equal length")
        _check_probability_vector(risk_array, "self-risks")
        _check_probability_vector(prob_array, "edge probabilities")
        if src_array.size:
            if (
                src_array.min() < 0
                or src_array.max() >= n
                or dst_array.min() < 0
                or dst_array.max() >= n
            ):
                raise GraphError("edge endpoint index out of range")
            if np.any(src_array == dst_array):
                raise GraphError("self-loops are not allowed")
            keys = src_array * np.int64(n) + dst_array
            unique_keys = np.unique(keys)
            if unique_keys.size != keys.size:
                raise DuplicateEdgeError("duplicate edges in bulk input")
        return cls._from_validated_arrays(
            label_list,
            risk_array.copy(),
            src_array.copy(),
            dst_array.copy(),
            prob_array.copy(),
        )

    # ------------------------------------------------------------------
    # Derived graphs and interop
    # ------------------------------------------------------------------
    def reverse(self) -> "UncertainGraph":
        """Return ``Gt``, the graph with every edge direction flipped.

        Self-risk probabilities are preserved; the edge ``(u, v, p)``
        becomes ``(v, u, p)`` with the same canonical edge id.  Pure array
        swaps — O(n + m) with no per-edge Python work.
        """
        return UncertainGraph._from_validated_arrays(
            list(self._labels),
            self._self_risk.array.copy(),
            self._edge_dst.array.copy(),
            self._edge_src.array.copy(),
            self._edge_prob.array.copy(),
        )

    def subgraph(self, labels: Sequence[NodeLabel]) -> "UncertainGraph":
        """Induced subgraph on *labels* (edges with both endpoints kept).

        Edge filtering and index remapping are vectorised; kept edges
        preserve their relative canonical order.
        """
        label_list = list(labels)
        kept = np.fromiter(
            (self.index(label) for label in label_list),
            dtype=np.int64,
            count=len(label_list),
        )
        if np.unique(kept).size != kept.size:
            raise GraphError("subgraph labels must be unique")
        remap = np.full(self.num_nodes, -1, dtype=np.int64)
        remap[kept] = np.arange(kept.size, dtype=np.int64)
        src = self._edge_src.array
        dst = self._edge_dst.array
        keep_edge = (remap[src] >= 0) & (remap[dst] >= 0)
        return UncertainGraph._from_validated_arrays(
            label_list,
            self._self_risk.array[kept].copy(),
            remap[src[keep_edge]],
            remap[dst[keep_edge]],
            self._edge_prob.array[keep_edge].copy(),
        )

    def copy(self) -> "UncertainGraph":
        """Deep copy of the graph (bulk array copies, no per-edge work)."""
        return UncertainGraph._from_validated_arrays(
            list(self._labels),
            self._self_risk.array.copy(),
            self._edge_src.array.copy(),
            self._edge_dst.array.copy(),
            self._edge_prob.array.copy(),
        )

    def share_view(self) -> "UncertainGraph":
        """Copy-on-write view of this graph (the serving layer's hook).

        The returned graph answers every query identically to this one
        but *shares* the heavy buffers instead of copying them:

        * label list and label/edge lookup dicts — shared objects,
          forked by either side before a structural mutation;
        * self-risk / edge-endpoint / edge-probability columns — shared
          ndarrays wrapped in :class:`_CowColumn`, forked by whichever
          holder writes first (this graph's own columns are converted to
          COW mode too, so mutation on either side is safe);
        * CSR topology (``indptr`` / ``indices`` / ``edge_ids`` and the
          inverse permutations) — shared outright: probability patches
          never touch them and topology mutations rebuild them from the
          (forked) edge columns.

        Only the CSR ``probs`` columns are copied eagerly (2 m float64):
        :meth:`set_edge_probability` patches them in place by contract —
        long-lived samplers hold the view object — so they can never be
        shared between holders that may diverge.  Everything else is
        O(1) to share, which is what lets a pool of monitors over one
        base network hold ~one graph's worth of topology in memory.

        Forking is not thread-safe; mutate any one view from one thread
        at a time.
        """
        shared: dict[str, np.ndarray] = {}
        for name in ("_self_risk", "_edge_src", "_edge_dst", "_edge_prob"):
            # One exact live-prefix array object per column, wrapped by
            # BOTH holders: identity-based memory accounting then sees a
            # single buffer, and the prefix view drops any spare append
            # capacity the old column carried.
            shared[name] = getattr(self, name).array
            setattr(self, name, _CowColumn(shared[name]))
        self._shared_maps = True
        out, inn = self.out_csr(), self.in_csr()
        view = UncertainGraph.__new__(UncertainGraph)
        view._index_of = self._node_lookup()
        view._labels = self._labels
        view._shared_maps = True
        view._self_risk = _CowColumn(shared["_self_risk"])
        view._edge_src = _CowColumn(shared["_edge_src"])
        view._edge_dst = _CowColumn(shared["_edge_dst"])
        view._edge_prob = _CowColumn(shared["_edge_prob"])
        view._edge_index = self._edge_lookup()
        view._out_csr = CSRAdjacency(
            indptr=out.indptr,
            indices=out.indices,
            probs=out.probs.copy(),
            edge_ids=out.edge_ids,
        )
        view._in_csr = CSRAdjacency(
            indptr=inn.indptr,
            indices=inn.indices,
            probs=inn.probs.copy(),
            edge_ids=inn.edge_ids,
        )
        view._out_inverse = self._out_inverse
        view._in_inverse = self._in_inverse
        return view

    def storage_arrays(self) -> list[np.ndarray]:
        """The ndarrays physically backing this graph (built state only).

        Used by the serving layer's memory accounting: summing ``nbytes``
        over these arrays *deduplicated by identity* across a set of
        graphs measures how much buffer sharing :meth:`share_view`
        actually achieves.  Lazy state that has not been built (CSR
        views, inverse permutations) is simply absent.
        """
        arrays = [
            self._self_risk._data,
            self._edge_src._data,
            self._edge_dst._data,
            self._edge_prob._data,
        ]
        for csr in (self._out_csr, self._in_csr):
            if csr is not None:
                arrays.extend([csr.indptr, csr.indices, csr.probs, csr.edge_ids])
        for inverse in (self._out_inverse, self._in_inverse):
            if inverse is not None:
                arrays.append(inverse)
        return arrays

    def to_networkx(self):
        """Export to a :class:`networkx.DiGraph` with probability attrs."""
        import networkx as nx

        g = nx.DiGraph()
        for label, risk in zip(self._labels, self._self_risk.array):
            g.add_node(label, self_risk=float(risk))
        for src, dst, prob in self.edges():
            g.add_edge(src, dst, probability=prob)
        return g

    @classmethod
    def from_networkx(
        cls,
        g,
        self_risk_attr: str = "self_risk",
        probability_attr: str = "probability",
        default_self_risk: float = 0.0,
        default_probability: float = 1.0,
    ) -> "UncertainGraph":
        """Build an uncertain graph from a :class:`networkx.DiGraph`.

        Missing attributes fall back to the supplied defaults so plain
        topology-only graphs can be imported and annotated afterwards.
        """
        graph = cls()
        for node, data in g.nodes(data=True):
            graph.add_node(node, data.get(self_risk_attr, default_self_risk))
        for src, dst, data in g.edges(data=True):
            graph.add_edge(src, dst, data.get(probability_attr, default_probability))
        return graph

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats(self) -> GraphStats:
        """Summary statistics matching the columns of the paper's Table 2.

        Degree here counts both directions (total degree), matching how
        SNAP-style dataset tables report average/max degree.
        """
        n = self.num_nodes
        if n == 0:
            return GraphStats(0, 0, 0.0, 0, 0.0, 0.0)
        total_deg = self.out_csr().degrees + self.in_csr().degrees
        probs = self._edge_prob.array
        return GraphStats(
            num_nodes=n,
            num_edges=self.num_edges,
            avg_degree=float(self.num_edges / n),
            max_degree=int(total_deg.max(initial=0)),
            mean_self_risk=float(self._self_risk.array.mean()) if n else 0.0,
            mean_diffusion=float(probs.mean()) if probs.size else 0.0,
        )

    def validate(self) -> None:
        """Run internal consistency checks; raises :class:`GraphError`.

        Intended for tests and for callers that built a graph through the
        bulk constructors and want a sanity gate before long experiments.
        """
        if len(self._labels) != len(self._self_risk):
            raise GraphError("label/self-risk arrays out of sync")
        if len(self._node_lookup()) != len(self._labels):
            raise GraphError("duplicate labels in index map")
        if not len(self._edge_src) == len(self._edge_dst) == len(self._edge_prob):
            raise GraphError("edge attribute arrays out of sync")
        src = self._edge_src.array
        dst = self._edge_dst.array
        if src.size and (
            src.min() < 0
            or src.max() >= self.num_nodes
            or dst.min() < 0
            or dst.max() >= self.num_nodes
        ):
            raise GraphError("edge endpoint out of range")
        _check_probability_vector(self._edge_prob.array, "edge probabilities")
        _check_probability_vector(self._self_risk.array, "self risks")
        if len(self._edge_lookup()) != len(self._edge_src):
            raise GraphError("edge index and edge list disagree")

    def __repr__(self) -> str:
        return (
            f"UncertainGraph(nodes={self.num_nodes}, edges={self.num_edges})"
        )


def graph_from_mapping(
    self_risks: Mapping[NodeLabel, float],
    diffusion: Mapping[tuple[NodeLabel, NodeLabel], float],
) -> UncertainGraph:
    """Convenience constructor from two plain mappings.

    Parameters
    ----------
    self_risks:
        Mapping ``label -> ps(label)``.
    diffusion:
        Mapping ``(src, dst) -> p(dst|src)``.  Endpoints must appear in
        *self_risks*.
    """
    graph = UncertainGraph()
    for label, risk in self_risks.items():
        graph.add_node(label, risk)
    for (src, dst), prob in diffusion.items():
        graph.add_edge(src, dst, prob)
    return graph
