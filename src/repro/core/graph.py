"""Directed uncertain graph container.

This module implements :class:`UncertainGraph`, the data structure every
algorithm in the library operates on.  It models the graph of the paper's
Section 2.1: a directed graph where each node ``v`` carries a *self-risk
probability* ``ps(v)`` and each edge ``(u, v)`` carries a *diffusion
probability* ``p(v|u)``.

Design notes
------------
* Nodes are identified by arbitrary hashable *labels* at the API surface
  (enterprise ids, strings, ints).  Internally every node gets a dense
  integer *index* so the hot sampling loops can run on numpy arrays.
* Adjacency is stored twice in CSR (compressed sparse row) form — once for
  out-neighbours (forward propagation, Algorithm 1) and once for
  in-neighbours (Equation 1 and the reverse sampling of Algorithm 5).  The
  CSR views are built lazily and invalidated by any mutation.
* All probabilities are validated on insertion; values outside ``[0, 1]``
  raise :class:`~repro.core.errors.ProbabilityError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.core.errors import (
    DuplicateEdgeError,
    GraphError,
    ProbabilityError,
    UnknownNodeError,
)

__all__ = ["UncertainGraph", "CSRAdjacency", "GraphStats"]

NodeLabel = Hashable


def _check_probability(value: float, what: str) -> float:
    """Validate that *value* is a probability and return it as a float."""
    p = float(value)
    if not 0.0 <= p <= 1.0:
        raise ProbabilityError(f"{what} must be in [0, 1], got {value!r}")
    if np.isnan(p):
        raise ProbabilityError(f"{what} must not be NaN")
    return p


@dataclass(frozen=True)
class CSRAdjacency:
    """A compressed-sparse-row view of one direction of adjacency.

    Attributes
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; neighbours of node ``i`` live
        in ``indices[indptr[i]:indptr[i + 1]]``.
    indices:
        ``int64`` array of neighbour indices, one entry per edge.
    probs:
        ``float64`` array aligned with ``indices`` holding the diffusion
        probability of each edge.
    edge_ids:
        ``int64`` array aligned with ``indices`` giving each entry's
        position in the graph's canonical edge ordering.  Both the forward
        and the reverse CSR views refer to the *same* edge ids, which lets
        samplers share one random draw per edge between directions.
    """

    indptr: np.ndarray
    indices: np.ndarray
    probs: np.ndarray
    edge_ids: np.ndarray

    def neighbors(self, index: int) -> np.ndarray:
        """Neighbour indices of the node at internal *index*."""
        return self.indices[self.indptr[index] : self.indptr[index + 1]]

    def edge_probs(self, index: int) -> np.ndarray:
        """Diffusion probabilities aligned with :meth:`neighbors`."""
        return self.probs[self.indptr[index] : self.indptr[index + 1]]

    def edges_of(self, index: int) -> np.ndarray:
        """Canonical edge ids aligned with :meth:`neighbors`."""
        return self.edge_ids[self.indptr[index] : self.indptr[index + 1]]

    def degree(self, index: int) -> int:
        """Number of neighbours of the node at internal *index*."""
        return int(self.indptr[index + 1] - self.indptr[index])

    @property
    def degrees(self) -> np.ndarray:
        """Vector of per-node degrees in this direction."""
        return np.diff(self.indptr)


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a graph (mirrors the paper's Table 2)."""

    num_nodes: int
    num_edges: int
    avg_degree: float
    max_degree: int
    mean_self_risk: float
    mean_diffusion: float

    def as_row(self) -> dict[str, float | int]:
        """Return the statistics as a plain dict (for table printing)."""
        return {
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "avg_deg": round(self.avg_degree, 2),
            "max_deg": self.max_degree,
            "mean_ps": round(self.mean_self_risk, 4),
            "mean_pe": round(self.mean_diffusion, 4),
        }


class UncertainGraph:
    """A directed graph with node self-risk and edge diffusion probabilities.

    Parameters
    ----------
    nodes:
        Optional iterable of ``(label, self_risk)`` pairs to insert.
    edges:
        Optional iterable of ``(src, dst, diffusion_probability)`` triples;
        endpoint labels must already be present via *nodes* (or be inserted
        first through :meth:`add_node`).

    Examples
    --------
    >>> g = UncertainGraph()
    >>> g.add_node("A", self_risk=0.2)
    >>> g.add_node("B", self_risk=0.1)
    >>> g.add_edge("A", "B", probability=0.3)
    >>> g.num_nodes, g.num_edges
    (2, 1)
    """

    __slots__ = (
        "_index_of",
        "_labels",
        "_self_risk",
        "_edge_src",
        "_edge_dst",
        "_edge_prob",
        "_edge_index",
        "_out_csr",
        "_in_csr",
    )

    def __init__(
        self,
        nodes: Iterable[tuple[NodeLabel, float]] | None = None,
        edges: Iterable[tuple[NodeLabel, NodeLabel, float]] | None = None,
    ) -> None:
        self._index_of: dict[NodeLabel, int] = {}
        self._labels: list[NodeLabel] = []
        self._self_risk: list[float] = []
        self._edge_src: list[int] = []
        self._edge_dst: list[int] = []
        self._edge_prob: list[float] = []
        self._edge_index: dict[tuple[int, int], int] = {}
        self._out_csr: CSRAdjacency | None = None
        self._in_csr: CSRAdjacency | None = None
        if nodes is not None:
            for label, risk in nodes:
                self.add_node(label, risk)
        if edges is not None:
            for src, dst, prob in edges:
                self.add_edge(src, dst, prob)

    # ------------------------------------------------------------------
    # Construction and mutation
    # ------------------------------------------------------------------
    def add_node(self, label: NodeLabel, self_risk: float = 0.0) -> int:
        """Insert a node and return its internal index.

        Raises
        ------
        GraphError
            If *label* is already present.
        ProbabilityError
            If *self_risk* is outside ``[0, 1]``.
        """
        if label in self._index_of:
            raise GraphError(f"node {label!r} already exists")
        risk = _check_probability(self_risk, f"self_risk of {label!r}")
        index = len(self._labels)
        self._index_of[label] = index
        self._labels.append(label)
        self._self_risk.append(risk)
        self._invalidate()
        return index

    def add_edge(self, src: NodeLabel, dst: NodeLabel, probability: float) -> int:
        """Insert the directed edge ``src -> dst`` and return its edge id.

        The edge means: if *src* defaults, *dst* defaults with the given
        *probability* (the paper's ``p(dst|src)``).

        Raises
        ------
        UnknownNodeError
            If either endpoint has not been added.
        DuplicateEdgeError
            If the edge already exists (uncertain graphs here are simple).
        GraphError
            If the edge is a self-loop.
        """
        s = self.index(src)
        d = self.index(dst)
        if s == d:
            raise GraphError(f"self-loop on {src!r} is not allowed")
        if (s, d) in self._edge_index:
            raise DuplicateEdgeError(f"edge {src!r} -> {dst!r} already exists")
        prob = _check_probability(probability, f"p({dst!r}|{src!r})")
        edge_id = len(self._edge_src)
        self._edge_src.append(s)
        self._edge_dst.append(d)
        self._edge_prob.append(prob)
        self._edge_index[(s, d)] = edge_id
        self._invalidate()
        return edge_id

    def set_self_risk(self, label: NodeLabel, self_risk: float) -> None:
        """Replace the self-risk probability of an existing node."""
        index = self.index(label)
        self._self_risk[index] = _check_probability(
            self_risk, f"self_risk of {label!r}"
        )

    def set_edge_probability(
        self, src: NodeLabel, dst: NodeLabel, probability: float
    ) -> None:
        """Replace the diffusion probability of an existing edge."""
        s = self.index(src)
        d = self.index(dst)
        edge_id = self._edge_index.get((s, d))
        if edge_id is None:
            raise UnknownNodeError((src, dst))
        prob = _check_probability(probability, f"p({dst!r}|{src!r})")
        self._edge_prob[edge_id] = prob
        self._invalidate()

    def set_all_self_risks(self, values: Sequence[float] | np.ndarray) -> None:
        """Bulk-replace every node's self-risk (index-aligned array).

        Validates the whole vector first so a failed call leaves the graph
        unchanged.
        """
        array = np.asarray(values, dtype=np.float64)
        if array.shape != (self.num_nodes,):
            raise GraphError(
                f"need {self.num_nodes} self-risks, got shape {array.shape}"
            )
        if np.any((array < 0.0) | (array > 1.0)) or np.any(np.isnan(array)):
            raise ProbabilityError("self-risks must all lie in [0, 1]")
        self._self_risk = [float(value) for value in array]

    def set_all_edge_probabilities(
        self, values: Sequence[float] | np.ndarray
    ) -> None:
        """Bulk-replace every edge's diffusion probability (edge-id order).

        Validates the whole vector first so a failed call leaves the graph
        unchanged.
        """
        array = np.asarray(values, dtype=np.float64)
        if array.shape != (self.num_edges,):
            raise GraphError(
                f"need {self.num_edges} probabilities, got shape {array.shape}"
            )
        if np.any((array < 0.0) | (array > 1.0)) or np.any(np.isnan(array)):
            raise ProbabilityError("edge probabilities must all lie in [0, 1]")
        self._edge_prob = [float(value) for value in array]
        self._invalidate()

    def _invalidate(self) -> None:
        self._out_csr = None
        self._in_csr = None

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes, the paper's ``n``."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of directed edges, the paper's ``m``."""
        return len(self._edge_src)

    def __len__(self) -> int:
        return self.num_nodes

    def __contains__(self, label: NodeLabel) -> bool:
        return label in self._index_of

    def index(self, label: NodeLabel) -> int:
        """Internal index of *label*; raises :class:`UnknownNodeError`."""
        try:
            return self._index_of[label]
        except KeyError:
            raise UnknownNodeError(label) from None

    def label(self, index: int) -> NodeLabel:
        """Label of the node at internal *index*."""
        if not 0 <= index < len(self._labels):
            raise UnknownNodeError(index)
        return self._labels[index]

    def labels(self) -> list[NodeLabel]:
        """All node labels in internal-index order (a copy)."""
        return list(self._labels)

    def nodes(self) -> Iterator[NodeLabel]:
        """Iterate over node labels in insertion order."""
        return iter(self._labels)

    def edges(self) -> Iterator[tuple[NodeLabel, NodeLabel, float]]:
        """Iterate over ``(src_label, dst_label, probability)`` triples."""
        for eid in range(self.num_edges):
            yield (
                self._labels[self._edge_src[eid]],
                self._labels[self._edge_dst[eid]],
                self._edge_prob[eid],
            )

    def has_edge(self, src: NodeLabel, dst: NodeLabel) -> bool:
        """Whether the directed edge ``src -> dst`` exists."""
        try:
            return (self.index(src), self.index(dst)) in self._edge_index
        except UnknownNodeError:
            return False

    def self_risk(self, label: NodeLabel) -> float:
        """Self-risk probability ``ps(label)``."""
        return self._self_risk[self.index(label)]

    def edge_probability(self, src: NodeLabel, dst: NodeLabel) -> float:
        """Diffusion probability ``p(dst|src)``."""
        s = self.index(src)
        d = self.index(dst)
        edge_id = self._edge_index.get((s, d))
        if edge_id is None:
            raise UnknownNodeError((src, dst))
        return self._edge_prob[edge_id]

    def in_neighbors(self, label: NodeLabel) -> list[NodeLabel]:
        """Labels of in-neighbours — the paper's ``N(v)``."""
        csr = self.in_csr()
        return [self._labels[i] for i in csr.neighbors(self.index(label))]

    def out_neighbors(self, label: NodeLabel) -> list[NodeLabel]:
        """Labels of out-neighbours (nodes this node can infect)."""
        csr = self.out_csr()
        return [self._labels[i] for i in csr.neighbors(self.index(label))]

    def in_degree(self, label: NodeLabel) -> int:
        """Number of in-neighbours of *label*."""
        return self.in_csr().degree(self.index(label))

    def out_degree(self, label: NodeLabel) -> int:
        """Number of out-neighbours of *label*."""
        return self.out_csr().degree(self.index(label))

    # ------------------------------------------------------------------
    # Array views (used by the numeric kernels)
    # ------------------------------------------------------------------
    @property
    def self_risk_array(self) -> np.ndarray:
        """``float64`` array of self-risk probabilities, index-aligned."""
        return np.asarray(self._self_risk, dtype=np.float64)

    @property
    def edge_array(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Canonical edge arrays ``(src, dst, prob)`` in edge-id order."""
        return (
            np.asarray(self._edge_src, dtype=np.int64),
            np.asarray(self._edge_dst, dtype=np.int64),
            np.asarray(self._edge_prob, dtype=np.float64),
        )

    def _build_csr(self, direction: str) -> CSRAdjacency:
        n = self.num_nodes
        src, dst, prob = self.edge_array
        keys, values = (src, dst) if direction == "out" else (dst, src)
        order = np.argsort(keys, kind="stable")
        counts = np.bincount(keys, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return CSRAdjacency(
            indptr=indptr,
            indices=values[order],
            probs=prob[order],
            edge_ids=order.astype(np.int64),
        )

    def out_csr(self) -> CSRAdjacency:
        """CSR view of out-adjacency (lazily built, cached)."""
        if self._out_csr is None:
            self._out_csr = self._build_csr("out")
        return self._out_csr

    def in_csr(self) -> CSRAdjacency:
        """CSR view of in-adjacency (lazily built, cached)."""
        if self._in_csr is None:
            self._in_csr = self._build_csr("in")
        return self._in_csr

    # ------------------------------------------------------------------
    # Derived graphs and interop
    # ------------------------------------------------------------------
    def reverse(self) -> "UncertainGraph":
        """Return ``Gt``, the graph with every edge direction flipped.

        Self-risk probabilities are preserved; the edge ``(u, v, p)``
        becomes ``(v, u, p)``.  Used by the reverse sampling framework
        (Algorithm 5).
        """
        rev = UncertainGraph()
        for label, risk in zip(self._labels, self._self_risk):
            rev.add_node(label, risk)
        for src, dst, prob in self.edges():
            rev.add_edge(dst, src, prob)
        return rev

    def subgraph(self, labels: Sequence[NodeLabel]) -> "UncertainGraph":
        """Induced subgraph on *labels* (edges with both endpoints kept)."""
        keep = set(labels)
        sub = UncertainGraph()
        for label in labels:
            sub.add_node(label, self.self_risk(label))
        for src, dst, prob in self.edges():
            if src in keep and dst in keep:
                sub.add_edge(src, dst, prob)
        return sub

    def copy(self) -> "UncertainGraph":
        """Deep copy of the graph."""
        return self.subgraph(self._labels)

    def to_networkx(self):
        """Export to a :class:`networkx.DiGraph` with probability attrs."""
        import networkx as nx

        g = nx.DiGraph()
        for label, risk in zip(self._labels, self._self_risk):
            g.add_node(label, self_risk=risk)
        for src, dst, prob in self.edges():
            g.add_edge(src, dst, probability=prob)
        return g

    @classmethod
    def from_networkx(
        cls,
        g,
        self_risk_attr: str = "self_risk",
        probability_attr: str = "probability",
        default_self_risk: float = 0.0,
        default_probability: float = 1.0,
    ) -> "UncertainGraph":
        """Build an uncertain graph from a :class:`networkx.DiGraph`.

        Missing attributes fall back to the supplied defaults so plain
        topology-only graphs can be imported and annotated afterwards.
        """
        graph = cls()
        for node, data in g.nodes(data=True):
            graph.add_node(node, data.get(self_risk_attr, default_self_risk))
        for src, dst, data in g.edges(data=True):
            graph.add_edge(src, dst, data.get(probability_attr, default_probability))
        return graph

    @classmethod
    def from_arrays(
        cls,
        self_risks: Sequence[float],
        edge_src: Sequence[int],
        edge_dst: Sequence[int],
        edge_probs: Sequence[float],
        labels: Sequence[NodeLabel] | None = None,
    ) -> "UncertainGraph":
        """Bulk constructor from parallel arrays (fast path for generators).

        Node ``i`` gets label ``labels[i]`` (default: the integer ``i``).
        """
        n = len(self_risks)
        if labels is None:
            labels = list(range(n))
        if len(labels) != n:
            raise GraphError("labels and self_risks must have equal length")
        if not len(edge_src) == len(edge_dst) == len(edge_probs):
            raise GraphError("edge arrays must have equal length")
        graph = cls()
        for label, risk in zip(labels, self_risks):
            graph.add_node(label, risk)
        for s, d, p in zip(edge_src, edge_dst, edge_probs):
            graph.add_edge(labels[int(s)], labels[int(d)], p)
        return graph

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats(self) -> GraphStats:
        """Summary statistics matching the columns of the paper's Table 2.

        Degree here counts both directions (total degree), matching how
        SNAP-style dataset tables report average/max degree.
        """
        n = self.num_nodes
        if n == 0:
            return GraphStats(0, 0, 0.0, 0, 0.0, 0.0)
        total_deg = self.out_csr().degrees + self.in_csr().degrees
        _, _, probs = self.edge_array
        return GraphStats(
            num_nodes=n,
            num_edges=self.num_edges,
            avg_degree=float(self.num_edges / n),
            max_degree=int(total_deg.max(initial=0)),
            mean_self_risk=float(np.mean(self._self_risk)) if n else 0.0,
            mean_diffusion=float(probs.mean()) if probs.size else 0.0,
        )

    def validate(self) -> None:
        """Run internal consistency checks; raises :class:`GraphError`.

        Intended for tests and for callers that built a graph through the
        bulk constructors and want a sanity gate before long experiments.
        """
        if len(self._labels) != len(self._self_risk):
            raise GraphError("label/self-risk arrays out of sync")
        if len(self._index_of) != len(self._labels):
            raise GraphError("duplicate labels in index map")
        for arr in (self._edge_src, self._edge_dst):
            for idx in arr:
                if not 0 <= idx < self.num_nodes:
                    raise GraphError(f"edge endpoint {idx} out of range")
        for p in self._edge_prob:
            _check_probability(p, "edge probability")
        for p in self._self_risk:
            _check_probability(p, "self risk")
        if len(self._edge_index) != len(self._edge_src):
            raise GraphError("edge index and edge list disagree")

    def __repr__(self) -> str:
        return (
            f"UncertainGraph(nodes={self.num_nodes}, edges={self.num_edges})"
        )


def graph_from_mapping(
    self_risks: Mapping[NodeLabel, float],
    diffusion: Mapping[tuple[NodeLabel, NodeLabel], float],
) -> UncertainGraph:
    """Convenience constructor from two plain mappings.

    Parameters
    ----------
    self_risks:
        Mapping ``label -> ps(label)``.
    diffusion:
        Mapping ``(src, dst) -> p(dst|src)``.  Endpoints must appear in
        *self_risks*.
    """
    graph = UncertainGraph()
    for label, risk in self_risks.items():
        graph.add_node(label, risk)
    for (src, dst), prob in diffusion.items():
        graph.add_edge(src, dst, prob)
    return graph
