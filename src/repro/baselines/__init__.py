"""Baselines of the case study: structural scorers and ML classifiers."""

from repro.baselines.ml import (
    BinaryClassifier,
    CNNMaxClassifier,
    CompetingRisksDNN,
    GradientBoostedTrees,
    HGARClassifier,
    INDDPClassifier,
    WideDeepClassifier,
    WideLogisticRegression,
)
from repro.baselines.structural import (
    STRUCTURAL_SCORERS,
    betweenness_scores,
    influence_scores,
    kcore_scores,
    pagerank_scores,
)

__all__ = [
    "BinaryClassifier",
    "CNNMaxClassifier",
    "CompetingRisksDNN",
    "GradientBoostedTrees",
    "HGARClassifier",
    "INDDPClassifier",
    "WideDeepClassifier",
    "WideLogisticRegression",
    "STRUCTURAL_SCORERS",
    "betweenness_scores",
    "influence_scores",
    "kcore_scores",
    "pagerank_scores",
]
