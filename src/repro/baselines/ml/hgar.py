"""The "HGAR" baseline — high-order graph attention representation.

Stands in for the IJCAI-19 model of [10]: node representations are built
by two rounds of attention-weighted neighbour aggregation (attention from
feature similarity, the untrained-attention simplification documented in
DESIGN.md), and the concatenated multi-hop representation feeds a trained
logistic head.  Capturing two hops of guarantee-network context is what
lifts HGAR above the structure-free baselines in Table 3.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.ml.base import BinaryClassifier, StandardScaler
from repro.baselines.ml.linear import WideLogisticRegression
from repro.core.errors import ReproError
from repro.core.graph import CSRAdjacency, UncertainGraph

__all__ = ["HGARClassifier", "attention_aggregate"]


def attention_aggregate(
    csr: CSRAdjacency, H: np.ndarray, temperature: float = 1.0
) -> np.ndarray:
    """One round of similarity-attention neighbour aggregation.

    For each node ``v`` with neighbours ``u``, attention weights are the
    softmax over ``cos(H[v], H[u]) / temperature``; the output mixes the
    node's own representation with the attention-weighted neighbour sum.
    """
    n = csr.indptr.size - 1
    if H.shape[0] != n:
        raise ReproError(f"representation rows {H.shape[0]} != node count {n}")
    norms = np.linalg.norm(H, axis=1)
    norms[norms == 0.0] = 1.0
    unit = H / norms[:, None]
    owners = np.repeat(np.arange(n), np.diff(csr.indptr))
    similarities = np.einsum("ij,ij->i", unit[owners], unit[csr.indices])
    scores = np.exp(similarities / temperature)
    # Softmax per owner segment.
    denominators = np.zeros(n)
    np.add.at(denominators, owners, scores)
    denominators[denominators == 0.0] = 1.0
    weights = scores / denominators[owners]
    aggregated = np.zeros_like(H)
    np.add.at(aggregated, owners, weights[:, None] * H[csr.indices])
    return 0.5 * H + 0.5 * aggregated


class HGARClassifier(BinaryClassifier):
    """Two-hop attention representations → logistic head.

    Parameters
    ----------
    graph:
        The guarantee network whose node order matches the feature rows.
    hops:
        Rounds of attention aggregation (the paper's "high order").
    temperature:
        Attention softmax temperature.
    l2, lr, epochs:
        Logistic-head training controls.
    """

    name = "HGAR"

    def __init__(
        self,
        graph: UncertainGraph,
        hops: int = 2,
        temperature: float = 0.5,
        l2: float = 1e-3,
        lr: float = 0.5,
        epochs: int = 300,
    ) -> None:
        super().__init__()
        if hops < 1:
            raise ReproError(f"hops must be >= 1, got {hops}")
        self._graph = graph
        self._hops = int(hops)
        self._temperature = float(temperature)
        self._head = WideLogisticRegression(l2=l2, lr=lr, epochs=epochs)
        self._scaler = StandardScaler()

    def _representations(self, X: np.ndarray, fit_scaler: bool) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.shape[0] != self._graph.num_nodes:
            raise ReproError(
                f"feature rows {X.shape[0]} != graph nodes {self._graph.num_nodes}"
            )
        H = self._scaler.fit_transform(X) if fit_scaler else self._scaler.transform(X)
        in_csr = self._graph.in_csr()
        out_csr = self._graph.out_csr()
        blocks = [H]
        current = H
        for _ in range(self._hops):
            inward = attention_aggregate(in_csr, current, self._temperature)
            outward = attention_aggregate(out_csr, current, self._temperature)
            current = 0.5 * (inward + outward)
            blocks.append(current)
        return np.hstack(blocks)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "HGARClassifier":
        X, y = self._check_training_inputs(X, y)
        self._head.fit(self._representations(X, fit_scaler=True), y)
        self._fitted = True
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return self._head.predict_proba(self._representations(X, fit_scaler=False))
