"""The "CNN-max" baseline — 1-D convolution + global max pooling.

Reimplements the convolutional scorer of Table 3 [27] on the case-study
feature vectors: treat the standardised feature vector as a length-d
sequence, convolve with learned kernels, ReLU, global max-pool, and feed
a dense logistic head.  Trained end to end with Adam through the manual
backprop engine of :mod:`repro.baselines.ml.nn`.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.ml.base import BinaryClassifier, StandardScaler, sigmoid
from repro.baselines.ml.nn import (
    Conv1D,
    Dense,
    GlobalMaxPool1D,
    ReLU,
    Sequential,
    train_network,
)
from repro.core.errors import ReproError
from repro.sampling.rng import SeedLike, make_rng

__all__ = ["CNNMaxClassifier"]


class CNNMaxClassifier(BinaryClassifier):
    """Conv1D → ReLU → global-max-pool → two-layer dense head.

    Parameters
    ----------
    filters:
        Number of convolution kernels.
    kernel_size:
        Kernel width (must not exceed the feature count).
    epochs, batch_size, lr:
        Training-loop controls.
    seed:
        Initialisation/shuffling randomness.
    """

    name = "CNN-max"

    def __init__(
        self,
        filters: int = 32,
        kernel_size: int = 3,
        epochs: int = 150,
        batch_size: int = 32,
        lr: float = 1e-2,
        seed: SeedLike = 0,
    ) -> None:
        super().__init__()
        if filters <= 0:
            raise ReproError(f"filters must be positive, got {filters}")
        self._filters = int(filters)
        self._kernel = int(kernel_size)
        self._epochs = int(epochs)
        self._batch_size = int(batch_size)
        self._lr = float(lr)
        self._seed = seed
        self._scaler = StandardScaler()
        self._model: Sequential | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "CNNMaxClassifier":
        X, y = self._check_training_inputs(X, y)
        Xs = self._scaler.fit_transform(X)
        if Xs.shape[1] < self._kernel:
            raise ReproError(
                f"kernel_size={self._kernel} exceeds feature count {Xs.shape[1]}"
            )
        rng = make_rng(self._seed)
        hidden = max(4, self._filters // 2)
        self._model = Sequential(
            [
                Conv1D(self._kernel, self._filters, rng),
                ReLU(),
                GlobalMaxPool1D(),
                Dense(self._filters, hidden, rng),
                ReLU(),
                Dense(hidden, 1, rng),
            ]
        )
        train_network(
            self._model,
            Xs,
            y,
            epochs=self._epochs,
            batch_size=self._batch_size,
            lr=self._lr,
            seed=rng,
        )
        self._fitted = True
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        assert self._model is not None
        Xs = self._scaler.transform(np.asarray(X, dtype=np.float64))
        return sigmoid(self._model.forward(Xs).ravel())
