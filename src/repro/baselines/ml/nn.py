"""A minimal feed-forward neural-network engine in numpy.

Supports exactly what the Table-3 baselines need: dense layers, ReLU /
LeakyReLU, 1-D convolution with global max pooling, Adam, and a logistic
(binary cross-entropy with logits) loss.  Backward passes are written by
hand and verified against finite differences in the test suite.

This is deliberately a small engine, not a framework: layers own their
parameters and cache what their backward pass needs; :class:`Sequential`
chains them; :class:`Adam` updates whatever ``parameters()`` exposes.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.errors import ReproError
from repro.sampling.rng import SeedLike, make_rng

__all__ = [
    "Layer",
    "Dense",
    "ReLU",
    "LeakyReLU",
    "Conv1D",
    "GlobalMaxPool1D",
    "Sequential",
    "Adam",
    "bce_with_logits",
    "bce_grad",
    "train_network",
]


class Layer(abc.ABC):
    """One differentiable stage of a network."""

    @abc.abstractmethod
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the layer output, caching anything backward needs."""

    @abc.abstractmethod
    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Propagate *grad* (dL/d-output) to dL/d-input; stash dL/d-params."""

    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """(parameter, gradient) pairs; default: no parameters."""
        return []


class Dense(Layer):
    """Affine layer ``y = x W + b`` with He-style initialisation."""

    def __init__(self, fan_in: int, fan_out: int, rng: np.random.Generator) -> None:
        scale = np.sqrt(2.0 / fan_in)
        self.weight = rng.normal(0.0, scale, size=(fan_in, fan_out))
        self.bias = np.zeros(fan_out)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input = x
        return x @ self.weight + self.bias

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise ReproError("backward called before forward")
        self.grad_weight[...] = self._input.T @ grad
        self.grad_bias[...] = grad.sum(axis=0)
        return grad @ self.weight.T

    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        return [(self.weight, self.grad_weight), (self.bias, self.grad_bias)]


class ReLU(Layer):
    """Element-wise ``max(0, x)``."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ReproError("backward called before forward")
        return grad * self._mask


class LeakyReLU(Layer):
    """Leaky rectifier with configurable negative slope."""

    def __init__(self, slope: float = 0.2) -> None:
        self._slope = float(slope)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, self._slope * x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ReproError("backward called before forward")
        return np.where(self._mask, grad, self._slope * grad)


class Conv1D(Layer):
    """Valid 1-D convolution over single-channel sequences.

    Input shape ``(batch, length)``, output ``(batch, length - k + 1,
    filters)``.  Implemented with a sliding-window view (im2col), so both
    passes are plain matrix products.
    """

    def __init__(
        self, kernel_size: int, filters: int, rng: np.random.Generator
    ) -> None:
        if kernel_size < 1:
            raise ReproError(f"kernel_size must be >= 1, got {kernel_size}")
        self._kernel = int(kernel_size)
        scale = np.sqrt(2.0 / kernel_size)
        self.weight = rng.normal(0.0, scale, size=(kernel_size, filters))
        self.bias = np.zeros(filters)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._windows: np.ndarray | None = None
        self._input_length = 0

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] < self._kernel:
            raise ReproError(
                f"Conv1D needs (batch, length >= {self._kernel}), got {x.shape}"
            )
        self._input_length = x.shape[1]
        windows = np.lib.stride_tricks.sliding_window_view(x, self._kernel, axis=1)
        self._windows = windows  # (batch, length - k + 1, k)
        return windows @ self.weight + self.bias

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._windows is None:
            raise ReproError("backward called before forward")
        self.grad_weight[...] = np.einsum("blk,blf->kf", self._windows, grad)
        self.grad_bias[...] = grad.sum(axis=(0, 1))
        # dL/dx: scatter each window's contribution back to its positions.
        batch = grad.shape[0]
        grad_input = np.zeros((batch, self._input_length))
        per_window = grad @ self.weight.T  # (batch, positions, k)
        for offset in range(self._kernel):
            grad_input[:, offset : offset + per_window.shape[1]] += per_window[
                :, :, offset
            ]
        return grad_input

    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        return [(self.weight, self.grad_weight), (self.bias, self.grad_bias)]


class GlobalMaxPool1D(Layer):
    """Max over the positions axis of ``(batch, positions, filters)``."""

    def __init__(self) -> None:
        self._argmax: np.ndarray | None = None
        self._shape: tuple[int, ...] = ()

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3:
            raise ReproError(f"expected 3-D input, got shape {x.shape}")
        self._argmax = x.argmax(axis=1)  # (batch, filters)
        self._shape = x.shape
        return x.max(axis=1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._argmax is None:
            raise ReproError("backward called before forward")
        batch, positions, filters = self._shape
        grad_input = np.zeros(self._shape)
        batch_index = np.arange(batch)[:, None]
        filter_index = np.arange(filters)[None, :]
        grad_input[batch_index, self._argmax, filter_index] = grad
        return grad_input


class Sequential:
    """A chain of layers with a joint forward/backward."""

    def __init__(self, layers: list[Layer]) -> None:
        if not layers:
            raise ReproError("Sequential needs at least one layer")
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run all layers; returns the final activation (e.g. logits)."""
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Back-propagate through all layers, filling parameter grads."""
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """All (parameter, gradient) pairs of the chain."""
        pairs: list[tuple[np.ndarray, np.ndarray]] = []
        for layer in self.layers:
            pairs.extend(layer.parameters())
        return pairs


class Adam:
    """Adam optimiser over ``(parameter, gradient)`` pairs."""

    def __init__(
        self,
        parameters: list[tuple[np.ndarray, np.ndarray]],
        lr: float = 1e-2,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        self._pairs = parameters
        self._lr = float(lr)
        self._beta1 = float(beta1)
        self._beta2 = float(beta2)
        self._eps = float(eps)
        self._m = [np.zeros_like(p) for p, _ in parameters]
        self._v = [np.zeros_like(p) for p, _ in parameters]
        self._t = 0

    def step(self) -> None:
        """Apply one update using the gradients currently stored."""
        self._t += 1
        for i, (param, grad) in enumerate(self._pairs):
            self._m[i] = self._beta1 * self._m[i] + (1 - self._beta1) * grad
            self._v[i] = self._beta2 * self._v[i] + (1 - self._beta2) * grad**2
            m_hat = self._m[i] / (1 - self._beta1**self._t)
            v_hat = self._v[i] / (1 - self._beta2**self._t)
            param -= self._lr * m_hat / (np.sqrt(v_hat) + self._eps)


def bce_with_logits(logits: np.ndarray, y: np.ndarray) -> float:
    """Mean binary cross-entropy computed stably from logits."""
    z = logits.ravel()
    return float(np.mean(np.maximum(z, 0) - z * y + np.log1p(np.exp(-np.abs(z)))))


def bce_grad(logits: np.ndarray, y: np.ndarray) -> np.ndarray:
    """dL/dlogits of mean BCE: ``(sigmoid(z) - y) / n``, shaped like logits."""
    z = logits.ravel()
    probability = np.empty_like(z)
    positive = z >= 0
    probability[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    expz = np.exp(z[~positive])
    probability[~positive] = expz / (1.0 + expz)
    return ((probability - y) / y.size).reshape(logits.shape)


def train_network(
    model: Sequential,
    X: np.ndarray,
    y: np.ndarray,
    epochs: int,
    batch_size: int,
    lr: float,
    seed: SeedLike = None,
) -> list[float]:
    """Mini-batch Adam training loop; returns the per-epoch losses."""
    rng = make_rng(seed)
    optimiser = Adam(model.parameters(), lr=lr)
    n = X.shape[0]
    losses: list[float] = []
    for _ in range(epochs):
        order = rng.permutation(n)
        epoch_loss = 0.0
        batches = 0
        for start in range(0, n, batch_size):
            rows = order[start : start + batch_size]
            logits = model.forward(X[rows])
            epoch_loss += bce_with_logits(logits, y[rows])
            batches += 1
            model.backward(bce_grad(logits, y[rows]))
            optimiser.step()
        losses.append(epoch_loss / max(batches, 1))
    return losses
