"""The "INDDP" baseline — network-augmented default prediction.

Stands in for the networked-guarantee-loan default predictor of [15]:
node features are augmented with neighbourhood aggregates (mean in- and
out-neighbour features, degrees) before a logistic model — the simplest
graph-aware member of the Table-3 line-up.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.ml.base import BinaryClassifier
from repro.baselines.ml.linear import WideLogisticRegression
from repro.core.errors import ReproError
from repro.core.graph import CSRAdjacency, UncertainGraph

__all__ = ["INDDPClassifier", "neighbor_mean"]


def neighbor_mean(csr: CSRAdjacency, X: np.ndarray) -> np.ndarray:
    """Per-node mean of neighbour feature rows (zeros when no neighbours).

    Works on either adjacency direction; used by both graph-aware
    baselines.
    """
    n = csr.indptr.size - 1
    if X.shape[0] != n:
        raise ReproError(f"feature rows {X.shape[0]} != node count {n}")
    sums = np.zeros((n, X.shape[1]))
    owners = np.repeat(np.arange(n), np.diff(csr.indptr))
    np.add.at(sums, owners, X[csr.indices])
    degrees = np.maximum(csr.degrees, 1)[:, None]
    return sums / degrees


class INDDPClassifier(BinaryClassifier):
    """Features + neighbourhood aggregates → logistic regression.

    Parameters
    ----------
    graph:
        The guarantee network whose node order matches the feature rows.
    l2, lr, epochs:
        Forwarded to the underlying logistic model.
    """

    name = "INDDP"

    def __init__(
        self,
        graph: UncertainGraph,
        l2: float = 1e-3,
        lr: float = 0.5,
        epochs: int = 300,
    ) -> None:
        super().__init__()
        self._graph = graph
        self._logistic = WideLogisticRegression(l2=l2, lr=lr, epochs=epochs)

    def _augment(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.shape[0] != self._graph.num_nodes:
            raise ReproError(
                f"feature rows {X.shape[0]} != graph nodes {self._graph.num_nodes}"
            )
        in_csr = self._graph.in_csr()
        out_csr = self._graph.out_csr()
        return np.hstack(
            [
                X,
                neighbor_mean(in_csr, X),
                neighbor_mean(out_csr, X),
                in_csr.degrees[:, None].astype(np.float64),
                out_csr.degrees[:, None].astype(np.float64),
            ]
        )

    def fit(self, X: np.ndarray, y: np.ndarray) -> "INDDPClassifier":
        X, y = self._check_training_inputs(X, y)
        self._logistic.fit(self._augment(X), y)
        self._fitted = True
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return self._logistic.predict_proba(self._augment(X))
