"""The "crDNN" baseline — deep competing-risks style MLP.

Stands in for the deep competing-risks representation model of Table 3
[29]: a plain deep network (three hidden ReLU layers) on the standardised
features, trained with Adam on binary cross-entropy.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.ml.base import BinaryClassifier, StandardScaler, sigmoid
from repro.baselines.ml.nn import Dense, ReLU, Sequential, train_network
from repro.sampling.rng import SeedLike, make_rng

__all__ = ["CompetingRisksDNN"]


class CompetingRisksDNN(BinaryClassifier):
    """Three-hidden-layer MLP binary classifier.

    Parameters
    ----------
    hidden:
        Hidden-layer widths.
    epochs, batch_size, lr:
        Training-loop controls.
    seed:
        Initialisation/shuffling randomness.
    """

    name = "crDNN"

    def __init__(
        self,
        hidden: tuple[int, ...] = (64, 32, 16),
        epochs: int = 60,
        batch_size: int = 64,
        lr: float = 3e-3,
        seed: SeedLike = 0,
    ) -> None:
        super().__init__()
        self._hidden = tuple(int(h) for h in hidden)
        self._epochs = int(epochs)
        self._batch_size = int(batch_size)
        self._lr = float(lr)
        self._seed = seed
        self._scaler = StandardScaler()
        self._model: Sequential | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "CompetingRisksDNN":
        X, y = self._check_training_inputs(X, y)
        Xs = self._scaler.fit_transform(X)
        rng = make_rng(self._seed)
        layers = []
        fan_in = Xs.shape[1]
        for width in self._hidden:
            layers.append(Dense(fan_in, width, rng))
            layers.append(ReLU())
            fan_in = width
        layers.append(Dense(fan_in, 1, rng))
        self._model = Sequential(layers)
        train_network(
            self._model,
            Xs,
            y,
            epochs=self._epochs,
            batch_size=self._batch_size,
            lr=self._lr,
            seed=rng,
        )
        self._fitted = True
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        assert self._model is not None
        Xs = self._scaler.transform(np.asarray(X, dtype=np.float64))
        return sigmoid(self._model.forward(Xs).ravel())
