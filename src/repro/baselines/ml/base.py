"""Shared infrastructure for the Table-3 prediction baselines.

The paper's case study compares TensorFlow models on GPU servers; offline
we reimplement each model family in pure numpy (see DESIGN.md for the
substitution table).  This module holds the pieces they share: the
classifier interface, feature standardisation, and loss utilities.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.errors import NotFittedError, ReproError

__all__ = ["BinaryClassifier", "StandardScaler", "sigmoid", "log_loss"]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    expx = np.exp(x[~positive])
    out[~positive] = expx / (1.0 + expx)
    return out


def log_loss(y_true: np.ndarray, y_prob: np.ndarray, eps: float = 1e-12) -> float:
    """Mean binary cross-entropy."""
    y_prob = np.clip(y_prob, eps, 1.0 - eps)
    return float(
        -np.mean(y_true * np.log(y_prob) + (1.0 - y_true) * np.log(1.0 - y_prob))
    )


class StandardScaler:
    """Column-wise standardisation fitted on training data only."""

    def __init__(self) -> None:
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        """Record column means and standard deviations of *X*."""
        X = np.asarray(X, dtype=np.float64)
        self._mean = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0.0] = 1.0  # constant columns pass through centred
        self._std = std
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Standardise *X* with the fitted statistics."""
        if self._mean is None or self._std is None:
            raise NotFittedError("StandardScaler used before fit()")
        X = np.asarray(X, dtype=np.float64)
        return (X - self._mean) / self._std

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(X).transform(X)


class BinaryClassifier(abc.ABC):
    """Interface every Table-3 baseline implements.

    Subclasses set :attr:`name` to the label used in the paper's table and
    implement :meth:`fit` / :meth:`predict_proba`.
    """

    #: Display name matching Table 3's row label.
    name: str = "abstract"

    def __init__(self) -> None:
        self._fitted = False

    @abc.abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "BinaryClassifier":
        """Train on features *X* (n, d) and binary labels *y* (n,)."""

    @abc.abstractmethod
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Default-probability scores for each row of *X*."""

    def _check_training_inputs(
        self, X: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Validate and coerce fit() inputs."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ReproError(f"X must be 2-D, got shape {X.shape}")
        if y.shape != (X.shape[0],):
            raise ReproError(
                f"y has shape {y.shape}, expected ({X.shape[0]},)"
            )
        if not np.isin(y, (0.0, 1.0)).all():
            raise ReproError("labels must be binary 0/1")
        return X, y

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} used before fit()")
