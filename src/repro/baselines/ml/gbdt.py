"""The "GBDT" baseline — gradient-boosted regression trees.

A compact reimplementation of the LightGBM-style model of Table 3 [28]:
boosted depth-limited regression trees fitted to the logistic-loss
gradients, with shrinkage.  Exact greedy split search over feature
quantile thresholds — plenty for the 8–16 column feature matrices of the
case study.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.ml.base import BinaryClassifier, sigmoid
from repro.core.errors import ReproError

__all__ = ["GradientBoostedTrees", "RegressionTree"]


@dataclass
class _Node:
    """One node of a regression tree (leaf when ``feature`` is None)."""

    value: float
    feature: int | None = None
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None


class RegressionTree:
    """Depth-limited least-squares regression tree.

    Parameters
    ----------
    max_depth:
        Depth cap (1 = decision stump).
    min_samples_leaf:
        Minimum rows per leaf; splits violating it are rejected.
    max_thresholds:
        Candidate thresholds per feature (quantile grid), bounding the
        split search cost independent of n.
    """

    def __init__(
        self,
        max_depth: int = 3,
        min_samples_leaf: int = 8,
        max_thresholds: int = 16,
    ) -> None:
        if max_depth < 1:
            raise ReproError(f"max_depth must be >= 1, got {max_depth}")
        self._max_depth = int(max_depth)
        self._min_leaf = int(min_samples_leaf)
        self._max_thresholds = int(max_thresholds)
        self._root: _Node | None = None

    def fit(self, X: np.ndarray, residuals: np.ndarray) -> "RegressionTree":
        """Fit to real-valued targets (boosting residuals)."""
        X = np.asarray(X, dtype=np.float64)
        residuals = np.asarray(residuals, dtype=np.float64)
        self._root = self._grow(X, residuals, depth=0)
        return self

    def _grow(self, X: np.ndarray, target: np.ndarray, depth: int) -> _Node:
        node_value = float(target.mean()) if target.size else 0.0
        if depth >= self._max_depth or target.size < 2 * self._min_leaf:
            return _Node(value=node_value)
        best = self._best_split(X, target)
        if best is None:
            return _Node(value=node_value)
        feature, threshold = best
        mask = X[:, feature] <= threshold
        return _Node(
            value=node_value,
            feature=feature,
            threshold=threshold,
            left=self._grow(X[mask], target[mask], depth + 1),
            right=self._grow(X[~mask], target[~mask], depth + 1),
        )

    def _best_split(
        self, X: np.ndarray, target: np.ndarray
    ) -> tuple[int, float] | None:
        n, d = X.shape
        base_sse = float(((target - target.mean()) ** 2).sum())
        best_gain = 1e-12
        best: tuple[int, float] | None = None
        for feature in range(d):
            column = X[:, feature]
            quantiles = np.unique(
                np.quantile(column, np.linspace(0.05, 0.95, self._max_thresholds))
            )
            for threshold in quantiles:
                mask = column <= threshold
                left_count = int(mask.sum())
                if left_count < self._min_leaf or n - left_count < self._min_leaf:
                    continue
                left = target[mask]
                right = target[~mask]
                sse = float(
                    ((left - left.mean()) ** 2).sum()
                    + ((right - right.mean()) ** 2).sum()
                )
                gain = base_sse - sse
                if gain > best_gain:
                    best_gain = gain
                    best = (feature, float(threshold))
        return best

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted target for each row."""
        if self._root is None:
            raise ReproError("RegressionTree used before fit()")
        X = np.asarray(X, dtype=np.float64)
        out = np.empty(X.shape[0])
        for i, row in enumerate(X):
            node = self._root
            while node.feature is not None:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out


class GradientBoostedTrees(BinaryClassifier):
    """Gradient boosting on logistic loss with shrinkage.

    Parameters
    ----------
    n_trees:
        Boosting rounds.
    learning_rate:
        Shrinkage applied to each tree's contribution.
    max_depth, min_samples_leaf:
        Per-tree controls.
    """

    name = "GBDT"

    def __init__(
        self,
        n_trees: int = 60,
        learning_rate: float = 0.15,
        max_depth: int = 3,
        min_samples_leaf: int = 8,
    ) -> None:
        super().__init__()
        if n_trees <= 0:
            raise ReproError(f"n_trees must be positive, got {n_trees}")
        self._n_trees = int(n_trees)
        self._lr = float(learning_rate)
        self._max_depth = int(max_depth)
        self._min_leaf = int(min_samples_leaf)
        self._trees: list[RegressionTree] = []
        self._base_logit = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostedTrees":
        X, y = self._check_training_inputs(X, y)
        positive_rate = float(np.clip(y.mean(), 1e-6, 1 - 1e-6))
        self._base_logit = float(np.log(positive_rate / (1 - positive_rate)))
        logits = np.full(X.shape[0], self._base_logit)
        self._trees = []
        for _ in range(self._n_trees):
            residuals = y - sigmoid(logits)  # negative logistic-loss gradient
            tree = RegressionTree(
                max_depth=self._max_depth, min_samples_leaf=self._min_leaf
            ).fit(X, residuals)
            logits += self._lr * tree.predict(X)
            self._trees.append(tree)
        self._fitted = True
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        X = np.asarray(X, dtype=np.float64)
        logits = np.full(X.shape[0], self._base_logit)
        for tree in self._trees:
            logits += self._lr * tree.predict(X)
        return sigmoid(logits)
