"""Numpy reimplementations of the Table-3 machine-learning baselines."""

from repro.baselines.ml.base import BinaryClassifier, StandardScaler, log_loss, sigmoid
from repro.baselines.ml.cnn_max import CNNMaxClassifier
from repro.baselines.ml.crdnn import CompetingRisksDNN
from repro.baselines.ml.gbdt import GradientBoostedTrees, RegressionTree
from repro.baselines.ml.hgar import HGARClassifier, attention_aggregate
from repro.baselines.ml.inddp import INDDPClassifier, neighbor_mean
from repro.baselines.ml.linear import WideLogisticRegression
from repro.baselines.ml.wide_deep import WideDeepClassifier

__all__ = [
    "BinaryClassifier",
    "StandardScaler",
    "log_loss",
    "sigmoid",
    "CNNMaxClassifier",
    "CompetingRisksDNN",
    "GradientBoostedTrees",
    "RegressionTree",
    "HGARClassifier",
    "attention_aggregate",
    "INDDPClassifier",
    "neighbor_mean",
    "WideLogisticRegression",
    "WideDeepClassifier",
]
