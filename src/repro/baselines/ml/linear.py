"""The "Wide" baseline — L2-regularised logistic regression.

Stands in for the follow-the-regularised-leader wide model of Table 3
([25]).  Full-batch gradient descent with an L2 penalty; deterministic
given the data (no random initialisation needed for a convex model).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.ml.base import BinaryClassifier, StandardScaler, sigmoid
from repro.core.errors import ReproError

__all__ = ["WideLogisticRegression"]


class WideLogisticRegression(BinaryClassifier):
    """Logistic regression trained by gradient descent.

    Parameters
    ----------
    l2:
        L2 penalty strength on the weights (not the intercept).
    lr:
        Gradient-descent step size.
    epochs:
        Number of full-batch iterations.
    """

    name = "Wide"

    def __init__(self, l2: float = 1e-3, lr: float = 0.5, epochs: int = 300) -> None:
        super().__init__()
        if epochs <= 0:
            raise ReproError(f"epochs must be positive, got {epochs}")
        self._l2 = float(l2)
        self._lr = float(lr)
        self._epochs = int(epochs)
        self._scaler = StandardScaler()
        self._weights: np.ndarray | None = None
        self._bias = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "WideLogisticRegression":
        X, y = self._check_training_inputs(X, y)
        Xs = self._scaler.fit_transform(X)
        n, d = Xs.shape
        weights = np.zeros(d)
        bias = 0.0
        for _ in range(self._epochs):
            probability = sigmoid(Xs @ weights + bias)
            error = probability - y
            grad_weights = Xs.T @ error / n + self._l2 * weights
            grad_bias = float(error.mean())
            weights -= self._lr * grad_weights
            bias -= self._lr * grad_bias
        self._weights = weights
        self._bias = bias
        self._fitted = True
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        Xs = self._scaler.transform(np.asarray(X, dtype=np.float64))
        return sigmoid(Xs @ self._weights + self._bias)
