"""The "Wide & Deep" baseline — joint linear + MLP model.

Reimplements the architecture family of Cheng et al. (2016) [26] at the
scale the Table-3 features warrant: a wide (linear) path and a deep
(two-hidden-layer ReLU) path whose logits are summed and trained jointly
with Adam on binary cross-entropy.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.ml.base import BinaryClassifier, StandardScaler, sigmoid
from repro.baselines.ml.nn import Adam, Dense, ReLU, Sequential, bce_grad
from repro.sampling.rng import SeedLike, make_rng

__all__ = ["WideDeepClassifier"]


class WideDeepClassifier(BinaryClassifier):
    """Jointly trained wide (linear) + deep (MLP) binary classifier.

    Parameters
    ----------
    hidden:
        Sizes of the deep path's hidden layers.
    epochs, batch_size, lr:
        Adam training-loop controls.
    seed:
        Initialisation/shuffling randomness.
    """

    name = "Wide & Deep"

    def __init__(
        self,
        hidden: tuple[int, ...] = (32, 16),
        epochs: int = 60,
        batch_size: int = 64,
        lr: float = 5e-3,
        seed: SeedLike = 0,
    ) -> None:
        super().__init__()
        self._hidden = tuple(int(h) for h in hidden)
        self._epochs = int(epochs)
        self._batch_size = int(batch_size)
        self._lr = float(lr)
        self._seed = seed
        self._scaler = StandardScaler()
        self._deep: Sequential | None = None
        self._wide: Dense | None = None

    def _build(self, d: int, rng: np.random.Generator) -> None:
        layers = []
        fan_in = d
        for width in self._hidden:
            layers.append(Dense(fan_in, width, rng))
            layers.append(ReLU())
            fan_in = width
        layers.append(Dense(fan_in, 1, rng))
        self._deep = Sequential(layers)
        self._wide = Dense(d, 1, rng)

    def _logits(self, X: np.ndarray) -> np.ndarray:
        assert self._deep is not None and self._wide is not None
        return self._deep.forward(X) + self._wide.forward(X)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "WideDeepClassifier":
        X, y = self._check_training_inputs(X, y)
        Xs = self._scaler.fit_transform(X)
        rng = make_rng(self._seed)
        self._build(Xs.shape[1], rng)
        assert self._deep is not None and self._wide is not None
        optimiser = Adam(
            self._deep.parameters() + self._wide.parameters(), lr=self._lr
        )
        n = Xs.shape[0]
        for _ in range(self._epochs):
            order = rng.permutation(n)
            for start in range(0, n, self._batch_size):
                rows = order[start : start + self._batch_size]
                logits = self._logits(Xs[rows])
                grad = bce_grad(logits, y[rows])
                # The summed logit fans the same gradient into both paths.
                self._deep.backward(grad)
                self._wide.backward(grad)
                optimiser.step()
        self._fitted = True
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        Xs = self._scaler.transform(np.asarray(X, dtype=np.float64))
        return sigmoid(self._logits(Xs).ravel())
