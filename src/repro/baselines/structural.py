"""Structural (training-free) baselines of the Table-3 case study.

Betweenness, PageRank, k-core and influence maximisation score nodes from
topology (and, for InfMax, the edge probabilities) alone — no features,
no labels.  Table 3 shows they trail the feature models on default
prediction; the score functions here reproduce that comparison.

Each scorer returns a ``float64`` array over the graph's internal node
indices, higher = more at-risk under that baseline's notion of importance.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.errors import ReproError
from repro.core.graph import UncertainGraph
from repro.sampling.rng import SeedLike, make_rng

__all__ = [
    "betweenness_scores",
    "pagerank_scores",
    "kcore_scores",
    "influence_scores",
    "STRUCTURAL_SCORERS",
]


def betweenness_scores(
    graph: UncertainGraph, sample_sources: int | None = 200, seed: SeedLike = 0
) -> np.ndarray:
    """Betweenness centrality (Brandes, optionally source-sampled).

    Parameters
    ----------
    graph:
        Topology to score (probabilities ignored).
    sample_sources:
        Number of BFS sources for the approximation of [30]; ``None``
        uses every node (exact betweenness).
    seed:
        Source-sampling randomness.
    """
    import networkx as nx

    g = graph.to_networkx()
    n = graph.num_nodes
    k = None if sample_sources is None or sample_sources >= n else sample_sources
    rng = make_rng(seed)
    centrality = nx.betweenness_centrality(
        g, k=k, normalized=True, seed=int(rng.integers(2**31 - 1))
    )
    return np.array([centrality[label] for label in graph.labels()])


def pagerank_scores(
    graph: UncertainGraph, alpha: float = 0.85, max_iter: int = 200
) -> np.ndarray:
    """PageRank on the contagion direction (risk flows along edges)."""
    import networkx as nx

    g = graph.to_networkx()
    ranks = nx.pagerank(g, alpha=alpha, max_iter=max_iter)
    return np.array([ranks[label] for label in graph.labels()])


def kcore_scores(graph: UncertainGraph) -> np.ndarray:
    """Core number of each node on the undirected projection [32]."""
    import networkx as nx

    g = graph.to_networkx().to_undirected()
    g.remove_edges_from(nx.selfloop_edges(g))
    cores = nx.core_number(g)
    return np.array([float(cores[label]) for label in graph.labels()])


def influence_scores(
    graph: UncertainGraph, num_rr_sets: int = 2000, seed: SeedLike = 0
) -> np.ndarray:
    """Influence-maximisation node scores via reverse-reachable sets [14, 18].

    The expected influence of ``v`` under the IC model is proportional to
    the probability that ``v`` appears in a random reverse-reachable (RR)
    set: pick a uniform target, walk *incoming* edges that survive their
    Bernoulli draw, and collect every node reached.  Counting memberships
    over many RR sets scores all nodes simultaneously — the standard RIS
    estimator, far cheaper than per-node forward simulation.
    """
    if num_rr_sets <= 0:
        raise ReproError(f"num_rr_sets must be positive, got {num_rr_sets}")
    rng = make_rng(seed)
    n = graph.num_nodes
    in_csr = graph.in_csr()
    counts = np.zeros(n, dtype=np.int64)
    visited = np.full(n, -1, dtype=np.int64)
    for rr_index in range(num_rr_sets):
        target = int(rng.integers(n))
        queue: deque[int] = deque((target,))
        visited[target] = rr_index
        counts[target] += 1
        while queue:
            u = queue.popleft()
            start, stop = in_csr.indptr[u], in_csr.indptr[u + 1]
            for pos in range(start, stop):
                neighbor = int(in_csr.indices[pos])
                if visited[neighbor] == rr_index:
                    continue
                if rng.random() <= in_csr.probs[pos]:
                    visited[neighbor] = rr_index
                    counts[neighbor] += 1
                    queue.append(neighbor)
    return counts / float(num_rr_sets)


#: Table-3 row label → scorer callable (graph, seed) -> scores.
STRUCTURAL_SCORERS = {
    "Betweenness": lambda graph, seed=0: betweenness_scores(graph, seed=seed),
    "PageRank": lambda graph, seed=0: pagerank_scores(graph),
    "K-core": lambda graph, seed=0: kcore_scores(graph),
    "InfMax": lambda graph, seed=0: influence_scores(graph, seed=seed),
}
