"""Multi-tenant serving layer over the incremental detection pipeline.

The paper frames top-k vulnerable-node detection as an always-on
financial-risk service; this package is that service's machine room.
Many per-portfolio :class:`~repro.streaming.monitor.TopKMonitor` tenants
run over **one** shared base network:

* :mod:`repro.serving.store` — :class:`GraphStore`, deduplicated base
  snapshots with copy-on-write tenant checkouts;
* :mod:`repro.serving.coalesce` — last-write-wins batch coalescing,
  state-equivalent to serial application;
* :mod:`repro.serving.queue` — :class:`IngestionQueue`, per-tenant
  buffering with a timed asyncio flush pump;
* :mod:`repro.serving.pool` — :class:`ServingPool`, sharded single-
  worker executors (fork / thread / serial) with per-tenant FIFO
  ordering;
* :mod:`repro.serving.service` — :class:`RiskService`, the façade the
  risk-control centre (and the ``repro-detect serve`` CLI) talks to,
  including the durable (``wal_dir=``) write-ahead-logged, snapshot-
  rotated, crash-recoverable configuration backed by
  :mod:`repro.persistence`.
"""

from repro.serving.coalesce import coalesce_events, event_key
from repro.serving.pool import ServingPool, available_modes, default_mode
from repro.serving.queue import OVERFLOW_POLICIES, IngestionQueue, QueueStats
from repro.serving.service import RiskService, ServiceSnapshot
from repro.serving.store import (
    GraphStore,
    StoreMemoryReport,
    graph_fingerprint,
    unique_buffer_bytes,
)

__all__ = [
    "GraphStore",
    "StoreMemoryReport",
    "unique_buffer_bytes",
    "graph_fingerprint",
    "coalesce_events",
    "event_key",
    "IngestionQueue",
    "QueueStats",
    "OVERFLOW_POLICIES",
    "ServingPool",
    "available_modes",
    "default_mode",
    "RiskService",
    "ServiceSnapshot",
]
