"""RiskService — the serving layer's front door.

Ties the pieces together for callers like
:class:`~repro.system.pipeline.RiskControlCenter`:

* an :class:`~repro.serving.queue.IngestionQueue` absorbing per-tenant
  update traffic (windowed, last-write-wins coalescing),
* a :class:`~repro.serving.pool.ServingPool` of per-tenant incremental
  monitors — each pool worker holds the base snapshot in a
  :class:`~repro.serving.store.GraphStore` and checks tenant views out
  of it copy-on-write, which is also where the per-worker memory
  telemetry in :meth:`RiskService.snapshot` comes from.

The surface is synchronous-friendly — ``submit_update`` buffers, an
explicit :meth:`flush` applies, :meth:`query_topk` answers after all of
its tenant's submitted updates — while :meth:`serve` runs the timed
asyncio flush loop for a live deployment.  Every answer is the
incremental monitor's, hence bit-identical to a fresh BSR detection with
the tenant's parameters on the tenant's current graph state.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping

from repro.core.errors import ReproError
from repro.core.graph import UncertainGraph
from repro.serving.pool import ServingPool
from repro.serving.queue import IngestionQueue
from repro.streaming.events import UpdateEvent
from repro.streaming.monitor import RefreshReport

__all__ = ["RiskService", "ServiceSnapshot"]

TenantId = Hashable


@dataclass(frozen=True)
class ServiceSnapshot:
    """One consistent telemetry cut of a running service.

    Attributes
    ----------
    tenants:
        Registered tenant ids in registration order.
    queue:
        Ingestion-queue counters (submitted / flushed / coalesced-away …).
    shards:
        Per-shard worker statistics from the pool (pid, tenant count,
        deduplicated graph bytes, per-monitor refresh counters).
    pending:
        Events buffered but not yet flushed, per tenant.
    top_k:
        Per-tenant current answers, present when the snapshot was taken
        with ``include_topk=True``.
    """

    tenants: tuple[TenantId, ...]
    queue: Mapping[str, int]
    shards: tuple[Mapping, ...]
    pending: Mapping[TenantId, int]
    top_k: Mapping[TenantId, object] | None = None


class RiskService:
    """Multi-tenant incremental top-k detection over one shared network.

    Parameters
    ----------
    graph:
        The base network snapshot every tenant monitors; treated as
        immutable from construction onward.
    mode, shards, monitor_defaults:
        Forwarded to :class:`~repro.serving.pool.ServingPool`.
    max_pending:
        Per-tenant backlog bound of the ingestion queue.
    """

    def __init__(
        self,
        graph: UncertainGraph,
        *,
        mode: str | None = None,
        shards: int | None = None,
        monitor_defaults: dict | None = None,
        max_pending: int = 4096,
    ) -> None:
        self._pool = ServingPool(
            graph,
            mode=mode,
            shards=shards,
            monitor_defaults=monitor_defaults,
        )
        self._queue = IngestionQueue(max_pending=max_pending)
        # Makes [drain the queue -> enqueue to worker shards] atomic, so
        # concurrent flush paths (the serve() pump, explicit flush(),
        # per-tenant query_topk drains) cannot reorder a tenant's
        # batches between queue exit and shard entry — the per-tenant
        # FIFO the monitors' serial-equivalence rests on.
        self._dispatch_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def pool(self) -> ServingPool:
        """The monitor pool executing tenant work."""
        return self._pool

    @property
    def queue(self) -> IngestionQueue:
        """The ingestion queue buffering tenant updates."""
        return self._queue

    def tenants(self) -> list[TenantId]:
        """Registered tenant ids."""
        return self._pool.tenants()

    # ------------------------------------------------------------------
    # Tenant lifecycle and traffic
    # ------------------------------------------------------------------
    def register_tenant(
        self, tenant_id: TenantId, k: int, **monitor_kwargs
    ) -> None:
        """Attach a tenant: a COW view of the snapshot plus a monitor."""
        self._ensure_open()
        self._pool.register(tenant_id, k, **monitor_kwargs)

    def submit_update(self, tenant_id: TenantId, event: UpdateEvent) -> None:
        """Buffer one update for *tenant_id* (applied at the next flush)."""
        self._ensure_open()
        if not self._pool.has_tenant(tenant_id):
            raise ReproError(f"unknown tenant {tenant_id!r}")
        self._queue.submit(tenant_id, event)

    def submit_updates(
        self, tenant_id: TenantId, events: Iterable[UpdateEvent]
    ) -> int:
        """Buffer a batch of updates; returns how many were accepted."""
        count = 0
        for event in events:
            self.submit_update(tenant_id, event)
            count += 1
        return count

    def flush(self) -> dict[TenantId, RefreshReport]:
        """Apply every buffered update batch; returns per-tenant reports.

        Batches are coalesced (last write per entity wins — provably
        state-equivalent to serial application) and dispatched to the
        tenants' shards concurrently; the call returns once every
        monitor has folded its batch in.
        """
        self._ensure_open()
        futures = self._dispatch_all()
        return {
            tenant_id: future.result()
            for tenant_id, future in futures.items()
        }

    def _dispatch_all(self) -> dict[TenantId, "object"]:
        """Atomically drain every backlog and enqueue it shard-side."""
        with self._dispatch_lock:
            batches = self._queue.drain()
            return {
                tenant_id: self._pool.apply(tenant_id, events)
                for tenant_id, events in batches.items()
                if events
            }

    def query_topk(self, tenant_id: TenantId, *, flush: bool = True):
        """The tenant's current top-k :class:`DetectionResult`.

        With ``flush=True`` (default) the tenant's own pending updates
        are applied first, so the answer reflects everything submitted
        for it before the call — read-your-writes without paying for
        other tenants' backlogs (their windows flush on their own
        schedule).
        """
        self._ensure_open()
        if flush:
            with self._dispatch_lock:
                events = self._queue.drain_tenant(tenant_id)
                future = (
                    self._pool.apply(tenant_id, events) if events else None
                )
            if future is not None:
                future.result()
        return self._pool.query(tenant_id).result()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self, *, include_topk: bool = False) -> ServiceSnapshot:
        """Telemetry snapshot; optionally includes per-tenant answers."""
        self._ensure_open()
        tenants = tuple(self._pool.tenants())
        top_k = None
        if include_topk:
            if self._queue.pending():
                self.flush()
            top_k = self._pool.query_all()
        return ServiceSnapshot(
            tenants=tenants,
            queue=self._queue.stats.as_dict(),
            shards=tuple(self._pool.stats()),
            pending={
                tenant_id: self._queue.pending(tenant_id)
                for tenant_id in tenants
            },
            top_k=top_k,
        )

    # ------------------------------------------------------------------
    # Async serving loop
    # ------------------------------------------------------------------
    async def serve(
        self,
        *,
        flush_interval: float = 0.05,
        stop: asyncio.Event | None = None,
    ) -> None:
        """Drain the ingestion queue on a timer until *stop* is set.

        Runs :meth:`IngestionQueue.pump` in ``flush=`` mode: each cycle
        performs the whole drain-and-dispatch under the service's
        dispatch lock (shared with :meth:`flush` and
        :meth:`query_topk`), so a request thread draining one tenant
        mid-cycle can never enqueue ahead of an already-drained earlier
        batch — per-tenant order is submission order, always.
        """

        async def flush_cycle() -> None:
            futures = self._dispatch_all()
            for future in futures.values():
                await asyncio.wrap_future(future)

        await self._queue.pump(
            flush=flush_cycle, flush_interval=flush_interval, stop=stop
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down (idempotent); buffered events are dropped."""
        if not self._closed:
            self._closed = True
            self._pool.shutdown()

    def _ensure_open(self) -> None:
        if self._closed:
            raise ReproError("service is closed")

    def __enter__(self) -> "RiskService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
