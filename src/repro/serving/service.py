"""RiskService — the serving layer's front door.

Ties the pieces together for callers like
:class:`~repro.system.pipeline.RiskControlCenter`:

* an :class:`~repro.serving.queue.IngestionQueue` absorbing per-tenant
  update traffic (windowed, last-write-wins coalescing, optional hard
  backpressure),
* a :class:`~repro.serving.pool.ServingPool` of per-tenant incremental
  monitors — each pool worker holds the base snapshot in a
  :class:`~repro.serving.store.GraphStore` and checks tenant views out
  of it copy-on-write, which is also where the per-worker memory
  telemetry in :meth:`RiskService.snapshot` comes from,
* and, with ``wal_dir=`` set, a durability layer: a
  :class:`~repro.persistence.wal.WriteAheadLog` of every coalesced
  batch (appended at flush time, *before* dispatch, so the durable
  order is exactly the order the monitors applied) plus rotated
  :class:`~repro.persistence.snapshots.SnapshotStore` snapshots of each
  monitor's full state.

The surface is synchronous-friendly — ``submit_update`` buffers, an
explicit :meth:`flush` applies, :meth:`query_topk` answers after all of
its tenant's submitted updates — while :meth:`serve` runs the timed
asyncio flush loop for a live deployment.  Every answer is the
incremental monitor's, hence bit-identical to a fresh BSR detection with
the tenant's parameters on the tenant's current graph state.

Durability and recovery
-----------------------
Constructing a :class:`RiskService` with a ``wal_dir`` that already
holds state *recovers* it: the latest snapshot's monitor blobs are
restored into the pool, tenants registered after that snapshot are
rebuilt from their durable registration records, and every WAL batch
past each tenant's snapshot watermark is replayed in durable order.
Monitors are deterministic functions of (base graph, seed, ordered
batch sequence), so the recovered process reaches the *bit-identical*
state — answers and work counters — the dead process would have had;
``tests/test_persistence_faults.py`` SIGKILLs a serving run mid-stream
to pin exactly that.  A torn WAL tail (a record cut short by the crash)
is truncated at the first bad checksum; everything before it recovers.

While a tenant's replay is still in flight, ``query_topk(...,
allow_stale=True)`` serves the last snapshot's answer flagged
``stale=True`` instead of blocking or erroring.  A shard worker that
dies (e.g. OOM-killed) is respawned with bounded retry/backoff and its
tenants are restored from snapshot + WAL replay transparently.
"""

from __future__ import annotations

import asyncio
import dataclasses
import hashlib
import json
import pickle
import threading
import time
from collections import OrderedDict
from concurrent.futures import BrokenExecutor, Future
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Mapping

from repro.core.errors import FencedError, ReproError
from repro.core.graph import UncertainGraph
from repro.queries.base import param_key
from repro.serving.pool import ServingPool
from repro.serving.queue import IngestionQueue
from repro.serving.store import graph_fingerprint
from repro.streaming.events import UpdateEvent
from repro.streaming.monitor import RefreshReport, TopKMonitor

__all__ = ["RiskService", "ServiceSnapshot", "PromotionState"]

TenantId = Hashable


@dataclass
class PromotionState:
    """Warm state a promoted replica hands to its new :class:`RiskService`.

    A replica that mirrored and applied the primary's WAL already holds
    live monitors; promotion adopts them instead of re-restoring from
    snapshot + full replay.  ``applied_upto`` is the last WAL batch seq
    the pool has folded in — construction replays only the durable
    suffix past it (the un-acked tail a shipper landed but the apply
    loop never reached) before the service accepts writes.
    """

    pool: ServingPool
    registered: dict[TenantId, tuple[int, dict]]
    applied_upto: int


@dataclass(frozen=True)
class ServiceSnapshot:
    """One consistent telemetry cut of a running service.

    Attributes
    ----------
    tenants:
        Registered tenant ids in registration order.
    queue:
        Ingestion-queue counters (submitted / flushed / coalesced-away …).
    shards:
        Per-shard worker statistics from the pool (pid, tenant count,
        deduplicated graph bytes, per-monitor refresh counters).
    pending:
        Events buffered but not yet flushed, per tenant.
    top_k:
        Per-tenant current answers, present when the snapshot was taken
        with ``include_topk=True``.
    durability:
        WAL / snapshot / recovery telemetry when the service is durable
        (``wal_dir`` configured), else ``None``.
    """

    tenants: tuple[TenantId, ...]
    queue: Mapping[str, int]
    shards: tuple[Mapping, ...]
    pending: Mapping[TenantId, int]
    top_k: Mapping[TenantId, object] | None = None
    durability: Mapping[str, object] | None = None


class RiskService:
    """Multi-tenant incremental top-k detection over one shared network.

    Parameters
    ----------
    graph:
        The base network snapshot every tenant monitors; treated as
        immutable from construction onward.
    mode, shards, monitor_defaults:
        Forwarded to :class:`~repro.serving.pool.ServingPool`.
    max_pending:
        Per-tenant backlog bound of the ingestion queue.
    overflow:
        The queue's full-backlog policy (``"wake"`` / ``"error"`` /
        ``"shed"``); see :class:`~repro.serving.queue.IngestionQueue`.
    wal_dir:
        Durability directory.  ``None`` (default) keeps the PR-4
        in-memory behaviour; a path makes the service durable — and, if
        the directory already holds a WAL/snapshots, *recovers* it (see
        the module docstring).
    degraded_answers:
        Keep a parent-side *bounds mirror* per tenant — a
        :class:`~repro.streaming.monitor.TopKMonitor` over a
        copy-on-write view of the base snapshot that absorbs every
        accepted event at submit time.  :meth:`query_degraded` then
        answers from the mirror's always-warm Eq-(1) iterates without
        queueing behind the tenant's shard backlog — the degraded path
        the SLO front end and ``allow_stale`` fall back to.  Costs one
        COW view plus an ``O((n + m) · z)`` bound evaluation per
        degraded answer; ``False`` disables mirrors entirely.
    result_cache_size:
        Capacity (entries) of the cross-tenant exact-answer cache.
        Tenants whose monitors share ``(k, kwargs)`` and whose event
        histories hash to the same state token share cached
        :class:`DetectionResult` objects — the frozen dataclass makes
        sharing safe, and monitors are deterministic functions of
        (base graph, params, event history), so a token hit is provably
        the bit-identical answer.  ``0`` disables the cache.
    fsync:
        WAL fsync policy (``"always"`` / ``"flush"`` / ``"never"``).
    snapshot_keep:
        Completed snapshots retained by rotation.
    snapshot_on_close:
        Write a final snapshot during a durable :meth:`close`, making
        the next recovery replay-free.
    """

    def __init__(
        self,
        graph: UncertainGraph,
        *,
        mode: str | None = None,
        shards: int | None = None,
        monitor_defaults: dict | None = None,
        max_pending: int = 4096,
        overflow: str = "wake",
        wal_dir=None,
        fsync: str = "flush",
        snapshot_keep: int = 2,
        snapshot_on_close: bool = True,
        degraded_answers: bool = True,
        result_cache_size: int = 128,
        adopt: PromotionState | None = None,
        epoch_store=None,
        node_id: str = "primary",
    ) -> None:
        if adopt is not None:
            # Promotion path: take over a replica's already-warm pool.
            self._pool = adopt.pool
        else:
            self._pool = ServingPool(
                graph,
                mode=mode,
                shards=shards,
                monitor_defaults=monitor_defaults,
            )
        self._monitor_defaults = dict(monitor_defaults or {})
        self._wal = None
        self._snapshots = None
        self._fingerprint = graph_fingerprint(graph)
        self._snapshot_on_close = bool(snapshot_on_close)
        #: tenant -> last replay future still in flight after recovery.
        self._recovering: dict[TenantId, Future] = {}
        #: tenant -> snapshot-time answer, served stale while replaying.
        self._stale_results: dict[TenantId, object] = {}
        #: tenant -> (k, kwargs) for rebuild-from-scratch healing.
        self._registered: dict[TenantId, tuple[int, dict]] = {}
        self._degraded_answers = bool(degraded_answers)
        #: tenant -> parent-side bounds mirror (see ``degraded_answers``).
        self._mirrors: dict[TenantId, TopKMonitor] = {}
        #: tenant -> sha256 state token over the accepted event history
        #: (``None`` = uncacheable: unknown history or unencodable event).
        self._tokens: dict[TenantId, str | None] = {}
        #: Serialises token advancement + mirror application with queue
        #: submission, so both track exactly the accepted event order.
        self._token_lock = threading.Lock()
        self._result_cache: OrderedDict = OrderedDict()
        self._result_cache_size = int(result_cache_size)
        self.cache_stats = {"hits": 0, "misses": 0}
        #: tenant -> most recent RefreshReport the parent observed.
        self._last_reports: dict[TenantId, RefreshReport] = {}
        #: name -> provider of JSON-serialisable sidecar state; called
        #: at snapshot time so auxiliary layers (e.g. the front end's
        #: admission cost model) persist alongside the monitor blobs.
        self._extras_providers: dict[str, Callable[[], object]] = {}
        #: Sidecar state carried by the snapshot this service recovered
        #: from (empty for a fresh or in-memory service).  Consumers
        #: read their entry back at attach time.
        self.recovered_extras: dict[str, object] = {}
        #: Fencing epoch this writer holds (0 = fencing disabled).
        self._epoch = 0
        self._epoch_store = epoch_store
        self._node_id = str(node_id)
        if adopt is not None and wal_dir is None:
            from repro.persistence.codec import PersistenceError

            raise PersistenceError("promotion adoption needs wal_dir=...")
        if wal_dir is not None:
            from repro.persistence.snapshots import SnapshotStore
            from repro.persistence.wal import WriteAheadLog

            self._wal = WriteAheadLog(wal_dir, fsync=fsync)
            self._snapshots = SnapshotStore(wal_dir, keep=snapshot_keep)
            if adopt is not None:
                self._adopt_recover(adopt)
            else:
                self._recover()
        if epoch_store is not None:
            # Claim a fresh epoch and stamp it into the WAL before the
            # first write: every batch this writer appends from here on
            # provably belongs to this epoch, and any older primary's
            # next fence check (at its next flush) will see it and
            # refuse to append.
            from repro.persistence.codec import PersistenceError

            if self._wal is None:
                raise PersistenceError(
                    "epoch fencing needs a durable service (wal_dir=...)"
                )
            self._epoch = int(epoch_store.claim(self._node_id))
            self._wal.append_epoch(self._epoch, self._node_id)
            self._wal.sync()
        self._queue = IngestionQueue(
            max_pending=max_pending, overflow=overflow, wal=self._wal
        )
        # Makes [drain the queue -> enqueue to worker shards] atomic, so
        # concurrent flush paths (the serve() pump, explicit flush(),
        # per-tenant query_topk drains) cannot reorder a tenant's
        # batches between queue exit and shard entry — the per-tenant
        # FIFO the monitors' serial-equivalence rests on.  WAL appends
        # happen inside the same critical section (the queue appends
        # while draining), so the durable order is the dispatch order.
        self._dispatch_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def pool(self) -> ServingPool:
        """The monitor pool executing tenant work."""
        return self._pool

    @property
    def queue(self) -> IngestionQueue:
        """The ingestion queue buffering tenant updates."""
        return self._queue

    @property
    def durable(self) -> bool:
        """Whether a write-ahead log is configured."""
        return self._wal is not None

    @property
    def wal(self):
        """The write-ahead log, or ``None`` for an in-memory service."""
        return self._wal

    @property
    def snapshot_store(self):
        """The snapshot store, or ``None`` for an in-memory service."""
        return self._snapshots

    @property
    def epoch(self) -> int:
        """The fencing epoch this writer holds (0 = fencing disabled)."""
        return self._epoch

    @property
    def node_id(self) -> str:
        """This process's node identity (used in epoch stamps)."""
        return self._node_id

    @property
    def durable_seq(self) -> int:
        """Last WAL batch sequence made durable (0 for in-memory)."""
        return 0 if self._wal is None else self._wal.next_seq - 1

    def _check_fence(self) -> None:
        """Refuse to append if a newer primary has claimed the epoch.

        Called inside every WAL-appending critical section.  There is a
        small check-then-append window (a claim landing between this
        read and the append); the replica-side epoch-stamp rejection in
        :mod:`repro.replication.replica` is the backstop that keeps
        such a batch out of the surviving lineage.
        """
        if self._epoch_store is None:
            return
        current = int(self._epoch_store.current().epoch)
        if current != self._epoch:
            raise FencedError(self._epoch, current)

    def tenants(self) -> list[TenantId]:
        """Registered tenant ids."""
        return self._pool.tenants()

    def recovering_tenants(self) -> list[TenantId]:
        """Tenants whose WAL replay has not yet completed."""
        return [
            tenant_id
            for tenant_id, future in self._recovering.items()
            if not future.done()
        ]

    # ------------------------------------------------------------------
    # Recovery (constructor path)
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Restore snapshot state and enqueue the WAL replay suffix."""
        from repro.persistence.codec import PersistenceError

        assert self._wal is not None and self._snapshots is not None
        watermarks: dict[TenantId, int] = {}
        # Read-pin while loading blobs: a concurrent rotation (another
        # thread's snapshot_to_disk, or an operator process sharing the
        # directory) cannot sweep this snapshot out from under us.
        with self._snapshots.pin_latest() as snapshot:
            if snapshot is not None:
                if (
                    snapshot.base_fingerprint is not None
                    and self._fingerprint is not None
                    and snapshot.base_fingerprint != self._fingerprint
                ):
                    raise PersistenceError(
                        f"snapshot {snapshot.path} was taken against a "
                        "different base graph (fingerprint mismatch); "
                        "durable state cannot be replayed onto this network"
                    )
                for tenant_snapshot in snapshot.tenants.values():
                    tenant_id = tenant_snapshot.tenant_id
                    blob = tenant_snapshot.load_state_blob()
                    self._pool.restore_tenant(tenant_id, blob)
                    watermarks[tenant_id] = tenant_snapshot.watermark
                    self._stale_results[tenant_id] = (
                        tenant_snapshot.load_result()
                    )
                    # The snapshot blob is the pickled monitor itself —
                    # unpickling it parent-side gives an exact bounds
                    # mirror at the snapshot watermark (replay advances
                    # it below).  Event-history tokens don't survive a
                    # crash, so the tenant rejoins the result cache only
                    # after a restart of its token chain; answers stay
                    # exact regardless.
                    if self._degraded_answers:
                        self._mirrors[tenant_id] = pickle.loads(blob)
                    self._tokens[tenant_id] = None
                self.recovered_extras = dict(snapshot.extras or {})
        for batch in self._wal.read_batches():
            if batch.kind == "epoch":
                # A previous lineage's fence stamp; recovery replays
                # the batches regardless of which epoch wrote them —
                # they were all accepted by the then-legitimate primary.
                continue
            if batch.kind == "register":
                register = batch.register or {}
                k = int(register.get("k", 1))
                kwargs = dict(register.get("kwargs", {}))
                self._registered[batch.tenant_id] = (k, kwargs)
                if not self._pool.has_tenant(batch.tenant_id):
                    self._pool.register(batch.tenant_id, k, **kwargs)
                    self._make_mirror(batch.tenant_id, k, kwargs)
                    self._tokens[batch.tenant_id] = self._fingerprint
                continue
            if batch.seq <= watermarks.get(batch.tenant_id, 0):
                continue  # already folded into the snapshot blob
            if not self._pool.has_tenant(batch.tenant_id):
                raise PersistenceError(
                    f"WAL batch {batch.seq} addresses tenant "
                    f"{batch.tenant_id!r} with neither a snapshot nor a "
                    "registration record — the log is inconsistent"
                )
            self._recovering[batch.tenant_id] = self._pool.apply(
                batch.tenant_id, list(batch.events)
            )
            for event in batch.events:
                self._track_event(batch.tenant_id, event)

    def _adopt_recover(self, adopt: PromotionState) -> None:
        """Promotion: keep the warm pool, replay only the un-acked tail.

        The adopted pool already applied every batch up to
        ``adopt.applied_upto``; batches past it (durable on the mirror
        but never handed to the apply loop) are replayed synchronously
        here, so by the time construction returns the service answers
        from the complete durable history — the "replays its un-acked
        WAL suffix before accepting writes" promotion contract.
        """
        from repro.persistence.codec import PersistenceError

        assert self._wal is not None
        self._registered = dict(adopt.registered)
        for batch in self._wal.read_batches():
            if batch.kind == "epoch":
                continue
            if batch.kind == "register":
                register = batch.register or {}
                k = int(register.get("k", 1))
                kwargs = dict(register.get("kwargs", {}))
                self._registered.setdefault(batch.tenant_id, (k, kwargs))
                if not self._pool.has_tenant(batch.tenant_id):
                    self._pool.register(batch.tenant_id, k, **kwargs)
                continue
            if batch.seq <= adopt.applied_upto:
                continue
            if not self._pool.has_tenant(batch.tenant_id):
                raise PersistenceError(
                    f"WAL batch {batch.seq} addresses tenant "
                    f"{batch.tenant_id!r} unknown to the adopted pool"
                )
            self._pool.apply(batch.tenant_id, list(batch.events)).result()
        # Rebuild parent-side mirrors from the live monitors so the
        # degraded/bounds path works immediately after promotion; the
        # token chain restarts (like post-crash recovery), so these
        # tenants rejoin the result cache on their next quiet period.
        for tenant_id in self._pool.tenants():
            self._tokens[tenant_id] = None
            if self._degraded_answers:
                blob, _ = self._pool.dump_tenant(tenant_id).result()
                self._mirrors[tenant_id] = pickle.loads(blob)

    def _await_recovery(self) -> None:
        """Block until every tenant's replay has been applied."""
        for tenant_id, future in list(self._recovering.items()):
            self._result_after_break(tenant_id, future)
            self._recovering.pop(tenant_id, None)
            self._stale_results.pop(tenant_id, None)

    # ------------------------------------------------------------------
    # Bounds mirrors and state tokens (degraded path + result cache)
    # ------------------------------------------------------------------
    def _make_mirror(
        self, tenant_id: TenantId, k: int, monitor_kwargs: dict
    ) -> None:
        """Build the tenant's parent-side bounds mirror, if enabled."""
        if not self._degraded_answers:
            return
        merged = {**self._monitor_defaults, **monitor_kwargs}
        self._mirrors[tenant_id] = TopKMonitor(
            self._pool.checkout_base(), k, **merged
        )

    def _track_event(self, tenant_id: TenantId, event: UpdateEvent) -> None:
        """Fold one accepted event into the mirror and the state token.

        Called with the accepted-order already fixed (under
        ``_token_lock`` on the live path; single-threaded during
        recovery).  An event the mirror rejects (it validates against
        its own graph) only disables that mirror — the exact path is
        untouched, and a half-applied mirror is never served.
        """
        mirror = self._mirrors.get(tenant_id)
        if mirror is not None:
            try:
                mirror.apply([event])
            except ReproError:
                del self._mirrors[tenant_id]
        token = self._tokens.get(tenant_id)
        if token is not None:
            from repro.persistence.codec import PersistenceError, encode_event

            try:
                payload = encode_event(event)
            except (PersistenceError, ReproError, TypeError, ValueError):
                # Unencodable event: the history can no longer be
                # fingerprinted, so the tenant leaves the result cache.
                self._tokens[tenant_id] = None
            else:
                self._tokens[tenant_id] = hashlib.sha256(
                    token.encode("ascii") + payload
                ).hexdigest()

    def _monitor_key(self, tenant_id: TenantId) -> str | None:
        """Hashable digest of the tenant's effective monitor parameters."""
        registered = self._registered.get(tenant_id)
        if registered is None:
            return None
        k, kwargs = registered
        merged = {**self._monitor_defaults, **kwargs}
        return repr((int(k), sorted((str(key), repr(value)) for key, value in merged.items())))

    def query_degraded(self, tenant_id: TenantId, *, stale: bool = False):
        """A *degraded* bounds-only answer from the tenant's mirror.

        Never waits on the tenant's shard: the mirror lives in this
        process and already holds every accepted event, so the answer
        costs one Eq-(1) bound evaluation (cached between updates) no
        matter how deep the shard backlog is.  Flagged
        ``degraded=True`` (and ``stale=True`` when requested — the
        recovery path marks replay-lagged answers).  Returns ``None``
        when the tenant has no usable mirror (mirrors disabled, or the
        mirror was dropped after an unapplicable event).
        """
        self._ensure_open()
        if not self._pool.has_tenant(tenant_id):
            raise ReproError(f"unknown tenant {tenant_id!r}")
        with self._token_lock:
            mirror = self._mirrors.get(tenant_id)
            if mirror is None:
                return None
            result = mirror.bounds_topk()
        if stale:
            result = dataclasses.replace(result, stale=True)
        return result

    def last_report(self, tenant_id: TenantId) -> RefreshReport | None:
        """The most recent refresh report observed for *tenant_id*.

        Parent-side cache fed by every resolved flush/query future — the
        front end's cost model reads it without touching the shard FIFO.
        ``None`` until the tenant's first flushed batch.
        """
        return self._last_reports.get(tenant_id)

    # ------------------------------------------------------------------
    # Tenant lifecycle and traffic
    # ------------------------------------------------------------------
    def register_tenant(
        self, tenant_id: TenantId, k: int, **monitor_kwargs
    ) -> None:
        """Attach a tenant: a COW view of the snapshot plus a monitor.

        On a durable service the registration itself is WAL-logged (and
        its arguments must be JSON-serialisable), so a tenant created
        after the last snapshot still recovers.
        """
        self._ensure_open()
        if self._wal is not None:
            from repro.persistence.codec import PersistenceError

            try:
                json.dumps(monitor_kwargs)
            except (TypeError, ValueError) as error:
                raise PersistenceError(
                    "durable tenants need JSON-serialisable monitor "
                    f"kwargs: {error}"
                ) from None
        self._check_fence()
        self._pool.register(tenant_id, k, **monitor_kwargs)
        self._registered[tenant_id] = (int(k), dict(monitor_kwargs))
        self._make_mirror(tenant_id, int(k), dict(monitor_kwargs))
        self._tokens[tenant_id] = self._fingerprint
        if self._wal is not None:
            self._wal.append_register(tenant_id, int(k), monitor_kwargs)
            self._wal.sync()

    def submit_update(self, tenant_id: TenantId, event: UpdateEvent) -> bool:
        """Buffer one update for *tenant_id* (applied at the next flush).

        Returns whether the event was accepted — only ever ``False``
        under the queue's ``overflow="shed"`` policy with a full
        backlog; the ``"error"`` policy raises
        :class:`~repro.core.errors.BackpressureError` instead.
        """
        self._ensure_open()
        if not self._pool.has_tenant(tenant_id):
            raise ReproError(f"unknown tenant {tenant_id!r}")
        # One critical section covers queue admission, mirror
        # application and token advancement, so all three agree on the
        # accepted event order (shed events touch none of them).
        with self._token_lock:
            accepted = self._queue.submit(tenant_id, event)
            if accepted:
                self._track_event(tenant_id, event)
        return accepted

    def submit_updates(
        self, tenant_id: TenantId, events: Iterable[UpdateEvent]
    ) -> int:
        """Buffer a batch of updates; returns how many were accepted."""
        count = 0
        for event in events:
            if self.submit_update(tenant_id, event):
                count += 1
        return count

    def submit_and_sync(self, tenant_id: TenantId, event: UpdateEvent) -> int:
        """Accept one update and make it durable before returning.

        The write path behind durable acks: the event is admitted,
        drained into a coalesced batch, WAL-appended and fsynced (per
        the service's fsync policy) inside the dispatch critical
        section, then applied.  Returns the WAL batch sequence the
        event became durable under — the number replication acks are
        phrased in — or ``-1`` if the queue shed it.

        Raises :class:`~repro.core.errors.FencedError` on a deposed
        primary: the event stays buffered but is provably never made
        durable by this writer.
        """
        self._ensure_open()
        if self._wal is None:
            from repro.persistence.codec import PersistenceError

            raise PersistenceError(
                "submit_and_sync needs a durable service (wal_dir=...)"
            )
        if not self.submit_update(tenant_id, event):
            return -1
        with self._dispatch_lock:
            self._check_fence()
            events = self._queue.drain_tenant(tenant_id)
            future = (
                self._apply_after_break(tenant_id, events) if events else None
            )
            seq = self._wal.last_seq_of.get(tenant_id, 0)
        if events:
            self._result_after_break(tenant_id, future)
        return seq

    def flush(self) -> dict[TenantId, RefreshReport]:
        """Apply every buffered update batch; returns per-tenant reports.

        Batches are coalesced (last write per entity wins — provably
        state-equivalent to serial application), WAL-appended when the
        service is durable, and dispatched to the tenants' shards
        concurrently; the call returns once every monitor has folded
        its batch in.  A shard whose worker died is healed (respawn +
        restore from durable state, which includes the just-logged
        batches) before the call returns.
        """
        self._ensure_open()
        futures = self._dispatch_all()
        return {
            tenant_id: self._result_after_break(tenant_id, future)
            for tenant_id, future in futures.items()
        }

    def _dispatch_all(self) -> dict[TenantId, "Future | None"]:
        """Atomically drain every backlog and enqueue it shard-side.

        A ``None`` future marks a tenant whose shard was broken at
        dispatch time and healed in place (the heal's WAL replay covers
        the drained batch — it was appended before dispatch).
        """
        with self._dispatch_lock:
            self._check_fence()
            batches = self._queue.drain()
            return {
                tenant_id: self._apply_after_break(tenant_id, events)
                for tenant_id, events in batches.items()
                if events
            }

    def _apply_after_break(
        self, tenant_id: TenantId, events: list
    ) -> "Future | None":
        try:
            return self._pool.apply(tenant_id, events)
        except BrokenExecutor:
            if self._wal is None:
                raise
            # The batch is already durable (drained -> WAL-appended),
            # so healing replays it; nothing is re-dispatched.
            self._heal_shard(self._pool.shard_index(tenant_id))
            return None

    def _result_after_break(self, tenant_id: TenantId, future: "Future | None"):
        """Resolve one shard future, healing a dead worker if durable."""
        if future is None:
            return self._observe(
                tenant_id, self._pool.last_report(tenant_id).result()
            )
        try:
            return self._observe(tenant_id, future.result())
        except BrokenExecutor:
            if self._wal is None:
                raise
            index = self._pool.shard_index(tenant_id)
            if not self._pool.shard_alive(index):
                self._heal_shard(index)
            # The submitted work either applied before the crash (then
            # the heal's snapshot/replay state includes it) or it never
            # ran (then it was durable and the replay applied it).
            # Either way the monitor is current; serve its last report.
            return self._observe(
                tenant_id, self._pool.last_report(tenant_id).result()
            )

    def _observe(self, tenant_id: TenantId, outcome):
        """Cache refresh telemetry as it flows back from the shards."""
        if isinstance(outcome, RefreshReport):
            self._last_reports[tenant_id] = outcome
        return outcome

    def _heal_shard(self, index: int) -> None:
        """Respawn a dead shard and restore its tenants from durable state."""
        assert self._wal is not None and self._snapshots is not None
        self._pool.respawn_shard(index)
        batches = self._wal.read_batches()
        with self._snapshots.pin_latest() as snapshot:
            for tenant_id in self._pool.tenants_on_shard(index):
                watermark = 0
                tenant_snapshot = (
                    snapshot.tenants.get(tenant_id) if snapshot else None
                )
                if tenant_snapshot is not None:
                    self._pool.restore_tenant(
                        tenant_id, tenant_snapshot.load_state_blob()
                    )
                    watermark = tenant_snapshot.watermark
                else:
                    k, kwargs = self._registered[tenant_id]
                    self._pool.rebuild_tenant(tenant_id, k, **kwargs)
                for batch in batches:
                    if (
                        batch.kind == "events"
                        and batch.tenant_id == tenant_id
                        and batch.seq > watermark
                    ):
                        self._pool.apply(
                            tenant_id, list(batch.events)
                        ).result()
                self._recovering.pop(tenant_id, None)

    def query_topk(
        self,
        tenant_id: TenantId,
        *,
        flush: bool = True,
        allow_stale: bool = False,
    ):
        """The tenant's current top-k :class:`DetectionResult`.

        With ``flush=True`` (default) the tenant's own pending updates
        are applied first, so the answer reflects everything submitted
        for it before the call — read-your-writes without paying for
        other tenants' backlogs (their windows flush on their own
        schedule).

        While the tenant is still replaying its WAL after a recovery,
        ``allow_stale=True`` returns the last snapshot's answer flagged
        ``stale=True`` immediately instead of waiting for the replay —
        graceful degradation for latency-bound callers.  A tenant that
        has *no* snapshot-time answer (registered after the last
        snapshot, so it recovers from its registration record alone)
        gets the next-best non-blocking answer instead: the bounds
        mirror's current ranking, flagged both ``degraded`` and
        ``stale``.  Only when neither exists does ``allow_stale=True``
        wait for the replay.
        """
        self._ensure_open()
        replay = self._recovering.get(tenant_id)
        if replay is not None:
            if not replay.done() and allow_stale:
                stale = self._stale_results.get(tenant_id)
                if stale is not None:
                    return dataclasses.replace(stale, stale=True)
                degraded = self.query_degraded(tenant_id, stale=True)
                if degraded is not None:
                    return degraded
            self._result_after_break(tenant_id, replay)
            self._recovering.pop(tenant_id, None)
            self._stale_results.pop(tenant_id, None)
        if flush:
            with self._dispatch_lock:
                self._check_fence()
                events = self._queue.drain_tenant(tenant_id)
                future = (
                    self._apply_after_break(tenant_id, events)
                    if events
                    else None
                )
            if events:
                self._result_after_break(tenant_id, future)
        # Cross-tenant result cache: tenants with identical parameters
        # and token-equal accepted histories provably hold bit-identical
        # answers (monitors are deterministic), so the second one is a
        # dictionary lookup.  Eligible only when nothing is pending for
        # the tenant — with ``flush=False`` and a backlog, the exact
        # answer deliberately lags the token.
        cache_key = None
        if self._result_cache_size > 0:
            with self._token_lock:
                token = self._tokens.get(tenant_id)
                pending = self._queue.pending(tenant_id)
            monitor_key = self._monitor_key(tenant_id)
            if token is not None and monitor_key is not None and not pending:
                # The family tag keeps top-k entries disjoint from
                # query_family entries sharing the same state token.
                cache_key = (token, "topk", monitor_key)
                cached = self._result_cache.get(cache_key)
                if cached is not None:
                    self.cache_stats["hits"] += 1
                    self._result_cache.move_to_end(cache_key)
                    return cached
                self.cache_stats["misses"] += 1
        try:
            result = self._pool.query(tenant_id).result()
        except BrokenExecutor:
            if self._wal is None:
                raise
            self._heal_shard(self._pool.shard_index(tenant_id))
            result = self._pool.query(tenant_id).result()
        if cache_key is not None:
            with self._token_lock:
                unchanged = self._tokens.get(tenant_id) == cache_key[0]
            # A submit that raced the query would make the token newer
            # than the answer; only a quiescent tenant populates the
            # cache.
            if unchanged:
                self._result_cache[cache_key] = result
                self._result_cache.move_to_end(cache_key)
                while len(self._result_cache) > self._result_cache_size:
                    self._result_cache.popitem(last=False)
        return result

    def query_family(
        self,
        tenant_id: TenantId,
        family: str,
        *,
        params: Mapping | None = None,
        flush: bool = True,
    ):
        """Answer one registered query *family* over the tenant's worlds.

        Same read-your-writes contract as :meth:`query_topk` (the
        tenant's own backlog is flushed first by default), same
        cross-tenant result cache — keyed additionally by ``(family,
        params)``, so a ``kcore`` answer can never be served for a
        ``reliability`` request even when the state tokens match.  The
        shard-side monitor runs every family against **one** shared
        repaired world set, so a burst of family queries between
        updates costs one sampling pass, not one per query.

        Returns the family's :class:`~repro.queries.base.QueryResult`.
        """
        self._ensure_open()
        params = dict(params or {})
        family = str(family)
        replay = self._recovering.get(tenant_id)
        if replay is not None:
            self._result_after_break(tenant_id, replay)
            self._recovering.pop(tenant_id, None)
            self._stale_results.pop(tenant_id, None)
        if flush:
            with self._dispatch_lock:
                self._check_fence()
                events = self._queue.drain_tenant(tenant_id)
                future = (
                    self._apply_after_break(tenant_id, events)
                    if events
                    else None
                )
            if events:
                self._result_after_break(tenant_id, future)
        cache_key = None
        if self._result_cache_size > 0:
            with self._token_lock:
                token = self._tokens.get(tenant_id)
                pending = self._queue.pending(tenant_id)
            monitor_key = self._monitor_key(tenant_id)
            if token is not None and monitor_key is not None and not pending:
                cache_key = (token, family, param_key(params), monitor_key)
                cached = self._result_cache.get(cache_key)
                if cached is not None:
                    self.cache_stats["hits"] += 1
                    self._result_cache.move_to_end(cache_key)
                    return cached
                self.cache_stats["misses"] += 1
        try:
            result = self._pool.query_family(
                tenant_id, family, params
            ).result()
        except BrokenExecutor:
            if self._wal is None:
                raise
            self._heal_shard(self._pool.shard_index(tenant_id))
            result = self._pool.query_family(
                tenant_id, family, params
            ).result()
        if cache_key is not None:
            with self._token_lock:
                unchanged = self._tokens.get(tenant_id) == cache_key[0]
            if unchanged:
                self._result_cache[cache_key] = result
                self._result_cache.move_to_end(cache_key)
                while len(self._result_cache) > self._result_cache_size:
                    self._result_cache.popitem(last=False)
        return result

    # ------------------------------------------------------------------
    # Durable snapshots
    # ------------------------------------------------------------------
    def register_extras_provider(
        self, name: str, provider: Callable[[], object]
    ) -> None:
        """Persist auxiliary layer state alongside monitor snapshots.

        *provider* is called at :meth:`snapshot_to_disk` time and must
        return JSON-serialisable state; it lands in the snapshot
        manifest under *name* and resurfaces in
        :attr:`recovered_extras` after the next recovery.  Used by the
        SLO front end to carry its EWMA admission cost model across
        restarts.  Re-registering a name replaces its provider.
        """
        self._extras_providers[str(name)] = provider

    def snapshot_to_disk(self):
        """Write one rotated snapshot of every tenant; truncate the WAL.

        Never blocks or drops live tenant streams: submissions keep
        landing in the ingestion queue throughout, and each tenant's
        state dump is just one more task on its shard's FIFO — ordered
        after the applies already dispatched, before those that follow.
        The WAL is rotated inside the same dispatch critical section
        that fixes the watermarks, so sealed segments contain exactly
        the batches the snapshot covers; they are deleted once the
        snapshot directory is atomically published (temp + rename).

        Returns the published
        :class:`~repro.persistence.snapshots.Snapshot`.
        """
        from repro.persistence.codec import PersistenceError

        self._ensure_open()
        if self._wal is None or self._snapshots is None:
            raise PersistenceError(
                "snapshot_to_disk needs a durable service (wal_dir=...)"
            )
        self._await_recovery()
        with self._dispatch_lock:
            wal_seq = self._wal.next_seq - 1
            tenant_ids = self._pool.tenants()
            watermarks = {
                tenant_id: self._wal.last_seq_of.get(tenant_id, 0)
                for tenant_id in tenant_ids
            }
            futures = {
                tenant_id: self._pool.dump_tenant(tenant_id)
                for tenant_id in tenant_ids
            }
            self._wal.rotate()
        tenants: dict[TenantId, tuple[bytes, object, int]] = {}
        for tenant_id, future in futures.items():
            blob, result = self._result_after_break(tenant_id, future)
            tenants[tenant_id] = (blob, result, watermarks[tenant_id])
        extras = {}
        for name, provider in self._extras_providers.items():
            try:
                extras[name] = provider()
            except Exception:
                # A failing sidecar provider must not block durability
                # of the monitor state; its entry is simply absent.
                continue
        published = self._snapshots.write(
            tenants,
            wal_seq=wal_seq,
            base_fingerprint=self._fingerprint,
            extras=extras or None,
        )
        self._wal.truncate_upto(
            min(watermarks.values(), default=wal_seq)
        )
        return published

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self, *, include_topk: bool = False) -> ServiceSnapshot:
        """Telemetry snapshot; optionally includes per-tenant answers."""
        self._ensure_open()
        tenants = tuple(self._pool.tenants())
        top_k = None
        if include_topk:
            if self._queue.pending():
                self.flush()
            top_k = self._pool.query_all()
        durability = None
        if self._wal is not None:
            durability = {
                "wal_dir": str(self._wal.directory),
                "wal_segments": len(self._wal.segment_paths),
                "next_seq": self._wal.next_seq,
                "recovering": self.recovering_tenants(),
            }
        return ServiceSnapshot(
            tenants=tenants,
            queue=self._queue.stats.as_dict(),
            shards=tuple(self._pool.stats()),
            pending={
                tenant_id: self._queue.pending(tenant_id)
                for tenant_id in tenants
            },
            top_k=top_k,
            durability=durability,
        )

    # ------------------------------------------------------------------
    # Async serving loop
    # ------------------------------------------------------------------
    async def serve(
        self,
        *,
        flush_interval: float = 0.05,
        stop: asyncio.Event | None = None,
        snapshot_interval: float | None = None,
    ) -> None:
        """Drain the ingestion queue on a timer until *stop* is set.

        Runs :meth:`IngestionQueue.pump` in ``flush=`` mode: each cycle
        performs the whole drain-and-dispatch under the service's
        dispatch lock (shared with :meth:`flush` and
        :meth:`query_topk`), so a request thread draining one tenant
        mid-cycle can never enqueue ahead of an already-drained earlier
        batch — per-tenant order is submission order, always.

        With ``snapshot_interval`` set (durable services only), the
        pump also rotates a disk snapshot every that-many seconds.
        """
        if snapshot_interval is not None and self._wal is None:
            raise ReproError(
                "snapshot_interval needs a durable service (wal_dir=...)"
            )
        last_snapshot = time.monotonic()

        async def flush_cycle() -> None:
            nonlocal last_snapshot
            futures = self._dispatch_all()
            for tenant_id, future in futures.items():
                if future is None:
                    continue
                try:
                    await asyncio.wrap_future(future)
                except BrokenExecutor:
                    if self._wal is None:
                        raise
                    index = self._pool.shard_index(tenant_id)
                    if not self._pool.shard_alive(index):
                        self._heal_shard(index)
            if (
                snapshot_interval is not None
                and time.monotonic() - last_snapshot >= snapshot_interval
            ):
                self.snapshot_to_disk()
                last_snapshot = time.monotonic()

        await self._queue.pump(
            flush=flush_cycle, flush_interval=flush_interval, stop=stop
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the service down (idempotent).

        An in-memory service keeps the PR-4 contract: buffered events
        are dropped.  A durable service must not drop accepted traffic:
        pending events are drained, WAL-appended, and applied, then (by
        default) a final snapshot is rotated out so the next recovery
        is replay-free; only then do the workers stop.
        """
        if self._closed:
            return
        if self._wal is not None:
            try:
                self._await_recovery()
                self.flush()
                if self._snapshot_on_close and self._pool.tenants():
                    self.snapshot_to_disk()
            except FencedError:
                # A deposed primary closing down: its buffered events
                # were never acked by the new lineage and must NOT be
                # made durable — dropping them here is the fence doing
                # its job, not data loss.
                pass
            finally:
                self._closed = True
                self._wal.close()
                self._pool.shutdown()
            return
        self._closed = True
        self._pool.shutdown()

    def _ensure_open(self) -> None:
        if self._closed:
            raise ReproError("service is closed")

    def __enter__(self) -> "RiskService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
