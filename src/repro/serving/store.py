"""Shared-snapshot graph store — one base graph, many COW tenants.

A :class:`GraphStore` owns immutable *base snapshots* of guarantee
networks and hands out copy-on-write tenant views
(:meth:`~repro.core.graph.UncertainGraph.share_view`): a checkout shares
the snapshot's label maps, attribute columns, and CSR topology, so a
pool of per-portfolio monitors over one 50k-node network holds roughly
one graph's worth of topology in memory instead of one per tenant.
Each tenant may then drift independently — its probability patches fork
only the columns it actually touches.

The store also measures what the sharing achieves:
:func:`unique_buffer_bytes` sums backing-array sizes *deduplicated by
object identity* across any set of graphs, and
:meth:`GraphStore.memory_report` compares that against the naive
one-copy-per-tenant cost.
"""

from __future__ import annotations

import hashlib
import weakref
from dataclasses import dataclass

import numpy as np

from repro.core.errors import GraphError
from repro.core.graph import UncertainGraph

__all__ = [
    "GraphStore",
    "StoreMemoryReport",
    "unique_buffer_bytes",
    "graph_fingerprint",
]


def graph_fingerprint(graph: UncertainGraph) -> str:
    """Content hash of a graph's labels, topology, and probabilities.

    Two graphs with equal labels (in index order), equal edge arrays,
    and bit-equal probability columns share a fingerprint.  The durable
    serving layer stamps it into snapshot manifests so recovery can
    refuse a ``wal_dir`` that was written against a *different* base
    network — replaying a loan book's WAL onto the wrong graph would
    silently produce well-formed nonsense.
    """
    digest = hashlib.sha256()
    digest.update(f"n={graph.num_nodes};m={graph.num_edges};".encode())
    for label in graph.labels():
        digest.update(repr(label).encode("utf-8", "backslashreplace"))
        digest.update(b"\x00")
    digest.update(np.ascontiguousarray(graph.self_risk_array, "<f8"))
    src, dst, probs = graph.edge_array
    digest.update(np.ascontiguousarray(src, "<i8"))
    digest.update(np.ascontiguousarray(dst, "<i8"))
    digest.update(np.ascontiguousarray(probs, "<f8"))
    return digest.hexdigest()


def unique_buffer_bytes(graphs) -> int:
    """Total bytes of the distinct ndarrays backing *graphs*.

    Arrays shared between graphs (same object, as :meth:`share_view`
    arranges) count once — the store's actual resident footprint, up to
    numpy view bookkeeping.
    """
    seen: dict[int, int] = {}
    for graph in graphs:
        for array in graph.storage_arrays():
            base = array if array.base is None else array.base
            seen[id(base)] = int(base.nbytes)
    return sum(seen.values())


@dataclass(frozen=True)
class StoreMemoryReport:
    """Footprint of one snapshot and its live checkouts.

    ``shared_bytes`` is the deduplicated total across the base graph and
    every checkout; ``naive_bytes`` is what the same tenants would hold
    if each checkout were a full :meth:`~UncertainGraph.copy`;
    ``dedup_ratio`` is their quotient (≥ 1 means sharing is winning).
    """

    snapshot: str
    checkouts: int
    shared_bytes: int
    naive_bytes: int

    @property
    def dedup_ratio(self) -> float:
        """Naive-over-shared footprint ratio."""
        return self.naive_bytes / max(self.shared_bytes, 1)


class GraphStore:
    """Named immutable snapshots with copy-on-write checkouts.

    Usage::

        store = GraphStore()
        store.put("loans-2026-07", graph)
        tenant_graph = store.checkout("loans-2026-07")

    The stored base is treated as frozen: the store never mutates it,
    and because :meth:`share_view` converts the base's own columns to
    copy-on-write, even an outside holder writing through the original
    reference cannot corrupt existing checkouts.  Checkout is cheap —
    O(1) buffer adoption plus one 2 m float64 copy for the in-place
    patchable CSR probability columns.
    """

    def __init__(self) -> None:
        self._snapshots: dict[str, UncertainGraph] = {}
        # Weak references: the store observes checkouts for telemetry
        # but never keeps a departed tenant's forked columns alive.
        self._checkouts: dict[str, list[weakref.ref]] = {}

    def put(self, name: str, graph: UncertainGraph) -> None:
        """Register *graph* as snapshot *name* (names are write-once)."""
        if name in self._snapshots:
            raise GraphError(f"snapshot {name!r} already exists")
        # Build the CSR views once, up front: every checkout then shares
        # them instead of racing to build its own.
        graph.out_csr()
        graph.in_csr()
        self._snapshots[name] = graph
        self._checkouts[name] = []

    def names(self) -> list[str]:
        """Registered snapshot names, insertion-ordered."""
        return list(self._snapshots)

    def base(self, name: str) -> UncertainGraph:
        """The frozen base graph of snapshot *name* (do not mutate)."""
        try:
            return self._snapshots[name]
        except KeyError:
            raise GraphError(f"unknown snapshot {name!r}") from None

    def checkout(self, name: str) -> UncertainGraph:
        """A fresh copy-on-write tenant view of snapshot *name*."""
        view = self.base(name).share_view()
        self._checkouts[name].append(weakref.ref(view))
        return view

    def _live_checkouts(self, name: str) -> list[UncertainGraph]:
        """Still-referenced checkouts of *name* (dead refs pruned)."""
        self.base(name)
        views: list[UncertainGraph] = []
        refs: list[weakref.ref] = []
        for ref in self._checkouts[name]:
            view = ref()
            if view is not None:
                views.append(view)
                refs.append(ref)
        self._checkouts[name] = refs
        return views

    def checkout_count(self, name: str) -> int:
        """Live checkouts handed out for snapshot *name*."""
        return len(self._live_checkouts(name))

    def memory_report(self, name: str) -> StoreMemoryReport:
        """Measured vs naive footprint of *name* and its live checkouts."""
        base = self.base(name)
        views = self._live_checkouts(name)
        graphs = [base, *views]
        shared = unique_buffer_bytes(graphs)
        per_copy = unique_buffer_bytes([base])
        naive = per_copy * len(graphs)
        return StoreMemoryReport(
            snapshot=name,
            checkouts=len(views),
            shared_bytes=shared,
            naive_bytes=naive,
        )
