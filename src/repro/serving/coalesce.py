"""Last-write-wins coalescing of update-event batches.

The ingestion queue buffers events inside a flush window; before a batch
reaches a monitor, same-entity updates collapse to the final write.  The
contract is *serial equivalence*: for any sequence of valid events,
applying :func:`coalesce_events`' output in order leaves a graph in
exactly the state the original sequence would — the monitor's dirty
bookkeeping is keyed by entity (first old value wins, the graph holds
the last written value), so the downstream refresh is bit-identical too
(``tests/test_streaming.py`` pins this).

Rules
-----
* Per-entity events (:class:`~repro.streaming.events.SelfRiskUpdate`,
  :class:`~repro.streaming.events.EdgeProbabilityUpdate`) are keyed by
  node label / edge endpoints; a later write to the same key replaces
  the earlier one and takes the later position in the batch.
* A bulk event overwrites every entity of its type, so it absorbs all
  earlier per-entity events of that type (and any earlier bulk); events
  arriving after it stay after it.
* Events of different types and different entities commute — each graph
  setter touches only its own entity — so reordering across keys cannot
  change the final state.
* Topology events (:class:`~repro.streaming.events.NodeAdd`,
  :class:`~repro.streaming.events.EdgeAdd`) are **never coalesced**:
  each occurrence keeps its position in the output.  Growth is
  append-only and index-assigning, so collapsing or reordering adds
  would change entity numbering (and would turn a structurally invalid
  sequence — a duplicate add — into a valid one).  A bulk event does
  not absorb topology adds either: a bulk vector sized for the grown
  graph must still apply *after* the adds that grew it.  Probability
  writes to an entity added earlier in the same window stay after the
  add for the same reason (dict insertion order preserves the add's
  earlier slot).

The equivalence holds for *valid* sequences.  A serial batch is not
transactional (a mid-batch validation error leaves earlier events
applied); coalescing only ever validates the surviving final writes, so
an invalid intermediate value that a later write would have shadowed is
skipped rather than raised.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.core.errors import GraphError
from repro.streaming.events import (
    BulkEdgeProbabilityUpdate,
    BulkSelfRiskUpdate,
    EdgeAdd,
    EdgeProbabilityUpdate,
    NodeAdd,
    SelfRiskUpdate,
    UpdateEvent,
)

__all__ = ["coalesce_events", "event_key"]

_BULK_NODE = ("bulk", "node")
_BULK_EDGE = ("bulk", "edge")


def event_key(event: UpdateEvent) -> tuple[Hashable, ...]:
    """The coalescing key of *event* (entity identity, or the bulk slot)."""
    if isinstance(event, SelfRiskUpdate):
        return ("node", event.label)
    if isinstance(event, EdgeProbabilityUpdate):
        return ("edge", event.src, event.dst)
    if isinstance(event, BulkSelfRiskUpdate):
        return _BULK_NODE
    if isinstance(event, BulkEdgeProbabilityUpdate):
        return _BULK_EDGE
    if isinstance(event, NodeAdd):
        return ("add-node", event.label)
    if isinstance(event, EdgeAdd):
        return ("add-edge", event.src, event.dst)
    raise GraphError(f"unknown update event: {event!r}")


def coalesce_events(events: Iterable[UpdateEvent]) -> list[UpdateEvent]:
    """Collapse *events* to one write per entity, last write winning.

    Returns a new list whose serial application is state-equivalent to
    applying *events* in order; see the module docstring for the exact
    contract.  The output is at most one per-entity event per touched
    entity plus at most one bulk event per type.
    """
    pending: dict[tuple[Hashable, ...], UpdateEvent] = {}
    serial = 0
    for event in events:
        if isinstance(event, (NodeAdd, EdgeAdd)):
            # Topology adds pass through one-to-one, in order: a unique
            # key per occurrence means nothing collapses them and a
            # duplicate add still reaches validation as a duplicate.
            pending[("topology", serial)] = event
            serial += 1
            continue
        key = event_key(event)
        if key == _BULK_NODE or key == _BULK_EDGE:
            kind = key[1]
            stale = [
                k for k in pending if k[0] == kind or k == key
            ]
            for k in stale:
                del pending[k]
        else:
            pending.pop(key, None)
        pending[key] = event
    return list(pending.values())
