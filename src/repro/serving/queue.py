"""Async ingestion queue — per-tenant buffering with windowed coalescing.

Update traffic arrives as a stream of small per-tenant events; refreshing
a monitor per event wastes the batch efficiency the incremental pipeline
already has.  The :class:`IngestionQueue` buffers events per tenant and
flushes them in *windows*: everything a tenant accumulated inside one
window is coalesced (:func:`~repro.serving.coalesce.coalesce_events`,
last write wins — provably state-equivalent to serial application) and
handed to the sink as one batch.

The buffering core is synchronous and loop-agnostic (``submit`` /
``drain`` / ``drain_tenant``), guarded by one lock so request threads
can submit while an event-loop thread drains — no event is ever lost to
a swap race.  The :meth:`IngestionQueue.pump` coroutine adds the timed
flush loop for the live service: one ``asyncio`` task draining every
``flush_interval`` seconds, plus an early flush whenever any tenant's
backlog reaches ``max_pending`` (signalled thread-safely into the
pump's loop).

``max_pending`` is also the queue's memory bound: the ``overflow``
policy decides whether a tenant's full backlog keeps growing until the
pump catches up (``"wake"``, the legacy behaviour), rejects the new
event with an explicit :class:`~repro.core.errors.BackpressureError`
(``"error"``), or sheds it with a counter (``"shed"``).

With a :class:`~repro.persistence.wal.WriteAheadLog` attached
(``wal=``), every drained batch is appended to the log *in coalesced
form, in dispatch order, before the sink sees it* — the write-ahead
property crash recovery replays against.  A WAL append failure puts the
raw events back at the front of the tenant's backlog and re-raises, so
a disk fault never silently drops accepted traffic.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Awaitable, Callable, Hashable

from repro.core.errors import BackpressureError, ReproError
from repro.serving.coalesce import coalesce_events
from repro.streaming.events import UpdateEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.persistence.wal import WriteAheadLog

__all__ = ["IngestionQueue", "QueueStats", "OVERFLOW_POLICIES"]

OVERFLOW_POLICIES = ("wake", "error", "shed")

TenantId = Hashable
#: A flush sink: receives ``(tenant_id, coalesced_events)`` per tenant.
FlushSink = Callable[[TenantId, list], "Awaitable[None] | None"]


@dataclass
class QueueStats:
    """Running totals of the queue's traffic.

    ``coalesced_away`` counts events that never reached a monitor
    because a later same-entity write inside the window absorbed them —
    the measure of what windowed ingestion saves.  ``shed`` counts
    events rejected by a full backlog under ``overflow="shed"`` (the
    explicit record that load-shedding, not a bug, dropped them).
    """

    submitted: int = 0
    flushed: int = 0
    coalesced_away: int = 0
    flushes: int = 0
    batches: int = 0
    shed: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict form for JSON telemetry."""
        return {
            "submitted": self.submitted,
            "flushed": self.flushed,
            "coalesced_away": self.coalesced_away,
            "flushes": self.flushes,
            "batches": self.batches,
            "shed": self.shed,
        }


@dataclass
class IngestionQueue:
    """Per-tenant event buffer with last-write-wins window coalescing.

    Parameters
    ----------
    max_pending:
        Per-tenant backlog bound.  ``submit`` signals the pump (or, with
        no pump running, the next explicit ``drain``) once a tenant
        holds this many raw events.
    overflow:
        What a *full* backlog does with the next event.  ``"wake"``
        (default, the legacy behaviour) accepts it and keeps signalling
        the pump — memory is unbounded but nothing is ever refused.
        ``"error"`` raises :class:`~repro.core.errors.BackpressureError`
        so the caller can retry after the pump catches up; ``"shed"``
        drops the event and counts it in ``stats.shed``.  Both hard
        policies bound the queue at ``max_pending`` raw events per
        tenant.
    wal:
        Optional :class:`~repro.persistence.wal.WriteAheadLog`; every
        drained batch is appended (coalesced, dispatch order) before it
        reaches the flush sink, and :meth:`drain` commits the log once
        per cycle (the ``fsync="flush"`` policy's durability point).
    """

    max_pending: int = 4096
    stats: QueueStats = field(default_factory=QueueStats)
    overflow: str = "wake"
    wal: "WriteAheadLog | None" = None

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ReproError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )
        if self.overflow not in OVERFLOW_POLICIES:
            raise ReproError(
                f"overflow must be one of {OVERFLOW_POLICIES}, "
                f"got {self.overflow!r}"
            )
        self._pending: dict[TenantId, list[UpdateEvent]] = {}
        self._lock = threading.Lock()
        self._wakeup: asyncio.Event | None = None
        self._pump_loop: asyncio.AbstractEventLoop | None = None

    # ------------------------------------------------------------------
    # Synchronous core (thread-safe against a concurrent pump)
    # ------------------------------------------------------------------
    def submit(self, tenant_id: TenantId, event: UpdateEvent) -> bool:
        """Buffer one event for *tenant_id* (applied at the next flush).

        Returns ``True`` if the event was accepted — always, except
        under ``overflow="shed"`` with a full backlog, where the event
        is dropped, counted, and ``False`` comes back.
        """
        with self._lock:
            backlog = self._pending.setdefault(tenant_id, [])
            if (
                len(backlog) >= self.max_pending
                and self.overflow != "wake"
            ):
                if self.overflow == "shed":
                    self.stats.shed += 1
                    shed = True
                else:
                    raise BackpressureError(
                        f"tenant {tenant_id!r} backlog is at its "
                        f"max_pending cap of {self.max_pending} events; "
                        f"flush (or slow down) before submitting more"
                    )
            else:
                backlog.append(event)
                self.stats.submitted += 1
                shed = False
            full = len(backlog) >= self.max_pending
        if full:
            self._wake_pump()
        return not shed

    def _wake_pump(self) -> None:
        """Signal the pump's loop (thread-safely) that a backlog is full."""
        loop, wakeup = self._pump_loop, self._wakeup
        if loop is None or wakeup is None:
            return
        try:
            loop.call_soon_threadsafe(wakeup.set)
        except RuntimeError:
            pass  # pump's loop already closed; the final drain covers it

    def pending(self, tenant_id: TenantId | None = None) -> int:
        """Raw buffered events — one tenant's, or everyone's."""
        with self._lock:
            if tenant_id is not None:
                return len(self._pending.get(tenant_id, ()))
            return sum(len(backlog) for backlog in self._pending.values())

    def drain(self) -> dict[TenantId, list[UpdateEvent]]:
        """Take and coalesce every tenant's backlog (may be empty).

        Tenants come back in first-submission order; each batch is the
        coalesced, serial-equivalent form of that tenant's raw events,
        WAL-appended (when a log is attached) in exactly this order.  A
        WAL failure re-queues the failing tenant's and every not-yet-
        drained tenant's raw events at the front of their backlogs and
        re-raises — accepted events are never lost to a disk fault.
        """
        with self._lock:
            taken, self._pending = self._pending, {}
        batches: dict[TenantId, list[UpdateEvent]] = {}
        pending_restore = list(taken.items())
        try:
            for tenant_id, events in taken.items():
                batches[tenant_id] = self._coalesce_counted(
                    tenant_id, events
                )
                pending_restore.pop(0)
        except BaseException:
            # The failing tenant's events were restored by
            # _coalesce_counted; restore the untouched remainder too.
            self._restore(pending_restore[1:])
            raise
        self._wal_commit()
        if batches:
            with self._lock:
                self.stats.flushes += 1
        return batches

    def drain_tenant(self, tenant_id: TenantId) -> list[UpdateEvent]:
        """Take and coalesce one tenant's backlog only (may be empty).

        Lets a read of one tenant satisfy read-your-writes without
        paying for every other tenant's pending refreshes.  Counted as a
        batch, not as a window flush — ``stats.flushes`` keeps meaning
        "drain cycles over the whole queue".
        """
        with self._lock:
            events = self._pending.pop(tenant_id, None)
        if not events:
            return []
        coalesced = self._coalesce_counted(tenant_id, events)
        self._wal_commit()
        return coalesced

    def _coalesce_counted(
        self, tenant_id: TenantId, events: list[UpdateEvent]
    ) -> list[UpdateEvent]:
        coalesced = coalesce_events(events)
        if self.wal is not None:
            try:
                self.wal.append_events(tenant_id, coalesced)
            except BaseException:
                self._restore([(tenant_id, events)])
                raise
        with self._lock:
            self.stats.flushed += len(coalesced)
            self.stats.coalesced_away += len(events) - len(coalesced)
            self.stats.batches += 1
        return coalesced

    def _restore(
        self, taken: list[tuple[TenantId, list[UpdateEvent]]]
    ) -> None:
        """Put un-dispatched raw events back at the head of their backlogs."""
        with self._lock:
            for tenant_id, events in taken:
                backlog = self._pending.setdefault(tenant_id, [])
                backlog[:0] = events

    def _wal_commit(self) -> None:
        """One durability point per drain cycle (``fsync="flush"``)."""
        if self.wal is not None:
            self.wal.sync()

    # ------------------------------------------------------------------
    # Async pump
    # ------------------------------------------------------------------
    async def pump(
        self,
        sink: FlushSink | None = None,
        *,
        flush_interval: float = 0.05,
        stop: asyncio.Event | None = None,
        flush: Callable[[], "Awaitable[None]"] | None = None,
    ) -> None:
        """Drain every *flush_interval* seconds until *stop*.

        A backlog hitting ``max_pending`` wakes the pump early (safe to
        trigger from other threads).  Two wiring styles:

        * ``sink`` — the pump drains itself and invokes the sink once
          per (tenant, batch), awaiting awaitables, so per-tenant
          batches apply in submission order.
        * ``flush`` — a coroutine function that performs one whole
          drain-and-dispatch cycle itself.  Callers whose drain must be
          atomic with downstream dispatch (e.g. a service keeping
          queue→worker enqueue order consistent with concurrent
          per-tenant drains) use this and hold their own lock inside.

        On stop, one final cycle flushes whatever is still buffered.
        """
        if flush_interval <= 0:
            raise ReproError(
                f"flush_interval must be positive, got {flush_interval}"
            )
        if (sink is None) == (flush is None):
            raise ReproError("pump needs exactly one of sink= or flush=")
        stop = stop or asyncio.Event()
        self._wakeup = asyncio.Event()
        self._pump_loop = asyncio.get_running_loop()

        async def cycle() -> None:
            if flush is not None:
                await flush()
            else:
                await self._flush_into(sink)

        try:
            while not stop.is_set():
                waiters = [
                    asyncio.create_task(stop.wait()),
                    asyncio.create_task(self._wakeup.wait()),
                ]
                _, pending = await asyncio.wait(
                    waiters,
                    timeout=flush_interval,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                for task in pending:
                    task.cancel()
                await asyncio.gather(*pending, return_exceptions=True)
                self._wakeup.clear()
                await cycle()
            await cycle()
        finally:
            self._wakeup = None
            self._pump_loop = None

    async def _flush_into(self, sink: FlushSink) -> None:
        for tenant_id, events in self.drain().items():
            if not events:
                continue
            outcome = sink(tenant_id, events)
            if outcome is not None and hasattr(outcome, "__await__"):
                await outcome
