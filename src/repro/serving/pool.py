"""Sharded monitor pool — per-tenant ordering over shared base graphs.

One :class:`ServingPool` multiplexes many :class:`~repro.streaming.
monitor.TopKMonitor` tenants over a single frozen base graph.  Tenants
are pinned round-robin to *shards*; each shard is a single-worker
executor, so everything submitted for a tenant — registrations, update
batches, queries — executes FIFO in submission order (the per-tenant
ordering guarantee), while different shards run concurrently.

Execution modes
---------------
``"fork"``
    Each shard is a one-worker :class:`~concurrent.futures.
    ProcessPoolExecutor` using the ``fork`` start method: workers
    inherit the base graph through the forked address space — no
    pickling, and the OS shares the physical pages copy-on-write, the
    process-level twin of :meth:`~repro.core.graph.UncertainGraph.
    share_view`'s in-process buffer sharing.  Events and results cross
    the pipe (small, picklable dataclasses).
``"thread"``
    One-worker :class:`~concurrent.futures.ThreadPoolExecutor` shards in
    this process; buffer sharing via ``share_view`` alone.  The numpy
    kernels release the GIL for their heavy ops, so shards overlap.
``"serial"``
    No executors: operations run inline and come back as resolved
    futures.  Deterministic single-threaded reference, used by tests
    and as the fallback where ``fork`` is unavailable.

All three modes produce bit-identical per-tenant answers (the monitors
are deterministic given seed and event order, which the shard FIFO
fixes); the mode only chooses where the work runs.
"""

from __future__ import annotations

import itertools
import logging
import multiprocessing
import os
import pickle
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Hashable, Sequence

from repro.core.errors import ReproError
from repro.core.graph import UncertainGraph
from repro.serving.store import GraphStore
from repro.streaming.events import UpdateEvent
from repro.streaming.monitor import RefreshReport, TopKMonitor

__all__ = ["ServingPool", "available_modes", "default_mode"]

TenantId = Hashable

#: Worker-side state, keyed by pool id.  In ``fork`` mode every worker
#: process holds exactly its own shard's slice of this dict; in
#: ``thread``/``serial`` mode all shards of a pool share one entry.
_POOL_STATE: dict[str, dict] = {}
_REGISTER_LOCK = threading.Lock()
_POOL_IDS = itertools.count()
_LOG = logging.getLogger(__name__)


def available_modes() -> tuple[str, ...]:
    """Execution modes usable on this platform."""
    modes: list[str] = []
    if "fork" in multiprocessing.get_all_start_methods():
        modes.append("fork")
    modes.extend(["thread", "serial"])
    return tuple(modes)


def default_mode() -> str:
    """Preferred mode: ``fork`` where supported, else ``thread``."""
    return "fork" if "fork" in available_modes() else "thread"


def _pool_init(pool_id: str, base_graph: UncertainGraph, defaults: dict) -> None:
    """Install one pool's worker-side state (idempotent per process)."""
    if pool_id in _POOL_STATE:
        return
    store = GraphStore()
    store.put("base", base_graph)
    _POOL_STATE[pool_id] = {
        "store": store, "defaults": defaults, "tenants": {}
    }


def _worker_warmup(pool_id: str) -> int:
    """No-op used to force worker startup eagerly; returns the pid."""
    return os.getpid()


def _worker_register(
    pool_id: str, tenant_id: TenantId, k: int, kwargs: dict
) -> TenantId:
    state = _POOL_STATE[pool_id]
    if tenant_id in state["tenants"]:
        raise ReproError(f"tenant {tenant_id!r} already registered")
    # checkout -> share_view mutates the base graph's column wrappers;
    # serialize it across thread-mode shards (fork/serial never race).
    with _REGISTER_LOCK:
        graph = state["store"].checkout("base")
    merged = {**state["defaults"], **kwargs}
    state["tenants"][tenant_id] = TopKMonitor(graph, k, **merged)
    return tenant_id


def _worker_monitor(pool_id: str, tenant_id: TenantId) -> TopKMonitor:
    try:
        return _POOL_STATE[pool_id]["tenants"][tenant_id]
    except KeyError:
        raise ReproError(f"unknown tenant {tenant_id!r}") from None


def _worker_apply(
    pool_id: str, tenant_id: TenantId, events: Sequence[UpdateEvent]
) -> RefreshReport:
    monitor = _worker_monitor(pool_id, tenant_id)
    monitor.apply(events)
    return monitor.refresh()


def _worker_query(pool_id: str, tenant_id: TenantId):
    return _worker_monitor(pool_id, tenant_id).top_k()


def _worker_query_family(
    pool_id: str, tenant_id: TenantId, family: str, params: dict
):
    """Run one registered query family on the tenant's shared worlds.

    Executes on the tenant's shard FIFO, so the answer is ordered after
    every apply dispatched before it — the same read-your-writes
    guarantee ``_worker_query`` gives the top-k path.
    """
    return _worker_monitor(pool_id, tenant_id).query(family, **params)


def _worker_dump(pool_id: str, tenant_id: TenantId) -> tuple[bytes, object]:
    """Pickle one monitor's full state plus its current answer.

    Runs on the tenant's shard FIFO, so the blob reflects exactly the
    batches dispatched before the dump was enqueued — the property the
    snapshot watermarks rely on.
    """
    monitor = _worker_monitor(pool_id, tenant_id)
    result = monitor.top_k()
    return pickle.dumps(monitor, protocol=pickle.HIGHEST_PROTOCOL), result


def _worker_restore(pool_id: str, tenant_id: TenantId, blob: bytes) -> TenantId:
    """Install a previously dumped monitor state (overwrites any)."""
    monitor = pickle.loads(blob)
    _POOL_STATE[pool_id]["tenants"][tenant_id] = monitor
    return tenant_id


def _worker_rebuild(
    pool_id: str, tenant_id: TenantId, k: int, kwargs: dict
) -> TenantId:
    """Build a *fresh* monitor for *tenant_id*, overwriting any.

    The heal path's counterpart of :func:`_worker_register`: after a
    worker respawn there is no state to collide with (fork mode) or the
    surviving state is being deliberately replaced from durable records
    (thread/serial), so no duplicate check.
    """
    state = _POOL_STATE[pool_id]
    with _REGISTER_LOCK:
        graph = state["store"].checkout("base")
    merged = {**state["defaults"], **kwargs}
    state["tenants"][tenant_id] = TopKMonitor(graph, k, **merged)
    return tenant_id


def _worker_last_report(pool_id: str, tenant_id: TenantId):
    """The monitor's most recent refresh report (``None`` if pristine)."""
    return _worker_monitor(pool_id, tenant_id).last_report


def _worker_stats(pool_id: str) -> dict:
    state = _POOL_STATE[pool_id]
    memory = state["store"].memory_report("base")
    return {
        "pid": os.getpid(),
        "tenants": len(state["tenants"]),
        # Deduplicated resident bytes of this worker's base + checkouts.
        # Fork-mode workers each hold (a COW copy of) the base, so
        # summing across workers double-counts it — physically the OS
        # shares those pages; compare per worker, not summed.
        "graph_bytes": memory.shared_bytes,
        "graph_bytes_unshared": memory.naive_bytes,
        "monitor_stats": {
            tenant_id: dict(monitor.stats)
            for tenant_id, monitor in state["tenants"].items()
        },
    }


class _Shard:
    """One FIFO execution lane (a single-worker executor, or inline)."""

    def __init__(
        self,
        mode: str,
        pool_id: str,
        base_graph: UncertainGraph,
        defaults: dict,
    ) -> None:
        self._mode = mode
        self._pool_id = pool_id
        if mode == "serial":
            self._executor = None
            _pool_init(pool_id, base_graph, defaults)
        elif mode == "thread":
            self._executor = ThreadPoolExecutor(
                max_workers=1,
                initializer=_pool_init,
                initargs=(pool_id, base_graph, defaults),
            )
        elif mode == "fork":
            self._executor = ProcessPoolExecutor(
                max_workers=1,
                mp_context=multiprocessing.get_context("fork"),
                initializer=_pool_init,
                initargs=(pool_id, base_graph, defaults),
            )
        else:
            raise ReproError(
                f"unknown pool mode {mode!r}; choose from "
                f"{available_modes()}"
            )

    def submit(self, fn, *args) -> Future:
        if self._executor is not None:
            return self._executor.submit(fn, *args)
        future: Future = Future()
        try:
            future.set_result(fn(*args))
        except BaseException as error:  # noqa: BLE001 - mirror executor
            future.set_exception(error)
        return future

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)


class ServingPool:
    """Many monitors, one shared base graph, per-tenant FIFO dispatch.

    Parameters
    ----------
    base_graph:
        The frozen network all tenants monitor.  Treated as immutable
        from registration onward.
    shards:
        Number of execution lanes (default: CPU count, at most 8; always
        1 in ``serial`` mode).  Tenants are pinned round-robin.
    mode:
        ``"fork"`` / ``"thread"`` / ``"serial"`` — see the module
        docstring.  Default: :func:`default_mode`.
    monitor_defaults:
        Keyword defaults applied to every tenant's
        :class:`~repro.streaming.monitor.TopKMonitor` (seed, engine,
        epsilon, …); per-tenant kwargs override.
    """

    def __init__(
        self,
        base_graph: UncertainGraph,
        *,
        shards: int | None = None,
        mode: str | None = None,
        monitor_defaults: dict | None = None,
    ) -> None:
        self._mode = mode or default_mode()
        if self._mode not in available_modes():
            if self._mode == "fork":
                # Spawn-only platforms (macOS default, Windows) cannot
                # fork; the thread mode keeps the same per-tenant FIFO
                # and bit-identical answers, so degrade instead of dying.
                _LOG.warning(
                    "pool mode 'fork' unavailable on this platform "
                    "(start methods: %s); falling back to 'thread'",
                    multiprocessing.get_all_start_methods(),
                )
                self._mode = "thread"
            else:
                raise ReproError(
                    f"pool mode {self._mode!r} unavailable here; choose "
                    f"from {available_modes()}"
                )
        if shards is None:
            shards = 1 if self._mode == "serial" else min(
                os.cpu_count() or 1, 8
            )
        if shards < 1:
            raise ReproError(f"shards must be >= 1, got {shards}")
        if self._mode == "serial":
            shards = 1
        self._pool_id = f"pool-{os.getpid()}-{next(_POOL_IDS)}"
        self._base_graph = base_graph
        defaults = self._defaults = dict(monitor_defaults or {})
        # Build the CSR views before any fork/share: workers inherit
        # them instead of each rebuilding the argsort.
        base_graph.out_csr()
        base_graph.in_csr()
        self._shards = [
            _Shard(self._mode, self._pool_id, base_graph, defaults)
            for _ in range(shards)
        ]
        # Start every worker eagerly, at construction time: fork-mode
        # children should be forked now — before the caller starts an
        # asyncio pump or other threads whose locks a later lazy fork
        # could snapshot mid-acquisition.
        self._pids = [
            shard.submit(_worker_warmup, self._pool_id).result()
            for shard in self._shards
        ]
        self._shard_of: dict[TenantId, _Shard] = {}
        self._next_shard = 0
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def mode(self) -> str:
        """The execution mode this pool runs under."""
        return self._mode

    @property
    def base_graph(self) -> UncertainGraph:
        """The frozen base snapshot every tenant monitors (do not mutate).

        In fork mode the workers hold their own inherited copies; this
        is the parent-side original, kept for identity/consistency
        checks by callers attaching pre-existing pipelines.
        """
        return self._base_graph

    @property
    def shard_count(self) -> int:
        """Number of execution lanes."""
        return len(self._shards)

    def tenants(self) -> list[TenantId]:
        """Registered tenant ids, registration-ordered."""
        return list(self._shard_of)

    def checkout_base(self) -> UncertainGraph:
        """A parent-side copy-on-write view of the base snapshot.

        What the serving layer's *bounds mirrors* are built over: the
        view shares the frozen base buffers until first mutation, like
        the worker-side checkouts.  ``share_view`` mutates the base
        graph's column wrappers, so the call is serialised against
        worker-side registrations (thread mode shares the object).
        """
        with _REGISTER_LOCK:
            return self._base_graph.share_view()

    def has_tenant(self, tenant_id: TenantId) -> bool:
        """O(1) membership test (the ingestion hot path's validity check)."""
        return tenant_id in self._shard_of

    def _shard(self, tenant_id: TenantId) -> _Shard:
        try:
            return self._shard_of[tenant_id]
        except KeyError:
            raise ReproError(f"unknown tenant {tenant_id!r}") from None

    # ------------------------------------------------------------------
    def register(
        self, tenant_id: TenantId, k: int, **monitor_kwargs
    ) -> None:
        """Attach a tenant monitor (blocks until the worker holds it)."""
        if self._closed:
            raise ReproError("pool is shut down")
        if tenant_id in self._shard_of:
            raise ReproError(f"tenant {tenant_id!r} already registered")
        shard = self._shards[self._next_shard % len(self._shards)]
        shard.submit(
            _worker_register, self._pool_id, tenant_id, k, monitor_kwargs
        ).result()
        self._shard_of[tenant_id] = shard
        self._next_shard += 1

    def apply(
        self, tenant_id: TenantId, events: Sequence[UpdateEvent]
    ) -> "Future[RefreshReport]":
        """Apply one event batch and refresh; resolves to the report."""
        return self._shard(tenant_id).submit(
            _worker_apply, self._pool_id, tenant_id, list(events)
        )

    def query(self, tenant_id: TenantId) -> Future:
        """Current top-k; ordered after every prior apply of the tenant."""
        return self._shard(tenant_id).submit(
            _worker_query, self._pool_id, tenant_id
        )

    def query_family(
        self, tenant_id: TenantId, family: str, params: dict | None = None
    ) -> Future:
        """Run *family* on the tenant's shared worlds (shard-ordered).

        Resolves to a :class:`~repro.queries.base.QueryResult`.  The
        monitor reuses one repaired world set across every family, so
        consecutive family queries between updates amortise the
        sampling cost instead of re-drawing worlds per query.
        """
        return self._shard(tenant_id).submit(
            _worker_query_family,
            self._pool_id,
            tenant_id,
            str(family),
            dict(params or {}),
        )

    # ------------------------------------------------------------------
    # Durability hooks (used by RiskService's snapshot/recovery paths)
    # ------------------------------------------------------------------
    def dump_tenant(self, tenant_id: TenantId) -> "Future[tuple[bytes, object]]":
        """Pickled monitor state + current answer, shard-FIFO-ordered.

        Because the dump runs on the tenant's own execution lane, it
        reflects every apply enqueued before it and none after — the
        cheap way to take a consistent per-tenant snapshot without
        pausing ingestion for anyone else.
        """
        return self._shard(tenant_id).submit(
            _worker_dump, self._pool_id, tenant_id
        )

    def restore_tenant(self, tenant_id: TenantId, blob: bytes) -> None:
        """Install a dumped monitor blob for *tenant_id* (blocking).

        A tenant already pinned to a shard is restored in place (the
        worker-side heal path after a respawn); an unknown tenant is
        pinned round-robin first, exactly like :meth:`register`.
        """
        if self._closed:
            raise ReproError("pool is shut down")
        shard = self._shard_of.get(tenant_id)
        if shard is None:
            shard = self._shards[self._next_shard % len(self._shards)]
            self._shard_of[tenant_id] = shard
            self._next_shard += 1
        shard.submit(
            _worker_restore, self._pool_id, tenant_id, blob
        ).result()

    def rebuild_tenant(self, tenant_id: TenantId, k: int, **monitor_kwargs) -> None:
        """Recreate *tenant_id*'s monitor from scratch on its shard.

        Used by the heal path for tenants with a durable registration
        record but no snapshot blob — the WAL replay that follows
        brings the fresh monitor back to the exact pre-crash state.
        """
        self._shard(tenant_id).submit(
            _worker_rebuild, self._pool_id, tenant_id, k, monitor_kwargs
        ).result()

    def last_report(self, tenant_id: TenantId) -> Future:
        """The tenant monitor's most recent refresh report."""
        return self._shard(tenant_id).submit(
            _worker_last_report, self._pool_id, tenant_id
        )

    def shard_alive(self, index: int) -> bool:
        """Whether lane *index* currently accepts and completes work."""
        try:
            self._shards[index].submit(
                _worker_warmup, self._pool_id
            ).result()
        except BaseException:
            return False
        return True

    def shard_index(self, tenant_id: TenantId) -> int:
        """Which execution lane *tenant_id* is pinned to."""
        return self._shards.index(self._shard(tenant_id))

    def tenants_on_shard(self, index: int) -> list[TenantId]:
        """Registration-ordered tenants pinned to lane *index*."""
        shard = self._shards[index]
        return [
            tenant_id
            for tenant_id, owner in self._shard_of.items()
            if owner is shard
        ]

    def worker_pids(self) -> list[int]:
        """Per-shard worker pids (this process's pid in thread/serial)."""
        return list(self._pids)

    def respawn_shard(
        self,
        index: int,
        *,
        max_attempts: int = 3,
        backoff: float = 0.05,
    ) -> None:
        """Replace lane *index*'s executor after its worker died.

        Bounded retry with exponential backoff: each attempt builds a
        fresh single-worker executor and warms it up; persistent
        failure re-raises the last error.  Tenants pinned to the lane
        keep their pinning but their worker-side monitors are gone —
        the caller (the durable service's heal path) restores them from
        snapshot + WAL replay.  In ``thread``/``serial`` mode the
        worker-side state lives in this process and survives, so a
        respawn is just a fresh executor.
        """
        old = self._shards[index]
        try:
            old.shutdown()
        except Exception:  # pragma: no cover - broken pools may misbehave
            pass
        last_error: BaseException | None = None
        for attempt in range(max_attempts):
            if attempt:
                time.sleep(backoff * (2 ** (attempt - 1)))
            try:
                shard = _Shard(
                    self._mode, self._pool_id, self._base_graph,
                    self._defaults,
                )
                pid = shard.submit(_worker_warmup, self._pool_id).result()
            except Exception as error:  # pragma: no cover - spawn failure
                last_error = error
                continue
            self._shards[index] = shard
            self._pids[index] = pid
            for tenant_id, owner in self._shard_of.items():
                if owner is old:
                    self._shard_of[tenant_id] = shard
            return
        raise ReproError(
            f"could not respawn shard {index} after {max_attempts} attempts"
        ) from last_error

    def query_all(self) -> dict:
        """Every tenant's current top-k (waits for all)."""
        futures = {
            tenant_id: self.query(tenant_id) for tenant_id in self._shard_of
        }
        return {
            tenant_id: future.result()
            for tenant_id, future in futures.items()
        }

    def stats(self) -> list[dict]:
        """Per-worker statistics (pid, tenants, graph bytes, …).

        One row per distinct worker process: fork mode yields a row per
        shard, while thread/serial shards share this process's state and
        collapse to a single row.
        """
        futures = [
            shard.submit(_worker_stats, self._pool_id)
            for shard in self._shards
        ]
        rows: dict[int, dict] = {}
        for future in futures:
            row = future.result()
            rows.setdefault(row["pid"], row)
        return list(rows.values())

    def shutdown(self) -> None:
        """Stop all shards (idempotent); pending work completes first."""
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            shard.shutdown()
        _POOL_STATE.pop(self._pool_id, None)

    def __enter__(self) -> "ServingPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
