"""Incremental maintenance of the Algorithm-2/3 bound iterates.

The lower/upper bounds of :mod:`repro.bounds.iterative` are ``z`` Jacobi
iterations of the Equation-(1) operator, and the operator is *local*: the
iterate-``t`` value of node ``v`` depends only on ``ps(v)``, the
probabilities of ``v``'s in-edges, and the iterate-``t-1`` values of
``v``'s in-neighbours.  When a monitoring update patches a handful of
self-risks or edge probabilities, the set of nodes whose iterates can
move therefore grows by at most one out-hop per iteration — the *dirty
frontier*.  This module keeps every iterate of both chains cached and,
on refresh, recomputes exactly that frontier, with arithmetic
bit-identical to a full :func:`~repro.bounds.iterative.bound_pair` call
(:func:`eq1_values_at` replays :func:`~repro.core.eq1.apply_eq1`'s exact
per-node accumulation order on a subset).  The streaming
:class:`~repro.streaming.monitor.TopKMonitor` leans on that exactness:
its incremental answers must be indistinguishable from fresh detection.

Dirty-frontier recurrence (``t`` counts applications of the operator):

* lower chain — iterate 1 is ``ps`` itself, so only nodes with changed
  self-risk start dirty; upper chain — iterate 1 already applies the
  operator, so heads of changed edges start dirty too;
* every later iterate is dirty at the *persistent* entities (changed
  self-risks and changed-edge heads — their inputs stay changed forever)
  plus the out-neighbours of whatever actually moved one iterate below.

``refresh`` aborts (returns ``None``) when a frontier exceeds the
caller's *limit* — the monitor's cue to fall back to a full rebuild; the
cache is left inconsistent in that case and must be rebuilt.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.eq1 import apply_eq1
from repro.core.errors import SamplingError
from repro.core.graph import UncertainGraph
from repro.core.propagation import ragged_positions

__all__ = ["eq1_values_at", "BoundDelta", "IncrementalBoundPair"]


def eq1_values_at(
    graph: UncertainGraph, current: np.ndarray, nodes: np.ndarray
) -> np.ndarray:
    """Equation-(1) values of *nodes* only — bit-identical to the full op.

    Computes, for each requested node, exactly what
    :func:`repro.core.eq1.apply_eq1` would put there: the same per-edge
    factors in the same in-CSR segment order, accumulated left-to-right
    into the same ``exp(sum(log(...)))`` form.  Because every float op
    matches the full evaluation element for element, splicing the result
    into a cached full vector reproduces ``apply_eq1`` exactly.
    """
    in_csr = graph.in_csr()
    ps = graph.self_risk_array
    positions, counts = ragged_positions(in_csr.indptr, nodes)
    sums = np.zeros(nodes.size, dtype=np.float64)
    if positions.size:
        factors = 1.0 - in_csr.probs[positions] * current[in_csr.indices[positions]]
        with np.errstate(divide="ignore"):
            logs = np.log(np.maximum(factors, 0.0))
        np.add.at(
            sums,
            np.repeat(np.arange(nodes.size, dtype=np.int64), counts),
            logs,
        )
    return 1.0 - (1.0 - ps[nodes]) * np.exp(sums)


def _out_neighbors(graph: UncertainGraph, nodes: np.ndarray) -> np.ndarray:
    """All out-neighbour indices of *nodes* (with repeats)."""
    out = graph.out_csr()
    positions, _ = ragged_positions(out.indptr, nodes)
    return out.indices[positions]


@dataclass(frozen=True)
class BoundDelta:
    """What one incremental refresh actually changed in the final bounds.

    ``lower_*`` describe the final lower iterate, ``upper_*`` the final
    *clamped* upper vector (the pair downstream code consumes).  The
    old/new value arrays are aligned with the changed-index arrays; the
    monitor uses them for its threshold-crossing test.
    """

    lower_changed: np.ndarray
    lower_old: np.ndarray
    lower_new: np.ndarray
    upper_changed: np.ndarray
    upper_old: np.ndarray
    upper_new: np.ndarray
    nodes_recomputed: int

    @property
    def max_changed_value(self) -> float:
        """Largest bound value involved in any change (old or new side).

        Every rule of Algorithm 4 — both thresholds and both membership
        tests — is inert for values strictly below ``Tl``, so a refresh
        whose ``max_changed_value < Tl`` provably leaves the candidate
        reduction untouched.
        """
        best = -np.inf
        for array in (
            self.lower_old,
            self.lower_new,
            self.upper_old,
            self.upper_new,
        ):
            if array.size:
                best = max(best, float(array.max()))
        return best


class IncrementalBoundPair:
    """Cached Algorithm-2/3 iterate chains with dirty-frontier refresh.

    Parameters
    ----------
    graph:
        The live uncertain graph; the cache reads it on every rebuild or
        refresh (probability patches are visible through the in-place
        CSR updates, so no re-registration is needed).
    lower_order, upper_order:
        The paper's ``z`` for each chain, as in
        :func:`~repro.bounds.iterative.bound_pair`.
    """

    def __init__(
        self,
        graph: UncertainGraph,
        lower_order: int = 2,
        upper_order: int = 2,
    ) -> None:
        lower_order = int(lower_order)
        upper_order = int(upper_order)
        if lower_order < 1 or upper_order < 1:
            raise SamplingError(
                f"bound orders must be >= 1, got {lower_order}/{upper_order}"
            )
        self._graph = graph
        self._lower_order = lower_order
        self._upper_order = upper_order
        self._lower: list[np.ndarray] = []
        self._upper: list[np.ndarray] = []
        self._clamped: np.ndarray = np.empty(0)
        self._ones: np.ndarray = np.empty(0)
        self.rebuild()

    @property
    def lower(self) -> np.ndarray:
        """Final lower-bound vector (live cache — treat as read-only)."""
        return self._lower[-1]

    @property
    def upper(self) -> np.ndarray:
        """Final clamped upper-bound vector (live cache — read-only)."""
        return self._clamped

    def pair(self) -> tuple[np.ndarray, np.ndarray]:
        """``(pl, pu)`` exactly as :func:`bound_pair` would return them."""
        return self._lower[-1], self._clamped

    def rebuild(self) -> None:
        """Full recompute of both chains (mirrors Algorithms 2 and 3)."""
        graph = self._graph
        self._ones = np.ones(graph.num_nodes, dtype=np.float64)
        current = graph.self_risk_array.copy()
        self._lower = [current]
        for _ in range(self._lower_order - 1):
            current = apply_eq1(graph, current)
            self._lower.append(current)
        current = apply_eq1(graph, self._ones)
        self._upper = [current]
        for _ in range(self._upper_order - 1):
            current = apply_eq1(graph, current)
            self._upper.append(current)
        self._clamped = np.maximum(self._upper[-1], self._lower[-1])

    def extend_topology(
        self,
        dirty_nodes: np.ndarray,
        dirty_heads: np.ndarray,
        limit: int | None = None,
    ) -> BoundDelta | None:
        """Absorb append-only topology growth, then refresh.

        The graph has grown since the last rebuild/refresh (append-only:
        new node indices and edge ids strictly above the old ranges).
        Cached iterates are extended with NaN placeholders for the new
        nodes and the refresh runs with the new nodes and the new edges'
        heads folded into the dirty sets (the caller passes them in
        *dirty_nodes* / *dirty_heads*, unioned with any probability
        dirt).  The placeholders are never read as a previous-iterate
        input: new nodes sit in the persistent dirty set, so every
        iterate recomputes them before any later iterate reads them —
        and a placeholder compared against its recomputed value always
        counts as "moved", which conservatively seeds the frontier.

        The returned delta's *old*-value arrays carry NaN entries for
        the appended nodes (they had no old bound), so callers on the
        topology path must not feed them into threshold arithmetic —
        the monitor re-runs its candidate reduction outright instead of
        consulting ``max_changed_value``.
        """
        n_new = self._graph.num_nodes
        n_old = self._ones.size
        if n_new < n_old:
            raise SamplingError(
                f"graph shrank from {n_old} to {n_new} nodes; topology "
                "growth is append-only"
            )
        if n_new > n_old:
            pad = np.full(n_new - n_old, np.nan)
            self._lower = [
                np.concatenate([iterate, pad]) for iterate in self._lower
            ]
            self._upper = [
                np.concatenate([iterate, pad]) for iterate in self._upper
            ]
            self._clamped = np.concatenate([self._clamped, pad])
            self._ones = np.ones(n_new, dtype=np.float64)
        return self.refresh(dirty_nodes, dirty_heads, limit)

    def _refresh_chain(
        self,
        iterates: list[np.ndarray],
        seed_changed: np.ndarray,
        persistent: np.ndarray,
        first_applied: int,
        limit: int | None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int] | None:
        """Advance one chain's dirty frontier through its iterates.

        *first_applied* is the iterate index of the first operator
        application (1 for the lower chain, whose iterate 0 is ``ps``
        and is patched by the caller; 0 for the upper chain, whose
        iterate 0 already applies the operator to the all-ones vector).
        Returns ``(changed, old, new, recomputed)`` for the final
        iterate, or ``None`` when a frontier exceeds *limit*.
        """
        graph = self._graph
        changed = seed_changed
        old_final = np.empty(0)
        new_final = np.empty(0)
        recomputed = 0
        if first_applied >= len(iterates):  # order-1 lower chain
            return changed, old_final, new_final, recomputed
        for t in range(first_applied, len(iterates)):
            if t == 0:
                dirty = persistent
                previous = self._ones
            else:
                dirty = np.union1d(persistent, _out_neighbors(graph, changed))
                previous = iterates[t - 1]
            if limit is not None and dirty.size > limit:
                return None
            recomputed += int(dirty.size)
            new_values = eq1_values_at(graph, previous, dirty)
            old_values = iterates[t][dirty]
            moved = new_values != old_values
            iterates[t][dirty] = new_values
            changed = dirty[moved]
            old_final = old_values[moved]
            new_final = new_values[moved]
        return changed, old_final, new_final, recomputed

    def refresh(
        self,
        dirty_nodes: np.ndarray,
        dirty_heads: np.ndarray,
        limit: int | None = None,
    ) -> BoundDelta | None:
        """Incrementally absorb patched self-risks / edge probabilities.

        Parameters
        ----------
        dirty_nodes:
            Internal indices whose self-risk changed since the last
            refresh/rebuild.
        dirty_heads:
            Destination indices of edges whose probability changed.
        limit:
            Abort threshold on any dirty frontier's size.  On abort the
            cache is inconsistent — call :meth:`rebuild`.

        Returns
        -------
        BoundDelta | None
            The exact set of final-bound changes, or ``None`` on abort.
        """
        dirty_nodes = np.asarray(dirty_nodes, dtype=np.int64)
        dirty_heads = np.asarray(dirty_heads, dtype=np.int64)
        persistent = np.union1d(dirty_nodes, dirty_heads)
        if persistent.size == 0:
            empty = np.empty(0, dtype=np.int64)
            zero = np.empty(0)
            return BoundDelta(empty, zero, zero, empty, zero, zero, 0)
        if limit is not None and persistent.size > limit:
            return None
        ps = self._graph.self_risk_array
        # Lower chain: iterate 0 is the self-risk vector itself.
        old_seed = self._lower[0][dirty_nodes]
        new_seed = ps[dirty_nodes]
        seed_moved = new_seed != old_seed
        self._lower[0][dirty_nodes] = new_seed
        lower = self._refresh_chain(
            self._lower,
            dirty_nodes[seed_moved],
            persistent,
            first_applied=1,
            limit=limit,
        )
        if lower is None:
            return None
        lower_changed, lower_old, lower_new, lower_work = lower
        if len(self._lower) == 1:  # order-1: the final iterate IS ps
            lower_old = old_seed[seed_moved]
            lower_new = new_seed[seed_moved]
        upper = self._refresh_chain(
            self._upper,
            np.empty(0, dtype=np.int64),
            persistent,
            first_applied=0,
            limit=limit,
        )
        if upper is None:
            return None
        upper_changed, _, _, upper_work = upper
        # Re-clamp wherever either final iterate moved.
        touched = np.union1d(lower_changed, upper_changed)
        clamped_old = self._clamped[touched]
        clamped_new = np.maximum(
            self._upper[-1][touched], self._lower[-1][touched]
        )
        self._clamped[touched] = clamped_new
        clamp_moved = clamped_new != clamped_old
        return BoundDelta(
            lower_changed=lower_changed,
            lower_old=lower_old,
            lower_new=lower_new,
            upper_changed=touched[clamp_moved],
            upper_old=clamped_old[clamp_moved],
            upper_new=clamped_new[clamp_moved],
            nodes_recomputed=int(persistent.size) + lower_work + upper_work,
        )
