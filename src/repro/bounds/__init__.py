"""Bound derivation (Algorithms 2/3) and candidate reduction (Algorithm 4)."""

from repro.bounds.candidates import CandidateReduction, reduce_candidates
from repro.bounds.iterative import bound_pair, lower_bounds, upper_bounds

__all__ = [
    "CandidateReduction",
    "reduce_candidates",
    "bound_pair",
    "lower_bounds",
    "upper_bounds",
]
