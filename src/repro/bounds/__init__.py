"""Bound derivation (Algorithms 2/3) and candidate reduction (Algorithm 4)."""

from repro.bounds.candidates import CandidateReduction, reduce_candidates
from repro.bounds.incremental import (
    BoundDelta,
    IncrementalBoundPair,
    eq1_values_at,
)
from repro.bounds.iterative import (
    bound_pair,
    bounds_only_topk,
    lower_bounds,
    upper_bounds,
)

__all__ = [
    "CandidateReduction",
    "reduce_candidates",
    "BoundDelta",
    "IncrementalBoundPair",
    "eq1_values_at",
    "bound_pair",
    "bounds_only_topk",
    "lower_bounds",
    "upper_bounds",
]
