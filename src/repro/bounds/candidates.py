"""Candidate reduction — Algorithm 4 and Lemma 1.

Given per-node lower bounds ``pl`` and upper bounds ``pu`` and the answer
size ``k``:

* ``Tl`` is the k-th largest lower bound, ``Tu`` the k-th largest upper
  bound.
* Rule 1 (verification): a node with ``pl(v) >= Tu`` *must* be in the
  top-k; it is moved straight into the answer, shrinking the effective
  ``k``.
* Rule 2 (filtering): a node with ``pu(v) < Tl`` *cannot* be in the top-k
  and is dropped.  Everything else becomes the candidate set ``B`` whose
  probabilities must be estimated by sampling.

Tie handling: when bounds are heavily tied, rule 1 can certify more than
``k`` nodes (all of them provably belong to *a* valid top-k under ties).
We cap verification at ``k`` nodes, preferring higher lower bounds and
breaking remaining ties by node index, so downstream code can rely on
``k' <= k``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import SamplingError
from repro.core.graph import UncertainGraph
from repro.core.topk import kth_largest, validate_finite_scores, validate_k

__all__ = ["CandidateReduction", "reduce_candidates"]


@dataclass(frozen=True)
class CandidateReduction:
    """Output of Algorithm 4.

    Attributes
    ----------
    verified:
        Internal indices certified into the answer by rule 1 (``k'`` of
        them), ordered by decreasing lower bound.
    candidates:
        Internal indices of the surviving candidate set ``B`` (excludes
        verified nodes), ordered by node index.
    threshold_lower:
        ``Tl``, the k-th largest lower bound.
    threshold_upper:
        ``Tu``, the k-th largest upper bound.
    k:
        The requested answer size this reduction was computed for.
    """

    verified: np.ndarray
    candidates: np.ndarray
    threshold_lower: float
    threshold_upper: float
    k: int

    @property
    def k_verified(self) -> int:
        """The paper's ``k'``."""
        return int(self.verified.size)

    @property
    def k_remaining(self) -> int:
        """``k - k'``: answers still to be found by sampling."""
        return self.k - self.k_verified

    @property
    def candidate_size(self) -> int:
        """``|B|``."""
        return int(self.candidates.size)

    def summary(self) -> dict[str, float | int]:
        """Small dict for experiment logging."""
        return {
            "k": self.k,
            "k_verified": self.k_verified,
            "candidate_size": self.candidate_size,
            "Tl": self.threshold_lower,
            "Tu": self.threshold_upper,
        }


def reduce_candidates(
    graph: UncertainGraph,
    lower: np.ndarray,
    upper: np.ndarray,
    k: int,
) -> CandidateReduction:
    """Run Algorithm 4 and return the reduction.

    Parameters
    ----------
    graph:
        The uncertain graph (only its size is needed, but taking the graph
        keeps the call site symmetrical with the bound functions).
    lower, upper:
        Per-node bound vectors from Algorithms 2 and 3.  ``lower <= upper``
        must hold element-wise.
    k:
        Requested answer size.

    Raises
    ------
    SamplingError
        If the bound vectors disagree in shape or violate ``lower <= upper``
        beyond floating-point noise.
    """
    n = graph.num_nodes
    k = validate_k(k, n)
    lower = np.asarray(lower, dtype=np.float64)
    upper = np.asarray(upper, dtype=np.float64)
    if lower.shape != (n,) or upper.shape != (n,):
        raise SamplingError(
            f"bound vectors must have shape ({n},); "
            f"got {lower.shape} and {upper.shape}"
        )
    # NaN bounds would slip through both Lemma-1 rules (every comparison
    # is False) while kth_largest would treat them as largest — reject
    # outright rather than produce a contradictory reduction.
    validate_finite_scores(lower, "lower bounds")
    validate_finite_scores(upper, "upper bounds")
    if np.any(lower > upper + 1e-9):
        worst = int(np.argmax(lower - upper))
        raise SamplingError(
            "lower bound exceeds upper bound at node index "
            f"{worst}: {lower[worst]} > {upper[worst]}"
        )
    # Clamp one-ulp float noise so ties never make pu < pl (which would
    # let a node escape both rules of Lemma 1).
    upper = np.maximum(upper, lower)
    threshold_lower = kth_largest(lower, k)
    threshold_upper = kth_largest(upper, k)

    verified_mask = lower >= threshold_upper
    verified = np.flatnonzero(verified_mask)
    if verified.size > k:
        # Ties made rule 1 over-certify; keep the k best lower bounds
        # (stable order so results stay deterministic).
        order = np.argsort(-lower[verified], kind="stable")
        verified = np.sort(verified[order[:k]])
    candidate_mask = (upper >= threshold_lower) & ~np.isin(
        np.arange(n), verified, assume_unique=False
    )
    candidates = np.flatnonzero(candidate_mask)
    # Order verified nodes by decreasing lower bound for reporting.
    verified = verified[np.argsort(-lower[verified], kind="stable")]
    return CandidateReduction(
        verified=verified,
        candidates=candidates,
        threshold_lower=float(threshold_lower),
        threshold_upper=float(threshold_upper),
        k=k,
    )
