"""Lower/upper bounds on default probabilities — Algorithms 2 and 3.

Both bounds iterate the Equation-(1) operator for ``z`` rounds:

* **Lower bound** (Algorithm 2): round 1 sets ``p(v) = ps(v)``, i.e. every
  neighbour's contribution is ignored.  Each further round folds one more
  hop of in-neighbour influence in.  Because the operator is monotone and
  each node's true probability only grows when neighbour probabilities
  grow, every iterate stays below the possible-world value.
* **Upper bound** (Algorithm 3): round 1 evaluates Equation (1) with all
  in-neighbour probabilities pinned to 1 — the most pessimistic neighbour
  assumption — and further rounds re-evaluate with the previous (already
  pessimistic) iterate.  Every iterate stays above the true value.

Larger ``z`` tightens both bounds monotonically (Figure 5 of the paper
tunes this trade-off).  Both algorithms are implemented on the vectorised
operator from :mod:`repro.core.eq1`, so one round costs ``O(n + m)``.
"""

from __future__ import annotations

import numpy as np

from repro.core.eq1 import apply_eq1
from repro.core.errors import SamplingError
from repro.core.graph import UncertainGraph

__all__ = [
    "lower_bounds",
    "upper_bounds",
    "bound_pair",
    "bounds_only_topk",
    "certified_topk_mask",
]


def _validate_order(order: int) -> int:
    order = int(order)
    if order < 1:
        raise SamplingError(f"bound order must be >= 1, got {order}")
    return order


def lower_bounds(graph: UncertainGraph, order: int = 2) -> np.ndarray:
    """Algorithm 2: order-*order* lower bound ``pl(v)`` for every node.

    Parameters
    ----------
    graph:
        The uncertain graph.
    order:
        The paper's ``z`` — number of Equation-(1) iterations.  ``order=1``
        returns the self-risk vector itself.

    Returns
    -------
    numpy.ndarray
        ``float64`` lower bounds over internal node indices.
    """
    order = _validate_order(order)
    current = graph.self_risk_array.copy()  # iteration 1: p(v) := ps(v)
    for _ in range(order - 1):
        current = apply_eq1(graph, current)
    return current


def upper_bounds(graph: UncertainGraph, order: int = 2) -> np.ndarray:
    """Algorithm 3: order-*order* upper bound ``pu(v)`` for every node.

    ``order=1`` evaluates Equation (1) with every in-neighbour probability
    treated as 1 (the worst case); each extra round re-applies the operator
    to the previous iterate.
    """
    order = _validate_order(order)
    ones = np.ones(graph.num_nodes, dtype=np.float64)
    current = apply_eq1(graph, ones)  # iteration 1: neighbours pinned to 1
    for _ in range(order - 1):
        current = apply_eq1(graph, current)
    return current


def bound_pair(
    graph: UncertainGraph, lower_order: int = 2, upper_order: int = 2
) -> tuple[np.ndarray, np.ndarray]:
    """Convenience: ``(pl, pu)`` with independent orders per side.

    Figure 5 of the paper sweeps the two orders independently; this helper
    is what the experiment harness calls.

    Mathematically ``pl <= pu`` holds for every order pair (the lower
    iterates approach the Equation-(1) value from below, the upper ones
    from above), but the vectorised ``exp``/``log`` evaluation can differ
    by one ulp on nodes where both bounds coincide (e.g. sources, where
    both equal ``ps``).  The upper bound is clamped to the lower one so
    downstream comparisons never see ``pu < pl``.
    """
    lower = lower_bounds(graph, lower_order)
    upper = np.maximum(upper_bounds(graph, upper_order), lower)
    return lower, upper


def bounds_only_topk(
    lower: np.ndarray, upper: np.ndarray, k: int
) -> tuple[np.ndarray, float]:
    """Rank nodes by the bound iterates alone — the *degraded* answer.

    When a latency budget rules out the sampling stage, the cheap
    Eq-(1) iterates still order the nodes: rank by lower bound
    (descending — the certified floor), break ties by upper bound
    (descending — the remaining headroom), then by node index for
    determinism.

    Returns ``(top_k_indices, threshold_lower)`` where
    ``threshold_lower`` is ``Tl``, the k-th largest lower bound.  The
    ranking is *bounds-consistent* by construction: every returned
    node's lower bound is ``>= Tl`` (they are the k largest), and since
    ``upper >= lower`` element-wise (:func:`bound_pair` clamps), every
    returned node's upper bound reaches ``Tl`` too — no node that
    Lemma 1 rule 2 could disprove is ever reported.
    """
    lower = np.asarray(lower, dtype=np.float64)
    upper = np.asarray(upper, dtype=np.float64)
    if lower.shape != upper.shape or lower.ndim != 1:
        raise SamplingError(
            f"bound vectors must be equal-length 1-D arrays, got "
            f"{lower.shape} and {upper.shape}"
        )
    k = int(k)
    if not 1 <= k <= lower.size:
        raise SamplingError(
            f"k must be in [1, {lower.size}], got {k}"
        )
    # lexsort: last key is primary.  Index ascending is the final
    # tie-break, giving a total, deterministic order.
    order = np.lexsort(
        (np.arange(lower.size, dtype=np.int64), -upper, -lower)
    )
    top = order[:k]
    return top, float(lower[top[-1]])


def certified_topk_mask(
    lower: np.ndarray, upper: np.ndarray, k: int
) -> np.ndarray:
    """Nodes *provably* in the exact top-k, from the bounds alone.

    Since ``lower(v) <= p(v) <= upper(v)``, node ``v`` is certainly a
    member of the true top-k whenever fewer than ``k`` **other** nodes
    could even reach its floor::

        #{ u != v : upper(u) >= lower(v) } < k

    Every node outside that set has ``p(u) <= upper(u) < lower(v) <=
    p(v)`` and so ranks strictly below ``v``; with at most ``k - 1``
    possible ties-or-betters, ``v`` makes the top-k under any
    tie-break.  The comparison is ``>=`` (a node whose ceiling exactly
    equals the floor counts as a threat), so the certificate is
    conservative and sound even on exactly-tied bounds.

    This is what lets a *degraded* bounds-only answer carry exact
    partial information: certified nodes are final winners even while
    the sampling pipeline is mid-repair.

    Returns a boolean mask over all nodes.  Vectorised: one sort plus
    one :func:`numpy.searchsorted`, ``O(n log n)``.
    """
    lower = np.asarray(lower, dtype=np.float64)
    upper = np.asarray(upper, dtype=np.float64)
    if lower.shape != upper.shape or lower.ndim != 1:
        raise SamplingError(
            f"bound vectors must be equal-length 1-D arrays, got "
            f"{lower.shape} and {upper.shape}"
        )
    k = int(k)
    if not 1 <= k <= lower.size:
        raise SamplingError(
            f"k must be in [1, {lower.size}], got {k}"
        )
    sorted_upper = np.sort(upper)
    reach_floor = lower.size - np.searchsorted(
        sorted_upper, lower, side="left"
    )
    others = reach_floor - (upper >= lower)  # exclude the node itself
    return others < k
