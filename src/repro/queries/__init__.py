"""Pluggable query families over shared possible-world state.

Importing this package registers the built-in families:

* ``topk`` — the paper's top-k vulnerable nodes, as a family;
* ``kcore`` — per-node k-core membership probability;
* ``reliability`` — pairwise / cluster connectivity probability;
* ``skyline`` — Pareto-optimal (self-risk, contagion-risk, degree)
  profiles.

See :mod:`repro.queries.base` for the protocol and registry, and
:mod:`repro.queries.engine` for the memoising dispatcher the streaming
monitor embeds.
"""

from __future__ import annotations

from repro.queries.base import (
    QueryResult,
    WorldQuery,
    available_families,
    enumerated_world_count,
    get_query_family,
    param_key,
    register_query_family,
)
from repro.queries.engine import QueryEngine
from repro.queries.kcore import KCoreQuery
from repro.queries.reliability import ReliabilityQuery
from repro.queries.skyline import SkylineQuery
from repro.queries.topk import TopKQuery

__all__ = [
    "QueryResult",
    "WorldQuery",
    "QueryEngine",
    "available_families",
    "enumerated_world_count",
    "get_query_family",
    "param_key",
    "register_query_family",
    "TopKQuery",
    "KCoreQuery",
    "ReliabilityQuery",
    "SkylineQuery",
]
