"""The paper's query, re-expressed as the first registered family.

Top-k vulnerable nodes (SR/BSR/BSRBK in :mod:`repro.algorithms`) is no
longer the hard-wired only consumer of the sampled worlds — it is query
family ``"topk"``.  The estimator ranks the per-node default frequency
over a shared :class:`~repro.sampling.worldstate.WorldView`; because a
view realises worlds bit-identically to the reverse samplers, the
frequency of any candidate node equals the detectors' own sample mean
for the same worlds and key.  The exact side *is* the house oracle
(:func:`repro.core.exact.exact_default_probabilities`), unchanged.

Ties break by ascending node index, the deterministic total order every
ranking path in this repo uses.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.core.errors import QueryError
from repro.core.exact import exact_default_probabilities
from repro.core.graph import UncertainGraph
from repro.core.worlds import DEFAULT_BLOCK_WORLDS, DEFAULT_MAX_CHOICES
from repro.queries.base import (
    QueryResult,
    enumerated_world_count,
    register_query_family,
)
from repro.sampling.worldstate import WorldView

__all__ = ["TopKQuery", "rank_top_k"]


def rank_top_k(probabilities: np.ndarray, k: int) -> np.ndarray:
    """Top-*k* indices by probability desc, index asc — the house order."""
    probabilities = np.asarray(probabilities, dtype=np.float64)
    k = int(k)
    if not 1 <= k <= probabilities.size:
        raise QueryError(
            f"k must be in [1, {probabilities.size}], got {k}"
        )
    order = np.lexsort(
        (np.arange(probabilities.size, dtype=np.int64), -probabilities)
    )
    return order[:k]


class TopKQuery:
    """Family ``"topk"``: the k most default-prone nodes."""

    name = "topk"

    def estimate(self, view: WorldView, *, k: int = 10) -> QueryResult:
        started = perf_counter()
        defaulted = view.defaulted()
        probabilities = view.cached(
            ("topk", "probabilities"),
            lambda: defaulted.mean(axis=0),
        )
        nodes = rank_top_k(probabilities, k)
        return QueryResult(
            family=self.name,
            params={"k": int(k)},
            nodes=nodes,
            values=probabilities[nodes].copy(),
            worlds_used=view.num_worlds,
            method="estimate",
            elapsed_seconds=perf_counter() - started,
        )

    def exact(
        self,
        graph: UncertainGraph,
        *,
        k: int = 10,
        max_choices: int = DEFAULT_MAX_CHOICES,
        block_worlds: int = DEFAULT_BLOCK_WORLDS,
    ) -> QueryResult:
        started = perf_counter()
        probabilities = exact_default_probabilities(
            graph, max_choices=max_choices, block_worlds=block_worlds
        )
        nodes = rank_top_k(probabilities, k)
        return QueryResult(
            family=self.name,
            params={"k": int(k)},
            nodes=nodes,
            values=probabilities[nodes].copy(),
            worlds_used=enumerated_world_count(graph),
            method="exact",
            elapsed_seconds=perf_counter() - started,
        )


register_query_family(TopKQuery(), replace=True)
