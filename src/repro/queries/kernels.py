"""Multi-world graph-analytics kernels shared by estimate and oracle.

Each query family's fast estimator and its exact enumeration oracle run
the *same* per-world kernel — only the source of the world matrices
differs (PRF-realised sample worlds vs Gray-code enumerated blocks).
Sharing the kernel keeps the two sides of every parity test honest: a
disagreement can only come from sampling error, never from two
divergent definitions of the structure being measured.

Both kernels treat the directed uncertain graph as **undirected** for
structural purposes (a surviving edge connects both endpoints), the
standard convention for network reliability and core decomposition on
uncertain graphs; contagion direction continues to matter only for the
default-propagation kernel in :mod:`repro.core.propagation`.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import QueryError

__all__ = ["connected_component_labels", "kcore_membership"]


def _check_edges(
    num_nodes: int, edge_src: np.ndarray, edge_dst: np.ndarray,
    edge_survives: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    edge_src = np.asarray(edge_src, dtype=np.int64)
    edge_dst = np.asarray(edge_dst, dtype=np.int64)
    edge_survives = np.asarray(edge_survives, dtype=bool)
    if edge_survives.ndim != 2 or edge_survives.shape[1] != edge_src.size:
        raise QueryError(
            f"edge_survives must be (W, {edge_src.size}), "
            f"got {edge_survives.shape}"
        )
    if edge_dst.shape != edge_src.shape:
        raise QueryError("edge_src and edge_dst must align")
    return edge_src, edge_dst, edge_survives


def connected_component_labels(
    num_nodes: int,
    edge_src: np.ndarray,
    edge_dst: np.ndarray,
    edge_survives: np.ndarray,
) -> np.ndarray:
    """Per-world undirected connected-component labels.

    Returns an ``int64`` ``(W, n)`` matrix where every node's label is
    the **minimum node index of its component** in that world (so labels
    are canonical: two nodes are connected iff their labels are equal,
    and the labelling is independent of edge order).

    The fixpoint is min-label flooding over the surviving edges of all
    worlds at once, accelerated by pointer jumping (``label <-
    label[label]`` per row) between relaxation rounds; it terminates
    because labels are non-negative and strictly decrease somewhere on
    every round that is not already at the fixpoint.
    """
    n = int(num_nodes)
    edge_src, edge_dst, edge_survives = _check_edges(
        n, edge_src, edge_dst, edge_survives
    )
    worlds = edge_survives.shape[0]
    labels = np.broadcast_to(
        np.arange(n, dtype=np.int64), (worlds, n)
    ).copy()
    if n == 0 or worlds == 0 or not edge_survives.any():
        return labels
    rows, eids = np.nonzero(edge_survives)
    flat_src = rows * np.int64(n) + edge_src[eids]
    flat_dst = rows * np.int64(n) + edge_dst[eids]
    flat = labels.reshape(-1)
    while True:
        a = flat[flat_src]
        b = flat[flat_dst]
        if np.array_equal(a, b):
            return labels
        best = np.minimum(a, b)
        np.minimum.at(flat, flat_src, best)
        np.minimum.at(flat, flat_dst, best)
        # Pointer jumping: adopting the label's own label halves chain
        # lengths, turning O(diameter) rounds into O(log diameter).
        np.minimum(
            labels, np.take_along_axis(labels, labels, axis=1), out=labels
        )


def kcore_membership(
    num_nodes: int,
    edge_src: np.ndarray,
    edge_dst: np.ndarray,
    edge_survives: np.ndarray,
    core_k: int,
    *,
    alive_init: np.ndarray | None = None,
) -> np.ndarray:
    """Per-world ``k``-core membership of every node.

    Returns a boolean ``(W, n)`` matrix: whether each node survives the
    classical core peeling — repeatedly delete nodes with (undirected,
    surviving-subgraph) degree below *core_k* — in each world.  The
    k-core is unique, so the peeling order cannot matter; the kernel
    deletes all violating nodes of all worlds per round.

    Degrees are maintained incrementally: each surviving edge is
    counted once up front and decremented once when an endpoint is
    peeled, so total edge work is ``O(surviving edges)`` across all
    rounds rather than ``O(surviving edges x rounds)``.

    *alive_init* optionally seeds the peel with a known superset of the
    k-core (boolean ``(W, n)``).  Because the k-core is contained in
    every k'-core with ``k' <= k`` and peeling is confluent, passing a
    cached lower-order membership matrix yields the identical answer
    while skipping the nodes that peel already removed.
    """
    n = int(num_nodes)
    core_k = int(core_k)
    if core_k < 1:
        raise QueryError(f"core order k must be >= 1, got {core_k}")
    edge_src, edge_dst, edge_survives = _check_edges(
        n, edge_src, edge_dst, edge_survives
    )
    worlds = edge_survives.shape[0]
    if alive_init is None:
        alive = np.ones((worlds, n), dtype=bool)
    else:
        alive = np.array(alive_init, dtype=bool)
        if alive.shape != (worlds, n):
            raise QueryError(
                f"alive_init must be ({worlds}, {n}), got {alive.shape}"
            )
    if n == 0 or worlds == 0:
        return alive
    present = edge_survives & alive[:, edge_src] & alive[:, edge_dst]
    rows, eids = np.nonzero(present)
    flat_src = rows * np.int64(n) + edge_src[eids]
    flat_dst = rows * np.int64(n) + edge_dst[eids]
    del present, rows, eids
    size = worlds * n
    degrees = np.bincount(flat_src, minlength=size) + np.bincount(
        flat_dst, minlength=size
    )
    flat_alive = alive.reshape(-1)
    drop = flat_alive & (degrees < core_k)
    while drop.any():
        flat_alive &= ~drop
        dead = drop[flat_src] | drop[flat_dst]
        if dead.any():
            degrees -= np.bincount(flat_src[dead], minlength=size)
            degrees -= np.bincount(flat_dst[dead], minlength=size)
            keep = ~dead
            flat_src, flat_dst = flat_src[keep], flat_dst[keep]
        drop = flat_alive & (degrees < core_k)
    return alive
