"""Dispatch + memoisation of query families over one shared view.

A :class:`QueryEngine` binds a read-only
:class:`~repro.sampling.worldstate.WorldView` and answers any
registered family against it, memoising per ``(family, params)``.  Two
levels of sharing happen here:

* across *calls*: repeating a query is a dictionary hit;
* across *families*: distinct families reuse each other's derived
  per-world products (defaults, component labels, …) through the view's
  own cache — e.g. ``topk`` and ``skyline`` both ride one propagation
  fixpoint, and every reliability query rides one component labelling.

The monitor keeps one engine per (mutation-state, shape) and retires it
wholesale when the underlying worlds change — dirty propagation is by
construction, not by per-entry invalidation.
"""

from __future__ import annotations

from repro.queries.base import QueryResult, get_query_family, param_key
from repro.sampling.worldstate import WorldView

__all__ = ["QueryEngine"]


class QueryEngine:
    """Run registered query families against one fixed world set."""

    __slots__ = ("_view", "_results", "hits", "misses")

    def __init__(self, view: WorldView) -> None:
        self._view = view
        self._results: dict[tuple[str, str], QueryResult] = {}
        #: Memo telemetry (observability + the amortisation benchmark).
        self.hits = 0
        self.misses = 0

    @property
    def view(self) -> WorldView:
        """The shared world view every family executes against."""
        return self._view

    def run(self, family: str, **params) -> QueryResult:
        """Estimate *family* over the shared worlds (memoised)."""
        key = (str(family), param_key(params))
        cached = self._results.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        result = get_query_family(family).estimate(self._view, **params)
        self._results[key] = result
        self.misses += 1
        return result
