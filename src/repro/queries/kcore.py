"""Family ``"kcore"``: probability each node sits in the k-core.

Dense-substructure membership on an uncertain graph (the
maximal-clique / dense-subgraph direction of Mukherjee et al. named in
PAPERS.md, in its tractable core-decomposition form): for every node,
``P[v belongs to the k-core of the surviving subgraph]``.  The k-core
is the unique maximal subgraph of minimum (undirected) degree ``k``; a
node with a high membership probability is structurally embedded in
dense regions across most realisations — exactly the nodes whose
default cascades furthest.

Estimator and oracle run the *same* peeling kernel
(:func:`repro.queries.kernels.kcore_membership`); only the world source
differs (PRF-realised view worlds vs enumerated Gray-code blocks), so
the parity tests measure sampling error and nothing else.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.core.errors import QueryError
from repro.core.graph import UncertainGraph
from repro.core.worlds import (
    DEFAULT_BLOCK_WORLDS,
    DEFAULT_MAX_CHOICES,
    enumerate_world_blocks,
)
from repro.queries.base import (
    QueryResult,
    enumerated_world_count,
    register_query_family,
)
from repro.queries.kernels import kcore_membership
from repro.sampling.worldstate import WorldView

__all__ = ["KCoreQuery"]


def _report(
    probabilities: np.ndarray, top: int | None
) -> tuple[np.ndarray, np.ndarray]:
    """All nodes in index order, or the *top* most probable members."""
    n = probabilities.size
    if top is None:
        nodes = np.arange(n, dtype=np.int64)
        return nodes, probabilities.copy()
    top = int(top)
    if not 1 <= top <= n:
        raise QueryError(f"top must be in [1, {n}], got {top}")
    order = np.lexsort((np.arange(n, dtype=np.int64), -probabilities))
    nodes = order[:top]
    return nodes, probabilities[nodes].copy()


class KCoreQuery:
    """Per-node k-core membership probability."""

    name = "kcore"

    def estimate(
        self, view: WorldView, *, k: int = 2, top: int | None = None
    ) -> QueryResult:
        started = perf_counter()
        core_k = int(k)
        src, dst, _ = view.graph.edge_array

        def _membership() -> np.ndarray:
            # Seed from the deepest cached lower-order core: the k-core
            # is inside every k'-core (k' <= k), so peeling resumes from
            # an earlier query's survivors instead of the full graph.
            seed = None
            for lower in range(core_k - 1, 0, -1):
                seed = view.peek(("kcore", "membership", lower))
                if seed is not None:
                    break
            return kcore_membership(
                view.num_nodes, src, dst, view.edge_survives(), core_k,
                alive_init=seed,
            )

        alive = view.cached(("kcore", "membership", core_k), _membership)
        probabilities = alive.mean(axis=0)
        nodes, values = _report(probabilities, top)
        return QueryResult(
            family=self.name,
            params={"k": core_k, "top": None if top is None else int(top)},
            nodes=nodes,
            values=values,
            worlds_used=view.num_worlds,
            method="estimate",
            elapsed_seconds=perf_counter() - started,
        )

    def exact(
        self,
        graph: UncertainGraph,
        *,
        k: int = 2,
        top: int | None = None,
        max_choices: int = DEFAULT_MAX_CHOICES,
        block_worlds: int = DEFAULT_BLOCK_WORLDS,
    ) -> QueryResult:
        started = perf_counter()
        core_k = int(k)
        if core_k < 1:
            raise QueryError(f"core order k must be >= 1, got {core_k}")
        src, dst, _ = graph.edge_array
        probabilities = np.zeros(graph.num_nodes, dtype=np.float64)
        for block in enumerate_world_blocks(
            graph, max_choices=max_choices, block_worlds=block_worlds
        ):
            alive = kcore_membership(
                graph.num_nodes, src, dst, block.edge_survives, core_k
            )
            probabilities += block.masses @ alive
        np.clip(probabilities, 0.0, 1.0, out=probabilities)
        nodes, values = _report(probabilities, top)
        return QueryResult(
            family=self.name,
            params={"k": core_k, "top": None if top is None else int(top)},
            nodes=nodes,
            values=values,
            worlds_used=enumerated_world_count(graph),
            method="exact",
            elapsed_seconds=perf_counter() - started,
        )


register_query_family(KCoreQuery(), replace=True)
