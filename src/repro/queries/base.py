"""The ``WorldQuery`` protocol, result type and family registry.

One repaired world set, many query families.  The expensive asset the
system maintains is the cached, repairable possible-world state; this
package turns it from a single-purpose top-k engine into a substrate any
registered **query family** can execute against:

* a family's :meth:`~WorldQuery.estimate` runs over a read-only
  :class:`~repro.sampling.worldstate.WorldView` — the realised worlds
  the monitor already keeps repaired — and shares derived per-world
  products (propagated defaults, component labels, …) with every other
  family through :meth:`WorldView.cached`;
* a family's :meth:`~WorldQuery.exact` is the house small-graph oracle:
  a mass-weighted sum over :func:`repro.core.worlds
  .enumerate_world_blocks`, against which the estimator is pinned by
  the test suite (bit-identical on deterministic graphs, statistical
  parity otherwise).

Families register themselves at import time through
:func:`register_query_family`; consumers resolve them by name through
:func:`get_query_family` — the monitor's ``query(family, ...)``, the
serving layer's per-family result cache, the front end's ``family``
request field and the ``repro-detect query --family`` CLI all go
through this one registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.errors import QueryError
from repro.core.graph import UncertainGraph
from repro.sampling.worldstate import WorldView

__all__ = [
    "QueryResult",
    "WorldQuery",
    "register_query_family",
    "get_query_family",
    "available_families",
    "param_key",
    "enumerated_world_count",
]


def enumerated_world_count(graph: UncertainGraph) -> int:
    """``2^free`` — worlds an exact oracle enumerates for *graph*.

    Free choices are the node/edge probabilities strictly inside
    ``(0, 1)``; deterministic choices are pinned, exactly as
    :func:`repro.core.worlds.enumerate_world_blocks` pins them.
    """
    ps = graph.self_risk_array
    pe = graph.edge_array[2]
    free = int(np.count_nonzero((ps > 0.0) & (ps < 1.0)))
    free += int(np.count_nonzero((pe > 0.0) & (pe < 1.0)))
    return 1 << free


def _jsonable(value):
    """Recursively coerce numpy containers/scalars to JSON-safe types."""
    if isinstance(value, np.ndarray):
        return [_jsonable(item) for item in value.tolist()]
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


@dataclass(frozen=True)
class QueryResult:
    """Answer of one query family over one set of worlds.

    Attributes
    ----------
    family:
        The registered family name that produced this result.
    params:
        The (validated, normalised) parameters the family ran with.
    nodes:
        ``int64`` internal node indices the result reports on.  What
        the indices *mean* is family-specific (top-k members, skyline
        members, all nodes, …); families that answer about node sets
        rather than nodes (reliability pairs) leave this empty and
        report through *values*/*details*.
    values:
        ``float64`` array aligned with *nodes* (or with the family's
        own documented order when *nodes* is empty).  Estimates and
        exact answers use the same layout so they compare directly.
    worlds_used:
        Worlds the answer integrates over (sample count for estimates,
        enumerated world count for the oracle).
    method:
        ``"estimate"`` or ``"exact"``.
    elapsed_seconds:
        Wall-clock of the computation (0.0 when not measured).
    details:
        Family-specific extras, JSON-safe after :meth:`to_dict`.
    """

    family: str
    params: dict
    nodes: np.ndarray
    values: np.ndarray
    worlds_used: int
    method: str
    elapsed_seconds: float = 0.0
    details: dict = field(default_factory=dict)

    def same_answer(self, other: "QueryResult") -> bool:
        """Whether two results report the identical answer.

        Compares family, reported nodes and values bit-for-bit —
        the lockstep invariant the drift tests assert (timing, method
        and world counts are intentionally excluded).
        """
        return (
            self.family == other.family
            and np.array_equal(self.nodes, other.nodes)
            and np.array_equal(self.values, other.values)
        )

    def to_dict(self) -> dict:
        """JSON-safe representation (the wire format of the front end)."""
        return {
            "family": self.family,
            "params": _jsonable(self.params),
            "nodes": [int(v) for v in np.asarray(self.nodes).tolist()],
            "values": [float(v) for v in np.asarray(self.values).tolist()],
            "worlds_used": int(self.worlds_used),
            "method": self.method,
            "elapsed_seconds": float(self.elapsed_seconds),
            "details": _jsonable(self.details),
        }


@runtime_checkable
class WorldQuery(Protocol):
    """What a pluggable query family must provide.

    ``name`` is the registry key.  ``estimate`` answers from realised
    worlds (a :class:`WorldView`); ``exact`` is the small-graph
    enumeration oracle with the same parameter surface and result
    layout, so the two are directly comparable.
    """

    name: str

    def estimate(self, view: WorldView, **params) -> QueryResult:
        """Answer from the realised worlds of *view*."""
        ...

    def exact(self, graph: UncertainGraph, **params) -> QueryResult:
        """Ground-truth answer by possible-world enumeration."""
        ...


_REGISTRY: dict[str, WorldQuery] = {}


def register_query_family(query: WorldQuery, *, replace: bool = False) -> None:
    """Register a family under ``query.name``.

    Registration is module-import-time side effect of each family
    module; *replace* exists so re-imports (and tests swapping in
    doubles) stay idempotent instead of erroring.
    """
    name = str(query.name)
    if not name:
        raise QueryError("query family needs a non-empty name")
    if name in _REGISTRY and not replace:
        raise QueryError(f"query family {name!r} is already registered")
    _REGISTRY[name] = query


def get_query_family(name: str) -> WorldQuery:
    """Resolve a registered family by name."""
    try:
        return _REGISTRY[str(name)]
    except KeyError:
        raise QueryError(
            f"unknown query family {name!r}; "
            f"available: {available_families()}"
        ) from None


def available_families() -> list[str]:
    """Sorted names of every registered family."""
    return sorted(_REGISTRY)


def param_key(params: dict) -> str:
    """Deterministic hashable key for a family's parameter dict.

    The serving layer's result cache and the monitor's per-state memo
    both key on ``(family, param_key(params))``; ``repr`` round-trips
    the JSON-level types the wire protocol can carry.
    """
    return repr(
        sorted((str(key), repr(value)) for key, value in dict(params).items())
    )
