"""Family ``"skyline"``: Pareto-optimal risk profiles (DySky-flavoured).

The dynamic-skyline direction from PAPERS.md: rank no single score, but
report every node whose risk profile is **not dominated** — no other
node is at least as risky on all dimensions and strictly riskier on
one.  The three dimensions, all "larger is riskier":

* ``self_risk`` — the node's own default probability ``ps(v)`` (an
  input, identical for estimate and oracle);
* ``contagion_risk`` — ``P[v defaults through contagion]``, i.e. it
  defaults in a world without self-defaulting there.  This is the
  probabilistic dimension: estimated from the shared view worlds,
  enumerated exactly by the oracle;
* ``degree`` — total (in + out) structural degree, the node's blast
  surface.

The skyline is the set a risk officer actually triages: every node that
is the unique best trade-off somewhere in (self, contagion, exposure)
space.  Estimate and oracle share the dominance kernel; they differ
only in where the contagion column comes from.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.core.graph import UncertainGraph
from repro.core.propagation import propagate_defaults_block
from repro.core.worlds import (
    DEFAULT_BLOCK_WORLDS,
    DEFAULT_MAX_CHOICES,
    enumerate_world_blocks,
)
from repro.queries.base import (
    QueryResult,
    enumerated_world_count,
    register_query_family,
)
from repro.sampling.worldstate import WorldView

__all__ = ["SkylineQuery", "skyline_mask"]

#: Pairwise comparison cells evaluated per chunk (bounds the transient
#: ``(n, chunk, 3)`` boolean buffers of the dominance test).
_DOMINANCE_BUDGET = 1 << 24

_DIMENSIONS = ("self_risk", "contagion_risk", "degree")


def skyline_mask(coordinates: np.ndarray) -> np.ndarray:
    """Boolean mask of the non-dominated rows (maximising every column).

    Row ``u`` dominates row ``v`` when ``u >= v`` on every column and
    ``u > v`` on at least one; the skyline is every row no other row
    dominates.  Equal rows dominate nobody, so duplicated profiles all
    stay on the skyline (deterministic, order-independent).
    """
    coordinates = np.asarray(coordinates, dtype=np.float64)
    n, dims = coordinates.shape
    keep = np.ones(n, dtype=bool)
    if n == 0:
        return keep
    chunk = max(1, _DOMINANCE_BUDGET // max(n * dims, 1))
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        block = coordinates[start:stop]
        ge = (coordinates[:, None, :] >= block[None, :, :]).all(axis=2)
        gt = (coordinates[:, None, :] > block[None, :, :]).any(axis=2)
        keep[start:stop] = ~(ge & gt).any(axis=0)
    return keep


def _degrees(graph: UncertainGraph) -> np.ndarray:
    return (
        graph.in_csr().degrees + graph.out_csr().degrees
    ).astype(np.float64)


class SkylineQuery:
    """Non-dominated nodes over (self-risk, contagion-risk, degree)."""

    name = "skyline"

    def _result(
        self,
        graph: UncertainGraph,
        contagion_risk: np.ndarray,
        worlds_used: int,
        method: str,
        started: float,
    ) -> QueryResult:
        coordinates = np.stack(
            (graph.self_risk_array, contagion_risk, _degrees(graph)),
            axis=1,
        )
        nodes = np.flatnonzero(skyline_mask(coordinates)).astype(np.int64)
        return QueryResult(
            family=self.name,
            params={},
            nodes=nodes,
            values=contagion_risk[nodes].copy(),
            worlds_used=worlds_used,
            method=method,
            elapsed_seconds=perf_counter() - started,
            details={
                "dimensions": list(_DIMENSIONS),
                "coordinates": [
                    [float(c) for c in coordinates[v]] for v in nodes
                ],
            },
        )

    def estimate(self, view: WorldView) -> QueryResult:
        started = perf_counter()
        contagion_risk = view.cached(
            ("skyline", "contagion_risk"),
            lambda: view.contagion().mean(axis=0),
        )
        return self._result(
            view.graph, contagion_risk, view.num_worlds, "estimate", started
        )

    def exact(
        self,
        graph: UncertainGraph,
        *,
        max_choices: int = DEFAULT_MAX_CHOICES,
        block_worlds: int = DEFAULT_BLOCK_WORLDS,
    ) -> QueryResult:
        started = perf_counter()
        contagion_risk = np.zeros(graph.num_nodes, dtype=np.float64)
        for block in enumerate_world_blocks(
            graph, max_choices=max_choices, block_worlds=block_worlds
        ):
            defaulted = propagate_defaults_block(
                graph, block.self_default, block.edge_survives
            )
            contagion = defaulted & ~block.self_default
            contagion_risk += block.masses @ contagion
        np.clip(contagion_risk, 0.0, 1.0, out=contagion_risk)
        return self._result(
            graph, contagion_risk, enumerated_world_count(graph),
            "exact", started,
        )


register_query_family(SkylineQuery(), replace=True)
