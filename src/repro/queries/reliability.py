"""Family ``"reliability"``: connectivity probability of pairs/clusters.

The Ceccarello-et-al. direction from PAPERS.md (clustering uncertain
graphs around reliability): for node pairs ``(u, v)``, the probability
that ``u`` and ``v`` land in the same connected component of the
surviving subgraph; for a node *cluster*, the probability the whole set
is mutually connected.  These are the primitives reliability-based
clustering optimises — a cluster is good exactly when its members stay
connected in most realisations.

Per-world connectivity comes from canonical min-index component labels
(:func:`repro.queries.kernels.connected_component_labels`) — computed
once per world set and shared across every pair/cluster query through
the view cache, which is where the amortisation of the query layer
shows up most directly.

Result layout: ``values[i]`` is the probability of ``pairs[i]``; when a
*cluster* is given its probability is appended as the final entry.
``details`` carries the same numbers labelled.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.core.errors import QueryError
from repro.core.graph import UncertainGraph
from repro.core.worlds import (
    DEFAULT_BLOCK_WORLDS,
    DEFAULT_MAX_CHOICES,
    enumerate_world_blocks,
)
from repro.queries.base import (
    QueryResult,
    enumerated_world_count,
    register_query_family,
)
from repro.queries.kernels import connected_component_labels
from repro.sampling.worldstate import WorldView

__all__ = ["ReliabilityQuery"]


def _normalise(
    num_nodes: int, pairs, cluster
) -> tuple[list[tuple[int, int]], list[int]]:
    """Validate and canonicalise the pair/cluster parameters."""

    def _node(value) -> int:
        index = int(value)
        if not 0 <= index < num_nodes:
            raise QueryError(
                f"node index {index} out of range [0, {num_nodes})"
            )
        return index

    pair_list: list[tuple[int, int]] = []
    for pair in pairs or ():
        if len(pair) != 2:
            raise QueryError(f"pairs must be (u, v) pairs, got {pair!r}")
        pair_list.append((_node(pair[0]), _node(pair[1])))
    cluster_list = [_node(v) for v in cluster or ()]
    if cluster_list and len(cluster_list) < 2:
        raise QueryError("a cluster needs at least 2 nodes")
    if not pair_list and not cluster_list:
        raise QueryError(
            "reliability query needs 'pairs' and/or a 'cluster'"
        )
    return pair_list, cluster_list


def _connectivity_means(
    labels: np.ndarray,
    weights: np.ndarray | None,
    pairs: list[tuple[int, int]],
    cluster: list[int],
) -> np.ndarray:
    """Pair/cluster same-component indicators averaged over worlds.

    With *weights* ``None`` each world counts ``1/W`` (sample mean);
    otherwise the indicator is weighted by the worlds' probability
    masses (the exact oracle's accumulation step).
    """
    indicators = []
    for u, v in pairs:
        indicators.append(labels[:, u] == labels[:, v])
    if cluster:
        members = labels[:, cluster]
        indicators.append((members == members[:, :1]).all(axis=1))
    stacked = np.stack(indicators, axis=1)  # (W, q)
    if weights is None:
        return stacked.mean(axis=0)
    return weights @ stacked


class ReliabilityQuery:
    """Pairwise / cluster connectivity probability."""

    name = "reliability"

    def _result(
        self,
        pairs: list[tuple[int, int]],
        cluster: list[int],
        values: np.ndarray,
        worlds_used: int,
        method: str,
        started: float,
    ) -> QueryResult:
        details: dict = {
            "pairs": [
                [u, v, float(values[i])] for i, (u, v) in enumerate(pairs)
            ]
        }
        if cluster:
            details["cluster"] = {
                "nodes": list(cluster),
                "probability": float(values[-1]),
            }
        return QueryResult(
            family=self.name,
            params={
                "pairs": [[u, v] for u, v in pairs],
                "cluster": list(cluster),
            },
            nodes=np.empty(0, dtype=np.int64),
            values=values,
            worlds_used=worlds_used,
            method=method,
            elapsed_seconds=perf_counter() - started,
            details=details,
        )

    def estimate(
        self, view: WorldView, *, pairs=None, cluster=None
    ) -> QueryResult:
        started = perf_counter()
        pair_list, cluster_list = _normalise(view.num_nodes, pairs, cluster)
        src, dst, _ = view.graph.edge_array
        labels = view.cached(
            ("reliability", "components"),
            lambda: connected_component_labels(
                view.num_nodes, src, dst, view.edge_survives()
            ),
        )
        values = _connectivity_means(labels, None, pair_list, cluster_list)
        return self._result(
            pair_list, cluster_list, values, view.num_worlds,
            "estimate", started,
        )

    def exact(
        self,
        graph: UncertainGraph,
        *,
        pairs=None,
        cluster=None,
        max_choices: int = DEFAULT_MAX_CHOICES,
        block_worlds: int = DEFAULT_BLOCK_WORLDS,
    ) -> QueryResult:
        started = perf_counter()
        pair_list, cluster_list = _normalise(graph.num_nodes, pairs, cluster)
        src, dst, _ = graph.edge_array
        total = np.zeros(
            len(pair_list) + (1 if cluster_list else 0), dtype=np.float64
        )
        for block in enumerate_world_blocks(
            graph, max_choices=max_choices, block_worlds=block_worlds
        ):
            labels = connected_component_labels(
                graph.num_nodes, src, dst, block.edge_survives
            )
            total += _connectivity_means(
                labels, block.masses, pair_list, cluster_list
            )
        np.clip(total, 0.0, 1.0, out=total)
        return self._result(
            pair_list, cluster_list, total, enumerated_world_count(graph),
            "exact", started,
        )


register_query_family(ReliabilityQuery(), replace=True)
