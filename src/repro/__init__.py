"""Top-k vulnerable nodes detection in uncertain graphs.

A production-quality reproduction of *"Efficient Top-k Vulnerable Nodes
Detection in Uncertain Graphs"* (Cheng, Chen, Wang, Xiang; ICDE 2022 /
arXiv:1912.12383): the uncertain-graph model, the five detection
algorithms (N, SN, SR, BSR, BSRBK), the bound/pruning machinery, the
bottom-k sketch early stop, synthetic stand-ins for every evaluation
dataset, and a harness regenerating every table and figure.

Quickstart
----------
>>> from repro import UncertainGraph, BottomKDetector
>>> g = UncertainGraph()
>>> for name in "ABCDE":
...     g.add_node(name, self_risk=0.2)
>>> for src, dst in [("A","B"),("A","C"),("B","D"),("B","E"),("C","E"),("D","E")]:
...     _ = g.add_edge(src, dst, probability=0.2)
>>> result = BottomKDetector(seed=7).detect(g, k=2)
>>> len(result.nodes)
2
"""

from repro.algorithms import (
    ALL_METHODS,
    BottomKDetector,
    BoundedSampleReverseDetector,
    DetectionResult,
    NaiveDetector,
    SampledNaiveDetector,
    SampleReverseDetector,
    VulnerableNodeDetector,
    make_detector,
)
from repro.bounds import (
    CandidateReduction,
    lower_bounds,
    reduce_candidates,
    upper_bounds,
)
from repro.core import (
    GraphError,
    ProbabilityError,
    ReproError,
    UncertainGraph,
    exact_default_probabilities,
    exact_top_k,
    graph_from_mapping,
)
from repro.metrics import precision_at_k, roc_auc
from repro.sampling import (
    BatchedReverseSampler,
    ForwardSampler,
    IndexedReverseSampler,
    ReverseSampler,
    basic_sample_size,
    reduced_sample_size,
)
from repro.sketch import BottomKSketch
from repro.streaming import TopKMonitor

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "UncertainGraph",
    "graph_from_mapping",
    "exact_default_probabilities",
    "exact_top_k",
    "ReproError",
    "GraphError",
    "ProbabilityError",
    "ALL_METHODS",
    "DetectionResult",
    "VulnerableNodeDetector",
    "NaiveDetector",
    "SampledNaiveDetector",
    "SampleReverseDetector",
    "BoundedSampleReverseDetector",
    "BottomKDetector",
    "make_detector",
    "CandidateReduction",
    "lower_bounds",
    "upper_bounds",
    "reduce_candidates",
    "ForwardSampler",
    "ReverseSampler",
    "BatchedReverseSampler",
    "IndexedReverseSampler",
    "TopKMonitor",
    "basic_sample_size",
    "reduced_sample_size",
    "BottomKSketch",
    "precision_at_k",
    "roc_auc",
]
