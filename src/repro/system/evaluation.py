"""The evaluation module of the risk-control centre (paper §5.1).

"Evaluation module leverage the output of VulnDS to quantify the loan
grant amount, time limit and interest ratio, etc."

Terms are produced by simple monotone schedules over the enterprise's
estimated default probability: riskier borrowers get a smaller fraction
of the requested amount, a shorter term, and a higher rate.  The exact
curves are configuration, not science — what matters for the
reproduction is that vulnerability flows from detection into pricing,
as the deployed system does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ReproError
from repro.system.loans import LoanApplication, LoanTerms

__all__ = ["TermSchedule", "EvaluationModule"]


@dataclass(frozen=True)
class TermSchedule:
    """Pricing configuration of the evaluation module.

    Attributes
    ----------
    base_rate:
        Annual interest rate for a riskless borrower.
    risk_premium:
        Extra rate at vulnerability 1 (linear in between).
    amount_haircut:
        Fraction of the requested amount withheld at vulnerability 1.
    max_term_months:
        Term cap applied to risky borrowers (risk shortens the term
        linearly down to ``min_term_months``).
    min_term_months:
        Shortest term the schedule will impose.
    """

    base_rate: float = 0.045
    risk_premium: float = 0.12
    amount_haircut: float = 0.8
    max_term_months: int = 60
    min_term_months: int = 6

    def __post_init__(self) -> None:
        if not 0.0 < self.base_rate < 1.0:
            raise ReproError(f"base rate must be in (0,1), got {self.base_rate}")
        if self.risk_premium < 0:
            raise ReproError("risk premium must be non-negative")
        if not 0.0 <= self.amount_haircut <= 1.0:
            raise ReproError("amount haircut must be in [0, 1]")
        if self.min_term_months <= 0 or self.max_term_months < self.min_term_months:
            raise ReproError("term bounds must satisfy 0 < min <= max")


class EvaluationModule:
    """Turns (application, vulnerability) into loan terms."""

    def __init__(self, schedule: TermSchedule | None = None) -> None:
        self._schedule = schedule or TermSchedule()

    @property
    def schedule(self) -> TermSchedule:
        """The pricing configuration in force."""
        return self._schedule

    def price(
        self, application: LoanApplication, vulnerability: float
    ) -> LoanTerms:
        """Produce terms for an approved application.

        Parameters
        ----------
        application:
            The loan request.
        vulnerability:
            Estimated default probability from VulnDS, in ``[0, 1]``.
        """
        if not 0.0 <= vulnerability <= 1.0:
            raise ReproError(
                f"vulnerability must be in [0, 1], got {vulnerability}"
            )
        schedule = self._schedule
        granted = application.amount * (
            1.0 - schedule.amount_haircut * vulnerability
        )
        rate = schedule.base_rate + schedule.risk_premium * vulnerability
        term_span = schedule.max_term_months - schedule.min_term_months
        term_cap = round(schedule.max_term_months - term_span * vulnerability)
        term = min(application.term_months, max(schedule.min_term_months, term_cap))
        return LoanTerms(
            granted_amount=round(granted, 2),
            term_months=term,
            annual_interest_rate=round(rate, 6),
        )
