"""The risk-control centre: rules → VulnDS → evaluation (paper §5.1).

"The risk control center consists of three main parts: the rule engine,
vulnerable detection system and evaluation module. [...] All three steps
in the risk control center will be employed to evaluate all issued loans
regularly.  In our implementation, we detect all loans monthly by the
proposed VulnDS."

:class:`RiskControlCenter` wires the three stages together, keeps an
audit log, and implements the monthly re-evaluation batch over issued
loans.  Between the monthly batches the centre can run in *streaming*
mode (:meth:`RiskControlCenter.enable_streaming`): market updates —
re-scored self-risks, re-assessed guarantee strengths — are pushed
through :meth:`RiskControlCenter.apply_market_update`, which refreshes
the watch list incrementally instead of re-detecting from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable, Iterable

from repro.core.errors import ReproError
from repro.streaming.events import UpdateEvent
from repro.streaming.monitor import TopKMonitor
from repro.system.evaluation import EvaluationModule
from repro.system.loans import Decision, LoanApplication, LoanDecision
from repro.system.rules import RuleEngine
from repro.system.vulnds import PortfolioAssessment, VulnDS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.service import RiskService

__all__ = ["AuditRecord", "RiskControlCenter"]


@dataclass(frozen=True)
class AuditRecord:
    """One audited pipeline event (application decision or batch run)."""

    event: str
    detail: str


@dataclass
class RiskControlCenter:
    """End-to-end risk pipeline over one guarantee network.

    Parameters
    ----------
    rule_engine:
        Stage 1 — blacklist/whitelist/compliance checks.
    vulnds:
        Stage 2 — the top-k vulnerable detection service.
    evaluation:
        Stage 3 — pricing for approved loans.
    watch_fraction:
        Fraction of enterprises kept on the vulnerability watch list at
        each assessment (the deployed system's k).
    review_threshold:
        Watch-listed applicants whose estimated default probability is
        at or above this go to manual review instead of auto-approval.
    """

    rule_engine: RuleEngine
    vulnds: VulnDS
    evaluation: EvaluationModule = field(default_factory=EvaluationModule)
    watch_fraction: float = 0.1
    review_threshold: float = 0.5
    audit_log: list[AuditRecord] = field(default_factory=list)
    _service: "RiskService | None" = field(
        default=None, init=False, repr=False
    )
    _service_tenant: Hashable = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.watch_fraction <= 1.0:
            raise ReproError(
                f"watch fraction must be in (0, 1], got {self.watch_fraction}"
            )
        if not 0.0 <= self.review_threshold <= 1.0:
            raise ReproError(
                f"review threshold must be in [0, 1], got "
                f"{self.review_threshold}"
            )

    def _audit(self, event: str, detail: str) -> None:
        self.audit_log.append(AuditRecord(event=event, detail=detail))

    def _current_assessment(self) -> PortfolioAssessment:
        assessment = self.vulnds.last_assessment
        if assessment is None:
            assessment = self.run_monthly_assessment()
        return assessment

    @property
    def watch_k(self) -> int:
        """The deployed system's k: watch-listed enterprises per run."""
        return max(1, round(self.vulnds.graph.num_nodes * self.watch_fraction))

    def run_monthly_assessment(self) -> PortfolioAssessment:
        """Stage-2 batch: re-detect the vulnerable enterprises."""
        n = self.vulnds.graph.num_nodes
        k = self.watch_k
        assessment = self.vulnds.assess_portfolio(k)
        self._audit(
            "monthly-assessment",
            f"top-{k} of {n} enterprises watch-listed; "
            f"{assessment.detection.samples_used} worlds sampled, "
            f"{assessment.detection.k_verified} bound-verified",
        )
        return assessment

    def enable_streaming(self, **monitor_kwargs) -> TopKMonitor:
        """Serve the watch list incrementally between monthly batches.

        Attaches a streaming monitor sized to this centre's watch list
        (``watch_fraction`` of the portfolio); keyword arguments are
        forwarded to :class:`~repro.streaming.monitor.TopKMonitor`.
        """
        monitor = self.vulnds.enable_streaming(self.watch_k, **monitor_kwargs)
        self._audit(
            "streaming-enabled",
            f"incremental top-{monitor.k} monitor attached "
            f"(engine={monitor.engine_name})",
        )
        return monitor

    def attach_serving(
        self,
        service: "RiskService",
        tenant_id: Hashable | None = None,
        **monitor_kwargs,
    ) -> Hashable:
        """Serve this centre's watch list as one tenant of *service*.

        Many control centres (one per portfolio) can attach to the same
        :class:`~repro.serving.service.RiskService`, sharing its base
        graph buffers and worker pool.  The tenant's monitor is sized to
        this centre's watch list; keyword arguments configure it (seed,
        engine, epsilon, …).  After attaching,
        :meth:`apply_market_update` routes events through the service's
        ingestion queue instead of an in-process monitor — the tenant's
        copy-on-write view becomes the authoritative live state, while
        this centre's own graph stays at the shared snapshot.
        """
        if self._service is not None:
            raise ReproError("a serving tenant is already attached")
        base = service.pool.base_graph
        ours = self.vulnds.graph
        if base is not ours and (
            base.num_nodes != ours.num_nodes
            or base.num_edges != ours.num_edges
            or base.labels() != ours.labels()
        ):
            raise ReproError(
                "serving base snapshot does not match this centre's "
                f"network ({base.num_nodes}n/{base.num_edges}e vs "
                f"{ours.num_nodes}n/{ours.num_edges}e or labels differ); "
                "build the RiskService over the same graph"
            )
        if tenant_id is None:
            tenant_id = f"portfolio-{len(service.tenants())}"
        service.register_tenant(tenant_id, self.watch_k, **monitor_kwargs)
        self._service = service
        self._service_tenant = tenant_id
        self._audit(
            "serving-attached",
            f"tenant {tenant_id!r} registered (top-{self.watch_k}, "
            f"pool mode={service.pool.mode})",
        )
        return tenant_id

    def apply_market_update(
        self, events: Iterable[UpdateEvent]
    ) -> PortfolioAssessment:
        """Push market updates and refresh the watch list incrementally.

        The returned assessment is bit-identical to a from-scratch
        detection on the updated network — the monitor only reuses what
        it can prove unchanged.  Requires :meth:`enable_streaming` (or
        :meth:`attach_serving`, which routes the updates through the
        shared service's ingestion queue instead).
        """
        if self._service is not None:
            return self._apply_via_service(events)
        applied = self.vulnds.apply_updates(events)
        monitor = self.vulnds.monitor
        # refresh() yields *this* update's report even for a no-op batch
        # (a "clean" report); reading last_report after assess_portfolio
        # could attribute a previous refresh's telemetry to this update.
        report = monitor.refresh() if monitor is not None else None
        assessment = self.vulnds.assess_portfolio(self.watch_k)
        detail = f"{applied} updates applied"
        if (
            report is not None
            and monitor is not None
            and monitor.k == self.watch_k
        ):
            detail += (
                f"; refresh={report.mode}, sampling={report.sampling} "
                f"({report.worlds_repaired}/{report.samples} worlds), "
                f"{report.elapsed_seconds * 1e3:.1f}ms"
            )
        else:
            # The portfolio grew/shrank since streaming was enabled, so
            # the assessment fell back to the configured detector; do
            # not claim streaming telemetry for it.
            detail += "; served by full detection (watch size changed)"
        self._audit("market-update", detail)
        return assessment

    def _apply_via_service(
        self, events: Iterable[UpdateEvent]
    ) -> PortfolioAssessment:
        """Route one market update through the attached serving tenant."""
        service = self._service
        tenant_id = self._service_tenant
        assert service is not None
        applied = service.submit_updates(tenant_id, events)
        reports = service.flush()
        detection = service.query_topk(tenant_id, flush=False)
        assessment = self.vulnds.adopt_assessment(detection)
        detail = (
            f"{applied} updates submitted to serving tenant {tenant_id!r}"
        )
        report = reports.get(tenant_id)
        if report is not None:
            detail += (
                f"; refresh={report.mode}, sampling={report.sampling} "
                f"({report.worlds_repaired}/{report.samples} worlds), "
                f"{report.elapsed_seconds * 1e3:.1f}ms"
            )
        self._audit("market-update", detail)
        return assessment

    def process(self, application: LoanApplication) -> LoanDecision:
        """Run one application through all three stages."""
        check = self.rule_engine.check(application)
        if not check.passed:
            self._audit(
                "reject", f"{application.application_id}: {'; '.join(check.reasons)}"
            )
            return LoanDecision(
                application=application,
                decision=Decision.REJECT,
                reasons=check.reasons,
            )
        assessment = self._current_assessment()
        enterprise_id = application.enterprise.enterprise_id
        vulnerability = assessment.vulnerability(enterprise_id)
        if (
            not check.fast_tracked
            and vulnerability is not None
            and vulnerability >= self.review_threshold
        ):
            reasons = check.reasons + (
                f"vulnds: estimated default probability "
                f"{vulnerability:.3f} >= {self.review_threshold:.3f}",
            )
            self._audit("review", f"{application.application_id}: vulnerable")
            return LoanDecision(
                application=application,
                decision=Decision.REVIEW,
                reasons=reasons,
                vulnerability=vulnerability,
            )
        effective_risk = vulnerability if vulnerability is not None else 0.0
        terms = self.evaluation.price(application, effective_risk)
        self._audit(
            "approve",
            f"{application.application_id}: granted {terms.granted_amount:.0f} "
            f"at {terms.annual_interest_rate:.2%} for {terms.term_months} months",
        )
        return LoanDecision(
            application=application,
            decision=Decision.APPROVE,
            reasons=check.reasons,
            vulnerability=vulnerability,
            terms=terms,
        )

    def process_batch(
        self, applications: list[LoanApplication]
    ) -> list[LoanDecision]:
        """Process many applications against one fresh assessment."""
        self.run_monthly_assessment()
        return [self.process(application) for application in applications]
