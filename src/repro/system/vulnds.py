"""VulnDS — the vulnerable-enterprise detection service of §5.

"VulnDS assess the self-risk of SME, the risk of guarantee
relationships, and detect the top-k vulnerable nodes by our methods."

The deployed system plugs HGAR [10] in for self-risk assessment and
p-wkNN [15] for guarantee-edge risk; both are pluggable callables here,
with feature-trained defaults from :mod:`repro.baselines.ml`.  Detection
itself is any configured detector (BSRBK by default, matching the
deployment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.algorithms.base import DetectionResult, VulnerableNodeDetector
from repro.algorithms.bsrbk import BottomKDetector
from repro.core.errors import ReproError
from repro.core.graph import UncertainGraph

__all__ = ["VulnDS", "PortfolioAssessment"]

#: Signature of a self-risk assessor: features -> probabilities.
SelfRiskAssessor = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class PortfolioAssessment:
    """One monthly VulnDS run over the whole guarantee network.

    Attributes
    ----------
    detection:
        The raw top-k detection result.
    watch_list:
        Enterprise ids ranked most-vulnerable first.
    scores:
        Mapping enterprise id → estimated default probability for the
        watch-listed enterprises.
    """

    detection: DetectionResult
    watch_list: tuple[str, ...]
    scores: Mapping[str, float]

    def is_watched(self, enterprise_id: str) -> bool:
        """Whether the enterprise is on the current watch list."""
        return enterprise_id in self.scores

    def vulnerability(self, enterprise_id: str) -> float | None:
        """The enterprise's score, or ``None`` if not watch-listed."""
        return self.scores.get(enterprise_id)


class VulnDS:
    """The vulnerable-SME detection service.

    Parameters
    ----------
    graph:
        The bank's guarantee network (edge probabilities already set by
        the guarantee-risk model).
    detector:
        Top-k detector; defaults to BSRBK with the paper's settings.
    self_risk_assessor:
        Optional callable mapping a feature matrix (aligned with the
        graph's node order) to self-risk probabilities.  When provided,
        :meth:`refresh_self_risks` pushes new assessments into the graph
        — the monthly re-scoring step of the deployment.
    """

    def __init__(
        self,
        graph: UncertainGraph,
        detector: VulnerableNodeDetector | None = None,
        self_risk_assessor: SelfRiskAssessor | None = None,
    ) -> None:
        if graph.num_nodes == 0:
            raise ReproError("VulnDS needs a non-empty guarantee network")
        self._graph = graph
        self._detector = detector or BottomKDetector(bk=16, seed=0)
        self._assessor = self_risk_assessor
        self._last_assessment: PortfolioAssessment | None = None

    @property
    def graph(self) -> UncertainGraph:
        """The guarantee network the service scores."""
        return self._graph

    @property
    def last_assessment(self) -> PortfolioAssessment | None:
        """The most recent portfolio run, if any."""
        return self._last_assessment

    def refresh_self_risks(self, features: np.ndarray) -> np.ndarray:
        """Re-assess every enterprise's self-risk from fresh features.

        Returns the new self-risk vector (also written into the graph).
        """
        if self._assessor is None:
            raise ReproError(
                "no self-risk assessor configured; construct VulnDS with "
                "self_risk_assessor=..."
            )
        risks = np.clip(
            np.asarray(self._assessor(features), dtype=np.float64),
            0.0,
            1.0,
        )
        if risks.shape != (self._graph.num_nodes,):
            raise ReproError(
                f"assessor returned shape {risks.shape}, expected "
                f"({self._graph.num_nodes},)"
            )
        self._graph.set_all_self_risks(risks)
        return risks

    def assess_portfolio(self, k: int) -> PortfolioAssessment:
        """Detect the top-*k* vulnerable enterprises (one monthly run)."""
        detection = self._detector.detect(self._graph, k)
        watch_list = tuple(str(label) for label in detection.nodes)
        scores = {
            str(label): float(score)
            for label, score in detection.scores.items()
        }
        assessment = PortfolioAssessment(
            detection=detection, watch_list=watch_list, scores=scores
        )
        self._last_assessment = assessment
        return assessment
