"""VulnDS — the vulnerable-enterprise detection service of §5.

"VulnDS assess the self-risk of SME, the risk of guarantee
relationships, and detect the top-k vulnerable nodes by our methods."

The deployed system plugs HGAR [10] in for self-risk assessment and
p-wkNN [15] for guarantee-edge risk; both are pluggable callables here,
with feature-trained defaults from :mod:`repro.baselines.ml`.  Detection
itself is any configured detector (BSRBK by default, matching the
deployment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

import numpy as np

from repro.algorithms.base import DetectionResult, VulnerableNodeDetector
from repro.algorithms.bsrbk import BottomKDetector
from repro.core.errors import ReproError
from repro.core.graph import UncertainGraph
from repro.streaming.events import UpdateEvent
from repro.streaming.monitor import TopKMonitor

__all__ = ["VulnDS", "PortfolioAssessment"]

#: Signature of a self-risk assessor: features -> probabilities.
SelfRiskAssessor = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class PortfolioAssessment:
    """One monthly VulnDS run over the whole guarantee network.

    Attributes
    ----------
    detection:
        The raw top-k detection result.
    watch_list:
        Enterprise ids ranked most-vulnerable first.
    scores:
        Mapping enterprise id → estimated default probability for the
        watch-listed enterprises.
    """

    detection: DetectionResult
    watch_list: tuple[str, ...]
    scores: Mapping[str, float]

    def is_watched(self, enterprise_id: str) -> bool:
        """Whether the enterprise is on the current watch list."""
        return enterprise_id in self.scores

    def vulnerability(self, enterprise_id: str) -> float | None:
        """The enterprise's score, or ``None`` if not watch-listed."""
        return self.scores.get(enterprise_id)

    @classmethod
    def from_detection(cls, detection: DetectionResult) -> "PortfolioAssessment":
        """Wrap a raw detection as an assessment (watch list + scores).

        The single place the detection→assessment projection lives; used
        by :meth:`VulnDS.assess_portfolio` and by the serving layer when
        a tenant's answer arrives from a :class:`~repro.serving.service.
        RiskService` instead of an in-process detector.
        """
        watch_list = tuple(str(label) for label in detection.nodes)
        scores = {
            str(label): float(score)
            for label, score in detection.scores.items()
        }
        return cls(detection=detection, watch_list=watch_list, scores=scores)


class VulnDS:
    """The vulnerable-SME detection service.

    Parameters
    ----------
    graph:
        The bank's guarantee network (edge probabilities already set by
        the guarantee-risk model).
    detector:
        Top-k detector; defaults to BSRBK with the paper's settings.
    self_risk_assessor:
        Optional callable mapping a feature matrix (aligned with the
        graph's node order) to self-risk probabilities.  When provided,
        :meth:`refresh_self_risks` pushes new assessments into the graph
        — the monthly re-scoring step of the deployment.
    """

    def __init__(
        self,
        graph: UncertainGraph,
        detector: VulnerableNodeDetector | None = None,
        self_risk_assessor: SelfRiskAssessor | None = None,
    ) -> None:
        if graph.num_nodes == 0:
            raise ReproError("VulnDS needs a non-empty guarantee network")
        self._graph = graph
        self._detector = detector or BottomKDetector(bk=16, seed=0)
        self._assessor = self_risk_assessor
        self._last_assessment: PortfolioAssessment | None = None
        self._monitor: TopKMonitor | None = None

    @property
    def graph(self) -> UncertainGraph:
        """The guarantee network the service scores."""
        return self._graph

    @property
    def last_assessment(self) -> PortfolioAssessment | None:
        """The most recent portfolio run, if any."""
        return self._last_assessment

    @property
    def monitor(self) -> TopKMonitor | None:
        """The attached streaming monitor, if streaming is enabled."""
        return self._monitor

    def enable_streaming(self, k: int, **monitor_kwargs) -> TopKMonitor:
        """Switch size-*k* assessments to incremental streaming detection.

        Attaches a :class:`~repro.streaming.monitor.TopKMonitor` to the
        service's graph.  From here on, :meth:`refresh_self_risks` and
        :meth:`apply_updates` route probability changes through the
        monitor, and :meth:`assess_portfolio` calls with this exact *k*
        are answered incrementally (other sizes still run the configured
        detector).  Keyword arguments are forwarded to the monitor
        (seed, engine, epsilon, …).

        Note the algorithm switch this implies: the monitor maintains
        the *BSR* pipeline with its own parameters/seed (defaults:
        epsilon 0.3, delta 0.1, seed 0, indexed engine), not whatever
        detector this service was constructed with — its bit-identity
        guarantee is against a fresh BSR detector built from the same
        monitor parameters.  Pass explicit keyword arguments here if
        the streamed watch list must match a particular configuration.
        """
        self._monitor = TopKMonitor(self._graph, k, **monitor_kwargs)
        return self._monitor

    def apply_updates(self, events: Iterable[UpdateEvent]) -> int:
        """Stream probability updates into the service; returns the count.

        Requires streaming to be enabled — the monitor is what tracks
        which parts of the cached assessment each update invalidates.
        """
        if self._monitor is None:
            raise ReproError(
                "streaming is not enabled; call enable_streaming(k) first"
            )
        return self._monitor.apply(events)

    def refresh_self_risks(self, features: np.ndarray) -> np.ndarray:
        """Re-assess every enterprise's self-risk from fresh features.

        Returns the new self-risk vector (also written into the graph).
        """
        if self._assessor is None:
            raise ReproError(
                "no self-risk assessor configured; construct VulnDS with "
                "self_risk_assessor=..."
            )
        risks = np.clip(
            np.asarray(self._assessor(features), dtype=np.float64),
            0.0,
            1.0,
        )
        if risks.shape != (self._graph.num_nodes,):
            raise ReproError(
                f"assessor returned shape {risks.shape}, expected "
                f"({self._graph.num_nodes},)"
            )
        if self._monitor is not None:
            # Route through the monitor so the re-scoring is tracked as
            # a (bulk) streaming update instead of silently staling the
            # cached assessment.
            self._monitor.set_all_self_risks(risks)
        else:
            self._graph.set_all_self_risks(risks)
        return risks

    def assess_portfolio(self, k: int) -> PortfolioAssessment:
        """Detect the top-*k* vulnerable enterprises (one monthly run).

        With streaming enabled and ``k`` equal to the monitor's size,
        the answer comes from the incremental monitor (bit-identical to
        a fresh BSR detection on the current graph); otherwise the
        configured detector runs from scratch.
        """
        if self._monitor is not None and k == self._monitor.k:
            detection = self._monitor.top_k()
        else:
            detection = self._detector.detect(self._graph, k)
        return self.adopt_assessment(detection)

    def adopt_assessment(self, detection: DetectionResult) -> PortfolioAssessment:
        """Record an externally computed detection as the current state.

        The serving path computes detections in a tenant monitor that
        lives outside this service (possibly in another process); this
        folds such an answer back in so :attr:`last_assessment` — and
        everything the risk-control centre derives from it — stays
        coherent regardless of where detection ran.
        """
        assessment = PortfolioAssessment.from_detection(detection)
        self._last_assessment = assessment
        return assessment
