"""The VulnDS loan risk-control system of the paper's Section 5."""

from repro.system.evaluation import EvaluationModule, TermSchedule
from repro.system.loans import (
    Decision,
    Enterprise,
    LoanApplication,
    LoanDecision,
    LoanTerms,
)
from repro.system.pipeline import AuditRecord, RiskControlCenter
from repro.system.rules import (
    BlacklistRule,
    ExposureComplianceRule,
    Rule,
    RuleCheck,
    RuleEngine,
    RuleOutcome,
    SectorComplianceRule,
    TermComplianceRule,
    WhitelistRule,
)
from repro.system.vulnds import PortfolioAssessment, VulnDS

__all__ = [
    "EvaluationModule",
    "TermSchedule",
    "Decision",
    "Enterprise",
    "LoanApplication",
    "LoanDecision",
    "LoanTerms",
    "AuditRecord",
    "RiskControlCenter",
    "BlacklistRule",
    "ExposureComplianceRule",
    "Rule",
    "RuleCheck",
    "RuleEngine",
    "RuleOutcome",
    "SectorComplianceRule",
    "TermComplianceRule",
    "WhitelistRule",
    "PortfolioAssessment",
    "VulnDS",
]
