"""Domain objects of the VulnDS loan risk-control system (paper §5).

These dataclasses model what flows through the deployed pipeline of
Figure 8: enterprises (SMEs) with balance-sheet profiles, loan
applications, and the decisions/terms the risk-control centre produces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.errors import ReproError

__all__ = [
    "Enterprise",
    "LoanApplication",
    "Decision",
    "LoanTerms",
    "LoanDecision",
]


class Decision(enum.Enum):
    """Outcome of the risk-control pipeline for one application."""

    APPROVE = "approve"
    REJECT = "reject"
    REVIEW = "review"  # passed the rules but flagged as vulnerable


@dataclass(frozen=True)
class Enterprise:
    """A small/medium enterprise known to the bank.

    Attributes
    ----------
    enterprise_id:
        The node label used in the guarantee network.
    registered_capital:
        Capital base in currency units; caps the lendable amount.
    sector:
        Industry sector (compliance rules may restrict sectors).
    credit_rating:
        Internal rating in ``[0, 1]``, higher is better.
    """

    enterprise_id: str
    registered_capital: float
    sector: str = "general"
    credit_rating: float = 0.5

    def __post_init__(self) -> None:
        if self.registered_capital < 0:
            raise ReproError(
                f"registered capital must be non-negative, got "
                f"{self.registered_capital}"
            )
        if not 0.0 <= self.credit_rating <= 1.0:
            raise ReproError(
                f"credit rating must be in [0, 1], got {self.credit_rating}"
            )


@dataclass(frozen=True)
class LoanApplication:
    """One loan request entering the risk-control centre."""

    application_id: str
    enterprise: Enterprise
    amount: float
    term_months: int

    def __post_init__(self) -> None:
        if self.amount <= 0:
            raise ReproError(f"loan amount must be positive, got {self.amount}")
        if self.term_months <= 0:
            raise ReproError(
                f"loan term must be positive, got {self.term_months} months"
            )


@dataclass(frozen=True)
class LoanTerms:
    """Terms produced by the evaluation module for an approved loan.

    The paper: "Evaluation module leverage the output of VulnDS to
    quantify the loan grant amount, time limit and interest ratio."
    """

    granted_amount: float
    term_months: int
    annual_interest_rate: float

    def __post_init__(self) -> None:
        if self.granted_amount < 0:
            raise ReproError("granted amount must be non-negative")
        if not 0.0 < self.annual_interest_rate < 1.0:
            raise ReproError(
                "interest rate must be a fraction in (0, 1), got "
                f"{self.annual_interest_rate}"
            )


@dataclass(frozen=True)
class LoanDecision:
    """Final pipeline output for one application."""

    application: LoanApplication
    decision: Decision
    reasons: tuple[str, ...] = field(default_factory=tuple)
    vulnerability: float | None = None
    terms: LoanTerms | None = None

    def __post_init__(self) -> None:
        if self.decision is Decision.APPROVE and self.terms is None:
            raise ReproError("approved loans must carry terms")
        if self.decision is not Decision.APPROVE and self.terms is not None:
            raise ReproError("only approved loans may carry terms")
