"""The rule engine of the risk-control centre (paper §5.1).

"Rule engine mainly includes loan blacklist, white list and compliance
rules.  If a loan passes the rule check, it will be then processed by
our proposed vulnerable detection system."

Rules are small, composable predicates over applications; the engine
evaluates them in order and produces the first decisive outcome —
whitelist short-circuits to approve-eligible, blacklist to reject,
compliance violations to reject, otherwise the application proceeds to
VulnDS.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable

from repro.core.errors import ReproError
from repro.system.loans import LoanApplication

__all__ = [
    "RuleOutcome",
    "Rule",
    "BlacklistRule",
    "WhitelistRule",
    "ExposureComplianceRule",
    "SectorComplianceRule",
    "TermComplianceRule",
    "RuleCheck",
    "RuleEngine",
]


@dataclass(frozen=True)
class RuleOutcome:
    """Result of one rule evaluation.

    ``verdict`` is one of ``"pass"`` (not my concern / satisfied),
    ``"reject"`` (decisively bad), ``"fast_track"`` (decisively good —
    skip further rules but still run VulnDS, as the deployed system
    re-evaluates all issued loans regularly).
    """

    verdict: str
    reason: str = ""

    _ALLOWED = ("pass", "reject", "fast_track")

    def __post_init__(self) -> None:
        if self.verdict not in self._ALLOWED:
            raise ReproError(
                f"verdict must be one of {self._ALLOWED}, got {self.verdict!r}"
            )


class Rule(abc.ABC):
    """One check applied to an incoming application."""

    #: Human-readable rule name, used in audit trails.
    name: str = "rule"

    @abc.abstractmethod
    def evaluate(self, application: LoanApplication) -> RuleOutcome:
        """Judge the application."""


class BlacklistRule(Rule):
    """Reject applications from blacklisted enterprises."""

    name = "blacklist"

    def __init__(self, blacklisted_ids: Iterable[str]) -> None:
        self._blacklist = frozenset(blacklisted_ids)

    def evaluate(self, application: LoanApplication) -> RuleOutcome:
        if application.enterprise.enterprise_id in self._blacklist:
            return RuleOutcome(
                "reject",
                f"enterprise {application.enterprise.enterprise_id} is "
                "blacklisted",
            )
        return RuleOutcome("pass")


class WhitelistRule(Rule):
    """Fast-track applications from whitelisted enterprises."""

    name = "whitelist"

    def __init__(self, whitelisted_ids: Iterable[str]) -> None:
        self._whitelist = frozenset(whitelisted_ids)

    def evaluate(self, application: LoanApplication) -> RuleOutcome:
        if application.enterprise.enterprise_id in self._whitelist:
            return RuleOutcome(
                "fast_track",
                f"enterprise {application.enterprise.enterprise_id} is "
                "whitelisted",
            )
        return RuleOutcome("pass")


class ExposureComplianceRule(Rule):
    """Basel-style cap: amount must not exceed a multiple of capital."""

    name = "exposure-compliance"

    def __init__(self, max_capital_multiple: float = 2.0) -> None:
        if max_capital_multiple <= 0:
            raise ReproError("capital multiple must be positive")
        self._multiple = float(max_capital_multiple)

    def evaluate(self, application: LoanApplication) -> RuleOutcome:
        cap = application.enterprise.registered_capital * self._multiple
        if application.amount > cap:
            return RuleOutcome(
                "reject",
                f"amount {application.amount:.0f} exceeds "
                f"{self._multiple:g}x registered capital ({cap:.0f})",
            )
        return RuleOutcome("pass")


class SectorComplianceRule(Rule):
    """Reject applications from restricted sectors."""

    name = "sector-compliance"

    def __init__(self, restricted_sectors: Iterable[str]) -> None:
        self._restricted = frozenset(s.lower() for s in restricted_sectors)

    def evaluate(self, application: LoanApplication) -> RuleOutcome:
        if application.enterprise.sector.lower() in self._restricted:
            return RuleOutcome(
                "reject",
                f"sector {application.enterprise.sector!r} is restricted",
            )
        return RuleOutcome("pass")


class TermComplianceRule(Rule):
    """Cap the loan term length."""

    name = "term-compliance"

    def __init__(self, max_term_months: int = 60) -> None:
        if max_term_months <= 0:
            raise ReproError("max term must be positive")
        self._max_term = int(max_term_months)

    def evaluate(self, application: LoanApplication) -> RuleOutcome:
        if application.term_months > self._max_term:
            return RuleOutcome(
                "reject",
                f"term {application.term_months} months exceeds the "
                f"{self._max_term}-month cap",
            )
        return RuleOutcome("pass")


@dataclass(frozen=True)
class RuleCheck:
    """Aggregated rule-engine verdict for one application."""

    passed: bool
    fast_tracked: bool
    reasons: tuple[str, ...]


class RuleEngine:
    """Ordered rule evaluation with early termination.

    Whitelist fast-tracks skip the remaining rules; any rejection stops
    the pipeline.  All fired reasons are collected for the audit trail.
    """

    def __init__(self, rules: Iterable[Rule]) -> None:
        self._rules = list(rules)
        if not self._rules:
            raise ReproError("rule engine needs at least one rule")

    @property
    def rules(self) -> list[Rule]:
        """The configured rules, in evaluation order (copy)."""
        return list(self._rules)

    def check(self, application: LoanApplication) -> RuleCheck:
        """Run the rules against one application."""
        reasons: list[str] = []
        for rule in self._rules:
            outcome = rule.evaluate(application)
            if outcome.verdict == "reject":
                reasons.append(f"{rule.name}: {outcome.reason}")
                return RuleCheck(
                    passed=False, fast_tracked=False, reasons=tuple(reasons)
                )
            if outcome.verdict == "fast_track":
                reasons.append(f"{rule.name}: {outcome.reason}")
                return RuleCheck(
                    passed=True, fast_tracked=True, reasons=tuple(reasons)
                )
        return RuleCheck(passed=True, fast_tracked=False, reasons=tuple(reasons))
