"""Durability layer — write-ahead event log, snapshots, crash recovery.

The paper's deployment is a long-lived monitoring service (a bank
re-scoring its guaranteed-loan network month over month); state must
outlive the process that computed it.  This package makes the serving
layer crash-recoverable:

* :mod:`repro.persistence.codec` — versioned, CRC-checksummed binary
  codec for every :data:`~repro.streaming.events.UpdateEvent` type and
  the WAL's record framing (torn tails are detected, never mis-decoded);
* :mod:`repro.persistence.wal` — :class:`WriteAheadLog`, segmented
  append-only batch log with configurable fsync policy, torn-tail
  repair, and snapshot-driven segment truncation;
* :mod:`repro.persistence.snapshots` — :class:`SnapshotStore`, atomic
  (temp + rename) rotation of per-tenant monitor state blobs;
* :mod:`repro.persistence.faults` — fault injection: write errors,
  partial writes, and a SIGKILL harness for crash-recovery tests.

Recovery = snapshot + replay: monitors are deterministic functions of
(base graph, seed, ordered batch sequence), and the WAL records exactly
the coalesced batch order the monitors consumed, so replaying the
post-snapshot suffix reproduces the interrupted process's state — and
therefore its answers and work counters — bit for bit.
"""

from repro.persistence.codec import (
    CODEC_VERSION,
    SUPPORTED_WAL_VERSIONS,
    CorruptRecordError,
    decode_event,
    decode_record_stream,
    encode_event,
    encode_record,
)
from repro.persistence.faults import (
    CrashHarness,
    FaultyFile,
    WriteFaultPlan,
    count_durable_batches,
)
from repro.persistence.snapshots import SnapshotStore, TenantSnapshot
from repro.persistence.wal import WalBatch, WalChunk, WriteAheadLog

__all__ = [
    "WalChunk",
    "count_durable_batches",
    "CODEC_VERSION",
    "SUPPORTED_WAL_VERSIONS",
    "CorruptRecordError",
    "encode_event",
    "decode_event",
    "encode_record",
    "decode_record_stream",
    "WriteAheadLog",
    "WalBatch",
    "SnapshotStore",
    "TenantSnapshot",
    "FaultyFile",
    "WriteFaultPlan",
    "CrashHarness",
]
