"""Segmented write-ahead log of coalesced tenant update batches.

One :class:`WriteAheadLog` owns a directory of append-only segment
files (``wal-00000001.log``, …).  Every record is one *batch*: either a
tenant registration (so recovery can rebuild monitors created after the
last snapshot) or the coalesced event batch a tenant's monitor consumed
at one flush — written **before** the batch is dispatched to its shard,
so the durable order is exactly the order the monitors applied
(write-ahead).  Batches carry a global, strictly increasing sequence
number; snapshots record per-tenant watermarks against it, and recovery
replays only the suffix past each tenant's watermark.

Durability knobs
----------------
``fsync="always"``
    fsync after every append — maximum durability, pays a disk flush
    per batch.
``fsync="flush"`` (default)
    fsync once per drain cycle (:meth:`sync`, called by the ingestion
    path after it appended every tenant's batch for the window) —
    bounded loss: at most one flush window on power failure, nothing on
    process crash (the OS holds the bytes).
``fsync="never"``
    OS page cache only; still crash-safe against process death.

Crash tolerance
---------------
Opening a log *repairs* it: each segment's records are walked in order
and the file is truncated at the first torn or corrupt record (short
header, short payload, CRC mismatch); any later segments are discarded
entirely.  Everything before the first bad checksum is recovered —
nothing after it is guessed at.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import BinaryIO, Callable, Hashable

from repro.persistence.codec import (
    BATCH_KIND_EPOCH,
    BATCH_KIND_EVENTS,
    BATCH_KIND_REGISTER,
    SUPPORTED_WAL_VERSIONS,
    CorruptRecordError,
    PersistenceError,
    WAL_MAGIC,
    WAL_MAGIC_PREFIX,
    decode_batch_payload,
    decode_event,
    decode_record_stream,
    encode_batch_payload,
    encode_event,
    encode_record,
)
from repro.streaming.events import UpdateEvent

__all__ = ["WriteAheadLog", "WalBatch", "WalChunk", "FSYNC_POLICIES"]

TenantId = Hashable
FSYNC_POLICIES = ("always", "flush", "never")

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"


@dataclass(frozen=True)
class WalBatch:
    """One durable record: a registration, event batch, or epoch stamp."""

    seq: int
    tenant_id: TenantId
    kind: str  # "events" | "register" | "epoch"
    events: tuple[UpdateEvent, ...] = ()
    register: dict | None = None
    #: For ``kind == "epoch"``: the fencing epoch this primary claimed
    #: and the node id that claimed it.  Every later batch in the log
    #: belongs to this epoch until the next stamp.
    epoch: int | None = None
    node: str | None = None


@dataclass(frozen=True)
class WalChunk:
    """Raw segment bytes handed to a replication fetch.

    ``data`` starts at ``(segment, offset)`` in the primary's byte
    order; a replica that mirrors chunks verbatim reproduces the
    primary's segment files bit for bit, so sequence numbers, CRC
    framing, and :func:`count_durable_batches` all carry over unchanged.
    """

    segment: int
    offset: int
    data: bytes
    #: True when this read exhausted a *sealed* segment — the next
    #: cursor is ``(segment + 1, 0)``.  The active segment is never
    #: exhausted; an empty chunk there means "caught up, poll again".
    exhausted: bool
    #: True when the requested segment was already truncated away; the
    #: caller must restart from ``oldest_segment`` (or bootstrap from a
    #: snapshot if it has a gap).
    gone: bool
    oldest_segment: int
    #: Set alongside ``gone``: a reader whose applied sequence reaches
    #: this floor holds every record the truncated segments contained,
    #: so ``(oldest_segment, 0)`` is a complete resume point for it.
    #: Below the floor the reader has a real gap and must re-bootstrap.
    resume_floor: int | None = None


@dataclass
class _Segment:
    path: Path
    first_seq: int | None = None
    last_seq: int | None = None

    def covers_only_upto(self, seq: int) -> bool:
        return self.last_seq is not None and self.last_seq <= seq


def _segment_index(path: Path) -> int:
    return int(path.name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)])


def _fsync_dir(directory: Path) -> None:
    """Best-effort directory fsync so renames/creates are durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. network filesystems
        pass
    finally:
        os.close(fd)


class WriteAheadLog:
    """Append-only, checksummed, segment-rotated batch log.

    Parameters
    ----------
    directory:
        Where segments live; created if missing.  Opening scans and
        repairs existing segments (see the module docstring), so the
        instance is immediately ready both to replay and to append.
    fsync:
        One of :data:`FSYNC_POLICIES`; see the module docstring.
    segment_max_bytes:
        Appends past this size rotate to a fresh segment first, keeping
        snapshot-driven truncation (:meth:`truncate_upto`) effective —
        only whole dead segments are ever deleted.
    io_wrapper:
        Optional wrapper applied to the active segment's append handle;
        the fault-injection tests use it to inject write errors and
        partial writes without touching production code paths.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        fsync: str = "flush",
        segment_max_bytes: int = 64 * 1024 * 1024,
        io_wrapper: Callable[[BinaryIO], BinaryIO] | None = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise PersistenceError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if segment_max_bytes < 1024:
            raise PersistenceError(
                f"segment_max_bytes must be >= 1024, got {segment_max_bytes}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._fsync = fsync
        self._segment_max = int(segment_max_bytes)
        self._io_wrapper = io_wrapper
        self._handle: BinaryIO | None = None
        self._segments: list[_Segment] = []
        self._next_seq = 1
        #: Last appended batch seq per tenant (rebuilt from disk on open).
        self.last_seq_of: dict[TenantId, int] = {}
        #: Replication retain floor: when set, truncation keeps every
        #: batch newer than this seq even if snapshots no longer need
        #: it — segments a lagging replica has not acked stay on disk.
        self._retain_seq: int | None = None
        self._closed = False
        self._recover_segments()

    # ------------------------------------------------------------------
    # Open-time scan and repair
    # ------------------------------------------------------------------
    def _segment_paths(self) -> list[Path]:
        paths = [
            path
            for path in self.directory.glob(
                f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}"
            )
            if path.name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)].isdigit()
        ]
        return sorted(paths, key=_segment_index)

    def _recover_segments(self) -> None:
        paths = self._segment_paths()
        truncated_at: Path | None = None
        for position, path in enumerate(paths):
            segment, clean = self._scan_segment(path)
            self._segments.append(segment)
            if segment.last_seq is not None:
                self._next_seq = max(self._next_seq, segment.last_seq + 1)
            if not clean:
                # Everything after the first bad checksum is discarded:
                # later segments were written after the corruption point
                # in the append order, so they cannot be trusted either.
                truncated_at = path
                for orphan in paths[position + 1:]:
                    orphan.unlink()
                break
        if truncated_at is not None:
            _fsync_dir(self.directory)
        if not self._segments:
            self._start_segment(1)
        elif self._segments[-1].path.read_bytes()[8] != WAL_MAGIC[8]:
            # Never append current-version records into a segment that
            # declares an older format: old segments stay exactly the
            # bytes their writer produced, new batches open a new file.
            self._start_segment(
                _segment_index(self._segments[-1].path) + 1
            )
        else:
            self._open_for_append(self._segments[-1])

    def _scan_segment(self, path: Path) -> tuple[_Segment, bool]:
        """Walk one segment; truncate it at the first bad record."""
        data = path.read_bytes()
        segment = _Segment(path=path)
        if len(data) < len(WAL_MAGIC) or data[:8] != WAL_MAGIC_PREFIX:
            # Torn during creation (or not a WAL file): recover to empty.
            path.write_bytes(WAL_MAGIC)
            return segment, False
        if data[8] not in SUPPORTED_WAL_VERSIONS:
            raise PersistenceError(
                f"{path} was written by WAL format version "
                f"{data[8]}, this build reads versions "
                f"{SUPPORTED_WAL_VERSIONS}"
            )
        good_end = len(WAL_MAGIC)
        clean = True
        for payload, end in decode_record_stream(data, start=len(WAL_MAGIC)):
            try:
                kind, seq, tenant_id, _ = decode_batch_payload(payload)
            except CorruptRecordError:
                clean = False
                break
            good_end = end
            if segment.first_seq is None:
                segment.first_seq = seq
            segment.last_seq = seq
            if kind == BATCH_KIND_EVENTS:
                self.last_seq_of[tenant_id] = seq
        if good_end < len(data):
            clean = False
            with open(path, "r+b") as handle:
                handle.truncate(good_end)
        return segment, clean

    # ------------------------------------------------------------------
    # Append path
    # ------------------------------------------------------------------
    def _start_segment(self, index: int) -> None:
        path = self.directory / (
            f"{_SEGMENT_PREFIX}{index:08d}{_SEGMENT_SUFFIX}"
        )
        path.write_bytes(WAL_MAGIC)
        _fsync_dir(self.directory)
        segment = _Segment(path=path)
        self._segments.append(segment)
        self._open_for_append(segment)

    def _open_for_append(self, segment: _Segment) -> None:
        if self._handle is not None:
            self._handle.close()
        raw: BinaryIO = open(segment.path, "ab")
        if self._io_wrapper is not None:
            raw = self._io_wrapper(raw)
        self._handle = raw

    @property
    def active_segment(self) -> Path:
        """Path of the segment currently being appended to."""
        return self._segments[-1].path

    @property
    def segment_paths(self) -> list[Path]:
        """All live segment paths, oldest first."""
        return [segment.path for segment in self._segments]

    @property
    def next_seq(self) -> int:
        """The sequence number the next appended batch will carry."""
        return self._next_seq

    def _append_payload(self, payload: bytes) -> None:
        assert self._handle is not None
        record = encode_record(payload)
        active = self._segments[-1]
        if (
            self._handle.tell() + len(record) > self._segment_max
            and active.first_seq is not None
        ):
            self.rotate()
        start = self._handle.tell()
        try:
            self._handle.write(record)
            self._handle.flush()
            if self._fsync == "always":
                os.fsync(self._handle.fileno())
        except OSError:
            # A failed or partial write leaves torn bytes at the tail.
            # Cut the segment back to the last good record NOW, not at
            # the next open: this in-process handle keeps appending, and
            # readers stop at the first bad record — leaving the tear in
            # place would silently discard every later good batch.
            self._repair_active_tail(start)
            raise

    def _repair_active_tail(self, good_end: int) -> None:
        """Truncate the active segment to *good_end* and reopen it."""
        active = self._segments[-1]
        try:
            if self._handle is not None:
                self._handle.close()
        except OSError:  # pragma: no cover - close on a faulted handle
            pass
        self._handle = None
        with open(active.path, "r+b") as handle:
            handle.truncate(good_end)
            handle.flush()
            os.fsync(handle.fileno())
        self._open_for_append(active)

    def append_events(
        self, tenant_id: TenantId, events: list[UpdateEvent]
    ) -> int:
        """Append one coalesced event batch; returns its sequence number."""
        self._ensure_open()
        seq = self._next_seq
        payload = encode_batch_payload(
            BATCH_KIND_EVENTS,
            seq,
            tenant_id,
            [encode_event(event) for event in events],
        )
        self._append_payload(payload)
        self._note_seq(seq, tenant_id, events=True)
        return seq

    def append_register(
        self, tenant_id: TenantId, k: int, monitor_kwargs: dict
    ) -> int:
        """Append a tenant registration (k + monitor keyword arguments)."""
        self._ensure_open()
        seq = self._next_seq
        blob = json.dumps(
            {"k": int(k), "kwargs": monitor_kwargs}, ensure_ascii=False
        ).encode("utf-8")
        payload = encode_batch_payload(
            BATCH_KIND_REGISTER, seq, tenant_id, [blob]
        )
        self._append_payload(payload)
        self._note_seq(seq, tenant_id, events=False)
        return seq

    def append_epoch(self, epoch: int, node: str) -> int:
        """Stamp a fencing epoch claim into the log (promotion point).

        Every batch appended after this record belongs to *epoch*;
        replicas that have fenced a lower epoch reject anything stamped
        below their fence, which is what makes a deposed primary's late
        appends provably dead.
        """
        self._ensure_open()
        seq = self._next_seq
        blob = json.dumps(
            {"epoch": int(epoch), "node": str(node)}, ensure_ascii=False
        ).encode("utf-8")
        payload = encode_batch_payload(BATCH_KIND_EPOCH, seq, None, [blob])
        self._append_payload(payload)
        self._note_seq(seq, None, events=False)
        return seq

    def _note_seq(self, seq: int, tenant_id: TenantId, *, events: bool) -> None:
        self._next_seq = seq + 1
        active = self._segments[-1]
        if active.first_seq is None:
            active.first_seq = seq
        active.last_seq = seq
        if events:
            self.last_seq_of[tenant_id] = seq

    def sync(self) -> None:
        """fsync the active segment (the ``fsync="flush"`` commit point)."""
        self._ensure_open()
        assert self._handle is not None
        self._handle.flush()
        if self._fsync != "never":
            os.fsync(self._handle.fileno())

    def rotate(self) -> None:
        """Seal the active segment and append to a fresh one."""
        self._ensure_open()
        assert self._handle is not None
        self._handle.flush()
        if self._fsync != "never":
            os.fsync(self._handle.fileno())
        self._start_segment(_segment_index(self._segments[-1].path) + 1)

    # ------------------------------------------------------------------
    # Read and truncate
    # ------------------------------------------------------------------
    def read_batches(self) -> list[WalBatch]:
        """Every durable batch across all segments, in sequence order.

        Reads from disk (not from in-memory state) so it sees exactly
        what a recovering process would; a torn tail in the active
        segment is skipped, not raised.
        """
        self._ensure_open()
        assert self._handle is not None
        self._handle.flush()
        batches: list[WalBatch] = []
        for segment in self._segments:
            data = segment.path.read_bytes()
            if (
                data[:8] != WAL_MAGIC_PREFIX
                or data[8] not in SUPPORTED_WAL_VERSIONS
            ):
                break
            for payload, _ in decode_record_stream(
                data, start=len(WAL_MAGIC)
            ):
                try:
                    batches.append(_decode_batch(payload))
                except CorruptRecordError:
                    return batches
        return batches

    def tail_cursor(self) -> tuple[int, int]:
        """``(segment_index, byte_offset)`` of the durable append tail."""
        self._ensure_open()
        assert self._handle is not None
        self._handle.flush()
        active = self._segments[-1]
        return _segment_index(active.path), active.path.stat().st_size

    def read_from(
        self, segment: int, offset: int, max_bytes: int = 1 << 20
    ) -> WalChunk:
        """Read up to *max_bytes* raw segment bytes for WAL shipping.

        The returned chunk may end mid-record (the replica buffers
        until the framing completes) and, on the active segment, may
        race an in-flight append — both are safe because the replica
        only persists whole CRC-verified records.
        """
        self._ensure_open()
        assert self._handle is not None
        self._handle.flush()
        oldest = _segment_index(self._segments[0].path)
        active_index = _segment_index(self._segments[-1].path)
        if segment < oldest:
            # The retain floor only protects replicas that have acked;
            # report the resume floor so a caught-up reader (whose
            # cursor merely lingered at the end of the sealed segment)
            # can skip ahead instead of re-bootstrapping.
            first = self._segments[0].first_seq
            floor = (first - 1) if first is not None else self._next_seq - 1
            return WalChunk(
                segment=segment, offset=offset, data=b"",
                exhausted=False, gone=True, oldest_segment=oldest,
                resume_floor=floor,
            )
        if segment > active_index:
            # The cursor points past the tail (e.g. the replica saw a
            # sealed segment end before the primary rotated): nothing
            # yet, poll again.
            return WalChunk(
                segment=segment, offset=offset, data=b"",
                exhausted=False, gone=False, oldest_segment=oldest,
            )
        by_index = {
            _segment_index(entry.path): entry for entry in self._segments
        }
        path = by_index[segment].path
        data = path.read_bytes()
        chunk = data[offset:offset + max_bytes]
        sealed = segment != active_index
        exhausted = sealed and offset + len(chunk) >= len(data)
        return WalChunk(
            segment=segment, offset=offset, data=chunk,
            exhausted=exhausted, gone=False, oldest_segment=oldest,
        )

    def set_retain_seq(self, seq: int | None) -> None:
        """Keep batches newer than *seq* truncation-safe (replication).

        The replication hub lowers this to the minimum replica-acked
        sequence so a lagging replica can always resume from its
        cursor; ``None`` removes the floor.
        """
        self._retain_seq = None if seq is None else int(seq)

    def truncate_upto(self, seq: int) -> int:
        """Delete sealed segments wholly covered by a snapshot at *seq*.

        Returns the number of segments removed.  The active segment is
        never deleted (rotate first — the snapshot path does), and a
        segment survives if it holds any batch newer than *seq* or
        newer than the replication retain floor (:meth:`set_retain_seq`).
        """
        self._ensure_open()
        if self._retain_seq is not None:
            seq = min(seq, self._retain_seq)
        removed = 0
        while len(self._segments) > 1:
            segment = self._segments[0]
            if segment.last_seq is None or not segment.covers_only_upto(seq):
                break
            segment.path.unlink()
            self._segments.pop(0)
            removed += 1
        if removed:
            _fsync_dir(self.directory)
        return removed

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush, fsync (unless ``never``) and close the append handle."""
        if self._closed:
            return
        self._closed = True
        if self._handle is not None:
            try:
                self._handle.flush()
                if self._fsync != "never":
                    os.fsync(self._handle.fileno())
            except (OSError, ValueError):  # pragma: no cover - defensive
                pass
            self._handle.close()
            self._handle = None

    def _ensure_open(self) -> None:
        if self._closed:
            raise PersistenceError("write-ahead log is closed")

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _decode_batch(payload: bytes) -> WalBatch:
    kind, seq, tenant_id, parts = decode_batch_payload(payload)
    if kind == BATCH_KIND_EVENTS:
        return WalBatch(
            seq=seq,
            tenant_id=tenant_id,
            kind="events",
            events=tuple(decode_event(part) for part in parts),
        )
    if kind == BATCH_KIND_EPOCH:
        try:
            stamp = json.loads(parts[0].decode("utf-8"))
            return WalBatch(
                seq=seq,
                tenant_id=None,
                kind="epoch",
                epoch=int(stamp["epoch"]),
                node=str(stamp["node"]),
            )
        except (IndexError, KeyError, ValueError, UnicodeDecodeError) as error:
            raise CorruptRecordError(
                f"malformed epoch record: {error}"
            ) from None
    try:
        register = json.loads(parts[0].decode("utf-8"))
    except (IndexError, ValueError, UnicodeDecodeError) as error:
        raise CorruptRecordError(
            f"malformed registration record: {error}"
        ) from None
    return WalBatch(
        seq=seq, tenant_id=tenant_id, kind="register", register=register
    )
