"""Fault injection for the durability layer.

Three escalating ways to hurt a serving process, used by the
crash-recovery test suite and ``benchmarks/bench_durability.py``:

* :class:`WriteFaultPlan` / :class:`FaultyFile` — deterministic disk
  faults: after a configured number of bytes, a write either fails
  outright or lands **partially** (the realistic torn-write case: a
  record's first bytes reach the file, the rest never do).  Plugged
  into :class:`~repro.persistence.wal.WriteAheadLog` via its
  ``io_wrapper`` hook, so production code paths run unmodified.
* :class:`CrashHarness` — process death: runs a workload in a forked
  child and SIGKILLs it the moment an observed condition holds (e.g.
  "at least 7 batches are durable"), which lands the kill at an
  arbitrary point mid-flush.  SIGKILL is not catchable: whatever the
  child had not made durable is genuinely gone.
* :func:`stream_durably` — the standard crashable driver: a durable
  :class:`~repro.serving.service.RiskService` replaying a per-tenant
  workload one flush per batch, so the WAL's batch sequence is
  deterministic and a recovered run can be compared bit-for-bit
  against an uninterrupted one (see ``tests/test_persistence_faults.py``).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Callable, Hashable

from repro.persistence.codec import (
    BATCH_KIND_EVENTS,
    SUPPORTED_WAL_VERSIONS,
    CorruptRecordError,
    WAL_MAGIC,
    WAL_MAGIC_PREFIX,
    decode_batch_payload,
    decode_record_stream,
)
from repro.persistence.wal import _SEGMENT_PREFIX, _SEGMENT_SUFFIX, _segment_index

__all__ = [
    "WriteFaultPlan",
    "FaultyFile",
    "CrashHarness",
    "stream_durably",
    "count_durable_batches",
]

TenantId = Hashable


@dataclass
class WriteFaultPlan:
    """When and how the wrapped file starts failing.

    Attributes
    ----------
    fail_after_bytes:
        Total bytes allowed through before the fault triggers.
    partial:
        With ``True``, the triggering write lands its allowed prefix
        before raising — a torn write.  With ``False`` it fails whole.
    message:
        The injected :class:`OSError`'s message.
    error_errno:
        Optional errno stamped onto the injected :class:`OSError`
        (e.g. ``errno.ENOSPC`` for a disk-full fault), so callers that
        branch on errno see a realistic error.
    sticky:
        With ``True`` (default), every write after the trigger fails
        until :meth:`clear` — a full disk stays full.  With ``False``
        only the triggering write fails.
    """

    fail_after_bytes: int
    partial: bool = True
    message: str = "injected write fault"
    error_errno: int | None = None
    sticky: bool = True

    def __post_init__(self) -> None:
        self.written = 0
        self.tripped = False

    def clear(self, *, allow_bytes: int | None = None) -> None:
        """Lift the fault — "space freed".  Subsequent writes succeed
        until another *allow_bytes* (default: unlimited) pass through."""
        self.tripped = False
        self.written = 0
        self.fail_after_bytes = (
            (1 << 62) if allow_bytes is None else int(allow_bytes)
        )

    def make_error(self) -> OSError:
        if self.error_errno is not None:
            return OSError(self.error_errno, self.message)
        return OSError(self.message)


class FaultyFile:
    """A binary file wrapper that fails writes according to a plan.

    Everything except :meth:`write` passes straight through, so the
    WAL's flush/fsync/tell bookkeeping behaves normally right up to the
    injected fault.
    """

    def __init__(self, raw: BinaryIO, plan: WriteFaultPlan) -> None:
        self._raw = raw
        self._plan = plan

    def write(self, data: bytes) -> int:
        plan = self._plan
        if plan.tripped:
            if plan.sticky:
                raise plan.make_error()
            plan.tripped = False
        allowed = plan.fail_after_bytes - plan.written
        if len(data) <= allowed:
            plan.written += len(data)
            return self._raw.write(data)
        plan.tripped = True
        if plan.partial and allowed > 0:
            self._raw.write(data[:allowed])
            self._raw.flush()
            plan.written += allowed
        raise plan.make_error()

    def __getattr__(self, name: str):
        return getattr(self._raw, name)


# ----------------------------------------------------------------------
# Read-only durable-progress probe (never repairs, never truncates)
# ----------------------------------------------------------------------
def count_durable_batches(wal_dir: str | os.PathLike) -> int:
    """Intact event batches currently on disk under *wal_dir*.

    Pure read: unlike opening a :class:`WriteAheadLog` (which repairs
    torn tails in place), this walks the segment bytes as-is, so a
    parent process can watch a live child's durable progress and time a
    SIGKILL against it.
    """
    directory = Path(wal_dir)
    paths = sorted(
        (
            path
            for path in directory.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}")
            if path.name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)].isdigit()
        ),
        key=_segment_index,
    )
    count = 0
    for path in paths:
        try:
            data = path.read_bytes()
        except OSError:
            break
        if (
            data[:8] != WAL_MAGIC_PREFIX
            or len(data) < len(WAL_MAGIC)
            or data[8] not in SUPPORTED_WAL_VERSIONS
        ):
            break
        for payload, _ in decode_record_stream(data, start=len(WAL_MAGIC)):
            try:
                kind, _, _, _ = decode_batch_payload(payload)
            except CorruptRecordError:
                return count
            if kind == BATCH_KIND_EVENTS:
                count += 1
    return count


# ----------------------------------------------------------------------
# SIGKILL harness
# ----------------------------------------------------------------------
class CrashHarness:
    """Run a target in a forked child and SIGKILL it on a condition.

    Fork start method, so targets may close over live objects (graphs,
    workloads) without pickling — and so the child is a faithful clone
    of the test process right up to the kill.
    """

    def __init__(self, target: Callable[[], None]) -> None:
        context = multiprocessing.get_context("fork")
        self._process = context.Process(target=target, daemon=True)

    def start(self) -> "CrashHarness":
        """Fork and start the child."""
        self._process.start()
        return self

    @property
    def pid(self) -> int:
        """The child's pid (valid after :meth:`start`)."""
        assert self._process.pid is not None
        return self._process.pid

    def kill_when(
        self,
        condition: Callable[[], bool],
        *,
        poll: float = 0.002,
        timeout: float = 60.0,
    ) -> bool:
        """SIGKILL the child once *condition* holds; join; report the kill.

        Returns ``True`` if the kill landed while the child was alive,
        ``False`` if the child finished first (callers treating an
        early exit as "ran to completion" can retry with an earlier
        condition).  Raises :class:`TimeoutError` if the condition
        never holds and the child never exits.
        """
        deadline = time.monotonic() + timeout
        while True:
            if condition():
                break
            if not self._process.is_alive():
                self._process.join()
                return False
            if time.monotonic() > deadline:
                self.kill()
                raise TimeoutError(
                    "kill condition never held within "
                    f"{timeout}s (child still running)"
                )
            time.sleep(poll)
        killed = self._process.is_alive()
        if killed:
            os.kill(self.pid, signal.SIGKILL)
        self._process.join()
        return killed

    def kill(self) -> None:
        """Unconditional SIGKILL + join (cleanup path)."""
        if self._process.pid is not None and self._process.is_alive():
            os.kill(self._process.pid, signal.SIGKILL)
        self._process.join()


# ----------------------------------------------------------------------
# Crashable serving driver
# ----------------------------------------------------------------------
def stream_durably(
    graph,
    workload: dict[TenantId, list[list]],
    k: int,
    wal_dir: str | os.PathLike,
    *,
    monitor_defaults: dict | None = None,
    fsync: str = "always",
    snapshot_every: int | None = None,
    pause: float = 0.0,
    mode: str = "serial",
) -> dict:
    """Replay *workload* through a durable service, one flush per batch.

    ``workload`` maps tenant id to its ordered list of event batches.
    Batches are driven round-robin (round r: every tenant's r-th batch,
    tenant order fixed), each submitted and flushed individually, so
    the WAL's durable batch sequence is a deterministic function of the
    workload — the property the crash-recovery bit-identity tests rest
    on.  ``snapshot_every`` takes a snapshot after every N rounds;
    ``pause`` sleeps between batches so a parent's kill condition can
    land anywhere mid-stream.

    Returns the final per-tenant answers (for uninterrupted-reference
    runs; a SIGKILLed child never gets this far).
    """
    from repro.serving.service import RiskService

    service = RiskService(
        graph,
        mode=mode,
        monitor_defaults=monitor_defaults,
        wal_dir=wal_dir,
        fsync=fsync,
    )
    try:
        for tenant_id in workload:
            if not service.pool.has_tenant(tenant_id):
                service.register_tenant(tenant_id, k)
        rounds = max(len(batches) for batches in workload.values())
        for round_index in range(rounds):
            for tenant_id, batches in workload.items():
                if round_index >= len(batches):
                    continue
                for event in batches[round_index]:
                    service.submit_update(tenant_id, event)
                service.flush()
                if pause:
                    time.sleep(pause)
            if snapshot_every and (round_index + 1) % snapshot_every == 0:
                service.snapshot_to_disk()
        return {
            tenant_id: service.query_topk(tenant_id)
            for tenant_id in workload
        }
    finally:
        service.close()
