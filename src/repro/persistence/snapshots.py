"""Atomic, rotated snapshots of per-tenant monitor state.

A snapshot is one directory (``snap-00000001/``) holding, per tenant, a
pickled :class:`~repro.streaming.monitor.TopKMonitor` blob (the exact
process state — graph view, bound iterates, sampled worlds, counters —
so replaying the post-snapshot WAL suffix reproduces the interrupted
run bit for bit) plus the tenant's last served answer (small, loadable
without unpickling the whole monitor — what stale-mode queries return
while a tenant is still replaying).

Atomicity is the classic temp + rename dance: every blob is written and
fsynced inside ``snap-N.tmp/``, the manifest goes in **last**, then one
``os.rename`` publishes the directory.  A crash mid-snapshot leaves a
``.tmp`` orphan that the next writer sweeps; :meth:`SnapshotStore.latest`
only ever sees complete snapshots, so rotation can never corrupt the
previous good state — the PR-4 leftover this module closes is precisely
"snapshot rotation without blocking or dropping live tenant streams",
and nothing here takes a lock any ingestion path shares.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import threading
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Hashable, Iterator

from repro.persistence.codec import (
    CODEC_VERSION,
    SUPPORTED_WAL_VERSIONS,
    PersistenceError,
)

__all__ = ["SnapshotStore", "Snapshot", "TenantSnapshot"]

TenantId = Hashable

_SNAP_PREFIX = "snap-"
_MANIFEST = "manifest.json"


def _fsync_file(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


@dataclass(frozen=True)
class TenantSnapshot:
    """One tenant's durable state inside a snapshot."""

    tenant_id: TenantId
    #: WAL batch sequence this state reflects; replay starts after it.
    watermark: int
    state_path: Path
    result_path: Path

    def load_state_blob(self) -> bytes:
        """The pickled monitor bytes (installed worker-side on restore)."""
        return self.state_path.read_bytes()

    def load_result(self):
        """The tenant's answer at snapshot time (for stale-mode queries)."""
        with open(self.result_path, "rb") as handle:
            return pickle.load(handle)


@dataclass(frozen=True)
class Snapshot:
    """One complete, published snapshot directory."""

    path: Path
    index: int
    wal_seq: int
    base_fingerprint: str | None
    tenants: dict[TenantId, TenantSnapshot]
    #: JSON-serialisable sidecar state (e.g. the front end's admission
    #: cost model), keyed by provider name.  Empty for snapshots written
    #: by older builds — readers must tolerate its absence.
    extras: dict = None  # type: ignore[assignment]


class SnapshotStore:
    """Write-rotated snapshot directories under ``<root>/snapshots``.

    Parameters
    ----------
    root:
        The durability directory (shared with the WAL); snapshots live
        in a ``snapshots/`` subdirectory.
    keep:
        Completed snapshots retained after a successful write; older
        ones (and any crashed ``.tmp`` orphans) are swept.
    """

    def __init__(self, root: str | os.PathLike, *, keep: int = 2) -> None:
        if keep < 1:
            raise PersistenceError(f"keep must be >= 1, got {keep}")
        self.directory = Path(root) / "snapshots"
        self.directory.mkdir(parents=True, exist_ok=True)
        self._keep = int(keep)
        # Read-pins: snapshot indices a concurrent recovery reader is
        # still loading from.  Rotation's sweep skips pinned indices so
        # it can never delete a manifest out from under the reader.
        self._pin_lock = threading.Lock()
        self._pins: Counter[int] = Counter()

    # ------------------------------------------------------------------
    def _snapshot_dirs(self) -> list[Path]:
        dirs = [
            path
            for path in self.directory.glob(f"{_SNAP_PREFIX}*")
            if path.is_dir()
            and not path.name.endswith(".tmp")
            and path.name[len(_SNAP_PREFIX):].isdigit()
            and (path / _MANIFEST).exists()
        ]
        return sorted(dirs, key=lambda path: int(path.name[len(_SNAP_PREFIX):]))

    def latest(self) -> Snapshot | None:
        """The newest complete snapshot, or ``None``.

        Serialised against the sweep (see :meth:`_sweep`), so the
        manifest it loads cannot be deleted out from under it.
        """
        with self._pin_lock:
            return self._latest_locked()

    def _latest_locked(self) -> Snapshot | None:
        """List + load under ``_pin_lock`` (sweeps hold it too)."""
        while True:
            dirs = self._snapshot_dirs()
            if not dirs:
                return None
            try:
                return self._load(dirs[-1])
            except PersistenceError:
                if (dirs[-1] / _MANIFEST).exists():
                    raise  # genuinely unreadable, not swept
                # Swept before we took the lock: retry the survivors.

    @contextmanager
    def pin_latest(self) -> Iterator[Snapshot | None]:
        """Yield the newest snapshot, protected from rotation's sweep.

        Recovery readers load blobs over a window during which a
        concurrent :meth:`write` may rotate the snapshot they opened
        past ``keep``; inside this context the pinned index is exempt
        from sweeping, so every ``load_state_blob`` the reader issues
        still finds its file.  Pins nest and stack across threads; an
        unpinned snapshot is reclaimed by the *next* rotation.

        Load and pin happen atomically with respect to the sweep —
        both hold ``_pin_lock``, closing the window where a snapshot
        could be chosen and then deleted before its pin registered.
        """
        with self._pin_lock:
            snapshot = self._latest_locked()
            if snapshot is not None:
                self._pins[snapshot.index] += 1
        if snapshot is None:
            yield None
            return
        try:
            yield snapshot
        finally:
            with self._pin_lock:
                self._pins[snapshot.index] -= 1
                if self._pins[snapshot.index] <= 0:
                    del self._pins[snapshot.index]

    def _load(self, path: Path) -> Snapshot:
        try:
            manifest = json.loads((path / _MANIFEST).read_text("utf-8"))
        except (OSError, ValueError) as error:
            raise PersistenceError(
                f"unreadable snapshot manifest {path / _MANIFEST}: {error}"
            ) from None
        if manifest.get("version") not in SUPPORTED_WAL_VERSIONS:
            raise PersistenceError(
                f"snapshot {path} has format version "
                f"{manifest.get('version')}, this build reads "
                f"{SUPPORTED_WAL_VERSIONS}"
            )
        tenants: dict[TenantId, TenantSnapshot] = {}
        for row in manifest["tenants"]:
            tenant_id = row["tenant_id"]
            tenants[tenant_id] = TenantSnapshot(
                tenant_id=tenant_id,
                watermark=int(row["watermark"]),
                state_path=path / row["state"],
                result_path=path / row["result"],
            )
        return Snapshot(
            path=path,
            index=int(path.name[len(_SNAP_PREFIX):]),
            wal_seq=int(manifest["wal_seq"]),
            base_fingerprint=manifest.get("base_fingerprint"),
            tenants=tenants,
            # Tolerant read: manifests from before the extras field
            # simply have none.
            extras=dict(manifest.get("extras") or {}),
        )

    # ------------------------------------------------------------------
    def write(
        self,
        tenants: dict[TenantId, tuple[bytes, object, int]],
        *,
        wal_seq: int,
        base_fingerprint: str | None = None,
        extras: dict | None = None,
    ) -> Snapshot:
        """Publish one snapshot atomically and rotate old ones out.

        Parameters
        ----------
        tenants:
            ``tenant_id -> (monitor_blob, last_result, watermark)``; the
            watermark is the last WAL batch seq folded into that blob.
        wal_seq:
            Global WAL position the snapshot cycle observed; recovery
            treats batches at or below ``min`` tenant watermark as dead.
        extras:
            Optional JSON-serialisable sidecar state stored inline in
            the manifest (must stay small — it is read on every
            :meth:`latest`).
        """
        dirs = self._snapshot_dirs()
        index = (int(dirs[-1].name[len(_SNAP_PREFIX):]) + 1) if dirs else 1
        final = self.directory / f"{_SNAP_PREFIX}{index:08d}"
        tmp = self.directory / f"{_SNAP_PREFIX}{index:08d}.tmp"
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir()
        rows = []
        for position, (tenant_id, payload) in enumerate(tenants.items()):
            blob, result, watermark = payload
            state_name = f"tenant-{position:04d}.state.pkl"
            result_name = f"tenant-{position:04d}.result.pkl"
            (tmp / state_name).write_bytes(blob)
            with open(tmp / result_name, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            _fsync_file(tmp / state_name)
            _fsync_file(tmp / result_name)
            rows.append(
                {
                    "tenant_id": tenant_id,
                    "watermark": int(watermark),
                    "state": state_name,
                    "result": result_name,
                }
            )
        manifest = {
            "version": CODEC_VERSION,
            "wal_seq": int(wal_seq),
            "base_fingerprint": base_fingerprint,
            "tenants": rows,
        }
        if extras:
            try:
                json.dumps(extras)
            except (TypeError, ValueError) as error:
                raise PersistenceError(
                    f"snapshot extras must be JSON-serialisable: {error}"
                ) from None
            manifest["extras"] = extras
        (tmp / _MANIFEST).write_text(
            json.dumps(manifest, indent=1), encoding="utf-8"
        )
        _fsync_file(tmp / _MANIFEST)
        _fsync_dir(tmp)
        os.rename(tmp, final)  # the publish point — atomic on POSIX
        _fsync_dir(self.directory)
        self._sweep()
        return self._load(final)

    def _sweep(self) -> None:
        """Drop crashed ``.tmp`` orphans and snapshots beyond ``keep``.

        Pinned snapshots (see :meth:`pin_latest`) are skipped even when
        they fall outside the keep window — a recovery reader may still
        be loading their blobs.
        """
        for orphan in self.directory.glob(f"{_SNAP_PREFIX}*.tmp"):
            shutil.rmtree(orphan, ignore_errors=True)
        # Deletion runs under the pin lock so a reader's list-and-pin
        # (:meth:`pin_latest`) can never interleave with it: the reader
        # sees the directory either before or after one whole sweep.
        with self._pin_lock:
            dirs = self._snapshot_dirs()
            pinned = set(self._pins)
            stale_dirs = (
                dirs[:-self._keep] if len(dirs) > self._keep else []
            )
            for stale in stale_dirs:
                if int(stale.name[len(_SNAP_PREFIX):]) in pinned:
                    continue
                shutil.rmtree(stale, ignore_errors=True)
