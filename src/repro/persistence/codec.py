"""Binary codec for update events and the WAL's record framing.

Two layers, both versioned and both deliberately boring:

**Event codec** — one event, one byte string.  A 1-byte type tag
selects the event class; scalar events carry a compact JSON body
(labels survive as JSON scalars — ``str`` / ``int`` / ``float`` /
``bool`` / ``None``), bulk events carry their vector as raw
little-endian float64 bytes (no JSON float round-tripping, no parsing
cost at replay time).  ``decode_event(encode_event(e))`` reconstructs
an equal event for every valid event; the hypothesis suite in
``tests/test_persistence_codec.py`` pins this, and committed golden
files pin the on-disk format itself (v1, and v2 with provenance and
topology events).

**Record framing** — one payload, one self-checking record::

    +------------+------------+--------------------+
    | length u32 | crc32 u32  | payload bytes ...  |
    +------------+------------+--------------------+

Little-endian, CRC over the payload only.  A reader walks records until
the buffer ends *or* a record fails its checks — a short header, a
payload shorter than its declared length (a torn tail from a crash
mid-write), or a CRC mismatch (a torn or bit-flipped write).  Framing
makes corruption detectable, never mis-decodable: everything before the
first bad record is trusted, everything from it on is discarded.

The segment file header is ``REPROWAL`` + a version byte; readers
refuse versions they do not understand instead of guessing.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Iterator

import numpy as np

from repro.core.errors import ReproError
from repro.streaming.events import (
    BulkEdgeProbabilityUpdate,
    BulkSelfRiskUpdate,
    EdgeAdd,
    EdgeProbabilityUpdate,
    NodeAdd,
    SelfRiskUpdate,
    UpdateEvent,
)

__all__ = [
    "CODEC_VERSION",
    "SUPPORTED_WAL_VERSIONS",
    "WAL_MAGIC",
    "WAL_MAGIC_PREFIX",
    "PersistenceError",
    "CorruptRecordError",
    "encode_event",
    "decode_event",
    "encode_record",
    "decode_record_stream",
    "encode_batch_payload",
    "decode_batch_payload",
]

#: On-disk format version; bump on any incompatible layout change.
#: v2 (this version) adds optional provenance fields on per-entity
#: events and the ``NodeAdd``/``EdgeAdd`` topology tags.  v2 is a strict
#: superset of v1: every event a v1 writer could produce still encodes
#: byte-identically, so v1 segments remain readable (see
#: :data:`SUPPORTED_WAL_VERSIONS`).
CODEC_VERSION = 2

#: Versions this reader understands.  v1 files contain only tags 1-4
#: with provenance-free bodies — a subset of the v2 grammar — so the
#: same decoder serves both.
SUPPORTED_WAL_VERSIONS = (1, 2)

#: Magic bytes every supported segment header starts with.
WAL_MAGIC_PREFIX = b"REPROWAL"

#: Segment file header written by this version: magic + version byte.
WAL_MAGIC = WAL_MAGIC_PREFIX + bytes([CODEC_VERSION])

_RECORD_HEADER = struct.Struct("<II")  # payload length, crc32(payload)

# Event type tags (1 byte each).
_TAG_SELF_RISK = 1
_TAG_EDGE_PROB = 2
_TAG_BULK_SELF_RISK = 3
_TAG_BULK_EDGE_PROB = 4
_TAG_NODE_ADD = 5
_TAG_EDGE_ADD = 6

# Batch payload kinds.
BATCH_KIND_EVENTS = b"B"
BATCH_KIND_REGISTER = b"R"
#: Epoch stamp written by a newly promoted (or newly started) primary.
#: Replicas and recovery treat every later batch as belonging to that
#: epoch; a record from a lower epoch than a replica's fence is the
#: signature of a deposed primary's late append and is rejected.  The
#: kind is additive — event and registration encodings are untouched,
#: so v1/v2 golden files remain byte-valid.
BATCH_KIND_EPOCH = b"E"

_JSON_LABEL_TYPES = (str, int, float, bool, type(None))


class PersistenceError(ReproError):
    """Raised when durable state cannot be written or interpreted."""


class CorruptRecordError(PersistenceError):
    """Raised when a record fails framing or checksum validation."""


def _check_label(label: object, what: str) -> object:
    # bool is an int subclass; list it explicitly anyway for clarity.
    if not isinstance(label, _JSON_LABEL_TYPES):
        raise PersistenceError(
            f"{what} {label!r} is not WAL-serialisable; durable serving "
            f"requires JSON-scalar node labels (str/int/float/bool/None)"
        )
    return label


def _provenance_suffix(event: UpdateEvent) -> list:
    """Optional provenance tail of a JSON event body.

    Empty when the event carries no provenance — which keeps every
    provenance-free event byte-identical to its v1 encoding (the v1
    golden file still pins this codec).  When either field is set, both
    are appended so the decoder can address them positionally.
    """
    source, confidence = event.source, event.confidence
    if source is None and confidence is None:
        return []
    if source is not None and not isinstance(source, str):
        raise PersistenceError(
            f"event source {source!r} is not WAL-serialisable (want str)"
        )
    return [source, None if confidence is None else float(confidence)]


def _split_provenance(fields: list, base: int, what: str) -> tuple[list, dict]:
    """Split a decoded JSON body into base fields + provenance kwargs."""
    if len(fields) == base:
        return fields, {}
    if len(fields) == base + 2:
        return fields[:base], {
            "source": fields[base],
            "confidence": fields[base + 1],
        }
    raise ValueError(f"{what} body has {len(fields)} fields, want {base} or {base + 2}")


def encode_event(event: UpdateEvent) -> bytes:
    """Encode one update event as a self-describing byte string."""
    if isinstance(event, SelfRiskUpdate):
        body = json.dumps(
            [_check_label(event.label, "node label"), float(event.value)]
            + _provenance_suffix(event),
            ensure_ascii=False,
        ).encode("utf-8")
        return bytes([_TAG_SELF_RISK]) + body
    if isinstance(event, EdgeProbabilityUpdate):
        body = json.dumps(
            [
                _check_label(event.src, "edge source label"),
                _check_label(event.dst, "edge target label"),
                float(event.value),
            ]
            + _provenance_suffix(event),
            ensure_ascii=False,
        ).encode("utf-8")
        return bytes([_TAG_EDGE_PROB]) + body
    if isinstance(event, BulkSelfRiskUpdate):
        values = np.ascontiguousarray(event.values, dtype="<f8")
        return bytes([_TAG_BULK_SELF_RISK]) + values.tobytes()
    if isinstance(event, BulkEdgeProbabilityUpdate):
        values = np.ascontiguousarray(event.values, dtype="<f8")
        return bytes([_TAG_BULK_EDGE_PROB]) + values.tobytes()
    if isinstance(event, NodeAdd):
        body = json.dumps(
            [_check_label(event.label, "node label"), float(event.self_risk)]
            + _provenance_suffix(event),
            ensure_ascii=False,
        ).encode("utf-8")
        return bytes([_TAG_NODE_ADD]) + body
    if isinstance(event, EdgeAdd):
        body = json.dumps(
            [
                _check_label(event.src, "edge source label"),
                _check_label(event.dst, "edge target label"),
                float(event.probability),
            ]
            + _provenance_suffix(event),
            ensure_ascii=False,
        ).encode("utf-8")
        return bytes([_TAG_EDGE_ADD]) + body
    raise PersistenceError(f"unknown update event: {event!r}")


def decode_event(data: bytes) -> UpdateEvent:
    """Decode one event encoded by :func:`encode_event`."""
    if not data:
        raise CorruptRecordError("empty event payload")
    tag, body = data[0], data[1:]
    try:
        if tag == _TAG_SELF_RISK:
            fields = json.loads(body.decode("utf-8"))
            (label, value), prov = _split_provenance(fields, 2, "self-risk")
            return SelfRiskUpdate(label=label, value=float(value), **prov)
        if tag == _TAG_EDGE_PROB:
            fields = json.loads(body.decode("utf-8"))
            (src, dst, value), prov = _split_provenance(fields, 3, "edge-prob")
            return EdgeProbabilityUpdate(
                src=src, dst=dst, value=float(value), **prov
            )
        if tag == _TAG_BULK_SELF_RISK:
            return BulkSelfRiskUpdate(values=_decode_vector(body))
        if tag == _TAG_BULK_EDGE_PROB:
            return BulkEdgeProbabilityUpdate(values=_decode_vector(body))
        if tag == _TAG_NODE_ADD:
            fields = json.loads(body.decode("utf-8"))
            (label, risk), prov = _split_provenance(fields, 2, "node-add")
            return NodeAdd(label=label, self_risk=float(risk), **prov)
        if tag == _TAG_EDGE_ADD:
            fields = json.loads(body.decode("utf-8"))
            (src, dst, prob), prov = _split_provenance(fields, 3, "edge-add")
            return EdgeAdd(src=src, dst=dst, probability=float(prob), **prov)
    except (ValueError, UnicodeDecodeError) as error:
        raise CorruptRecordError(f"malformed event body: {error}") from None
    raise CorruptRecordError(f"unknown event tag {tag}")


def _decode_vector(body: bytes) -> np.ndarray:
    if len(body) % 8:
        raise CorruptRecordError(
            f"bulk vector body of {len(body)} bytes is not float64-aligned"
        )
    # Copy out of the read buffer so the event owns writable memory.
    return np.frombuffer(body, dtype="<f8").astype(np.float64)


# ----------------------------------------------------------------------
# Record framing
# ----------------------------------------------------------------------
def encode_record(payload: bytes) -> bytes:
    """Frame *payload* as one length-prefixed, CRC-checksummed record."""
    return _RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_record_stream(
    data: bytes, *, start: int = 0
) -> Iterator[tuple[bytes, int]]:
    """Yield ``(payload, end_offset)`` for each intact record in *data*.

    Stops silently at the first torn or corrupt record — the crash-
    recovery contract: everything before the first bad checksum is
    durable, everything after it is gone.  The final yielded
    ``end_offset`` is where a repaired log should be truncated (and
    where appends may resume).
    """
    offset = start
    total = len(data)
    while True:
        if offset + _RECORD_HEADER.size > total:
            return
        length, crc = _RECORD_HEADER.unpack_from(data, offset)
        body_start = offset + _RECORD_HEADER.size
        body_end = body_start + length
        if body_end > total:
            return  # torn tail: payload shorter than declared
        payload = data[body_start:body_end]
        if zlib.crc32(payload) != crc:
            return  # corrupt record: stop trusting the file here
        offset = body_end
        yield payload, offset


# ----------------------------------------------------------------------
# Batch payloads (what one WAL record carries)
# ----------------------------------------------------------------------
def encode_batch_payload(
    kind: bytes, seq: int, tenant_id: object, parts: list[bytes]
) -> bytes:
    """Encode one WAL batch: kind, sequence, tenant, then *parts*.

    ``kind`` is :data:`BATCH_KIND_EVENTS` (parts = encoded events, in
    coalesced order) or :data:`BATCH_KIND_REGISTER` (parts = one JSON
    blob of tenant registration arguments).
    """
    tenant_json = json.dumps(
        _check_label(tenant_id, "tenant id"), ensure_ascii=False
    ).encode("utf-8")
    out = bytearray()
    out += kind
    out += struct.pack("<Q", seq)
    out += struct.pack("<I", len(tenant_json))
    out += tenant_json
    out += struct.pack("<I", len(parts))
    for part in parts:
        out += struct.pack("<I", len(part))
        out += part
    return bytes(out)


def decode_batch_payload(payload: bytes) -> tuple[bytes, int, object, list[bytes]]:
    """Decode :func:`encode_batch_payload`'s output."""
    try:
        kind = payload[0:1]
        if kind not in (BATCH_KIND_EVENTS, BATCH_KIND_REGISTER, BATCH_KIND_EPOCH):
            raise CorruptRecordError(f"unknown batch kind {kind!r}")
        offset = 1
        (seq,) = struct.unpack_from("<Q", payload, offset)
        offset += 8
        (tenant_len,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        tenant_id = json.loads(payload[offset:offset + tenant_len].decode("utf-8"))
        offset += tenant_len
        (count,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        parts: list[bytes] = []
        for _ in range(count):
            (part_len,) = struct.unpack_from("<I", payload, offset)
            offset += 4
            parts.append(payload[offset:offset + part_len])
            offset += part_len
        if offset != len(payload):
            raise CorruptRecordError(
                f"{len(payload) - offset} trailing bytes after batch body"
            )
    except (struct.error, ValueError, UnicodeDecodeError) as error:
        raise CorruptRecordError(f"malformed batch payload: {error}") from None
    return kind, int(seq), tenant_id, parts
