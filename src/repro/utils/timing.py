"""Wall-clock timing helpers used by the experiment harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "timed"]


@dataclass
class Stopwatch:
    """Accumulating stopwatch with named laps.

    Examples
    --------
    >>> watch = Stopwatch()
    >>> with watch.lap("bounds"):
    ...     pass
    >>> "bounds" in watch.laps
    True
    """

    laps: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def lap(self, name: str):
        """Context manager that records the elapsed time under *name*.

        Re-entering the same name accumulates, so per-phase totals over a
        loop come out right.
        """
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.laps[name] = self.laps.get(name, 0.0) + elapsed

    @property
    def total(self) -> float:
        """Sum of all recorded laps in seconds."""
        return sum(self.laps.values())


@contextmanager
def timed():
    """Context manager yielding a mutable single-cell elapsed-time holder.

    >>> with timed() as cell:
    ...     pass
    >>> cell[0] >= 0.0
    True
    """
    cell = [0.0]
    started = time.perf_counter()
    try:
        yield cell
    finally:
        cell[0] = time.perf_counter() - started
