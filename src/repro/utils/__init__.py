"""Small shared utilities (timing, table rendering)."""

from repro.utils.tables import format_cell, render_markdown_table, render_table
from repro.utils.timing import Stopwatch, timed

__all__ = [
    "format_cell",
    "render_markdown_table",
    "render_table",
    "Stopwatch",
    "timed",
]
