"""ASCII/markdown table rendering for experiment output.

The experiment scripts print the same rows/series the paper's tables and
figures report; this module renders them as aligned monospace tables (for
the terminal) and GitHub-flavoured markdown (for EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

__all__ = ["render_table", "render_markdown_table", "format_cell"]


def format_cell(value: Any) -> str:
    """Render one cell: floats to 4 significant places, rest via str."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def _normalise(
    rows: Iterable[Mapping[str, Any]], columns: Sequence[str] | None
) -> tuple[list[str], list[list[str]]]:
    materialised = [dict(row) for row in rows]
    if columns is None:
        columns = []
        for row in materialised:
            for key in row:
                if key not in columns:
                    columns.append(key)
    body = [
        [format_cell(row.get(column, "")) for column in columns]
        for row in materialised
    ]
    return list(columns), body


def render_table(
    rows: Iterable[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render dict-rows as an aligned monospace table."""
    header, body = _normalise(rows, columns)
    widths = [len(column) for column in header]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    rule = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append(rule)
    for row in body:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_markdown_table(
    rows: Iterable[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
) -> str:
    """Render dict-rows as a GitHub-flavoured markdown table."""
    header, body = _normalise(rows, columns)
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "|".join("---" for _ in header) + "|",
    ]
    for row in body:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
