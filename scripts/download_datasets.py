#!/usr/bin/env python
"""Download and checksum-verify the paper's public SNAP datasets.

Fetches the gzipped edge lists from snap.stanford.edu, decompresses them
into the data directory (``data/snap`` or ``$REPRO_DATA_DIR``), and
records/verifies SHA-256 checksums in ``CHECKSUMS.json`` next to the
files: the first download of a dataset pins its digest
(trust-on-first-use), every later download or ``--verify-only`` run must
reproduce it exactly — a silently changed upstream file fails loudly
instead of poisoning experiments.

Usage::

    python scripts/download_datasets.py                # all known datasets
    python scripts/download_datasets.py wiki p2p       # a subset
    python scripts/download_datasets.py --verify-only  # re-hash local files
    python scripts/download_datasets.py --dest /data   # custom directory

CI never runs this (no network there); the loaders in
:mod:`repro.datasets.snap` fall back to the synthetic generators when
the files are absent, and their tests run on bundled fixtures.
"""

from __future__ import annotations

import argparse
import gzip
import hashlib
import json
import shutil
import sys
import tempfile
import urllib.request
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - script plumbing
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.datasets.snap import SNAP_SOURCES, snap_data_dir

CHECKSUM_FILE = "CHECKSUMS.json"


def sha256_of(path: Path, chunk_size: int = 1 << 20) -> str:
    """Hex SHA-256 digest of *path*, streamed."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while chunk := handle.read(chunk_size):
            digest.update(chunk)
    return digest.hexdigest()


def load_manifest(directory: Path) -> dict[str, str]:
    """The recorded ``{file name: sha256}`` manifest (empty if absent)."""
    path = directory / CHECKSUM_FILE
    if not path.is_file():
        return {}
    return json.loads(path.read_text(encoding="utf-8"))


def save_manifest(directory: Path, manifest: dict[str, str]) -> None:
    """Write the checksum manifest (sorted, one entry per line)."""
    path = directory / CHECKSUM_FILE
    path.write_text(
        json.dumps(dict(sorted(manifest.items())), indent=2) + "\n",
        encoding="utf-8",
    )


def verify_file(path: Path, expected: str) -> None:
    """Raise :class:`ValueError` unless *path* hashes to *expected*."""
    actual = sha256_of(path)
    if actual != expected:
        raise ValueError(
            f"checksum mismatch for {path.name}: expected {expected}, "
            f"got {actual}"
        )


def download_one(
    name: str, directory: Path, manifest: dict[str, str], force: bool
) -> Path:
    """Fetch dataset *name* into *directory*; returns the final path.

    Existing files are verified against the manifest and skipped unless
    *force*.  Fresh downloads land via a temp file (no partial writes),
    are decompressed, verified against the manifest when an entry
    exists, and pinned into it otherwise.
    """
    file_name, url = SNAP_SOURCES[name]
    target = directory / file_name
    if target.is_file() and not force:
        if file_name in manifest:
            verify_file(target, manifest[file_name])
            print(f"{name}: {file_name} present, checksum OK")
        else:
            manifest[file_name] = sha256_of(target)
            print(f"{name}: {file_name} present, checksum pinned")
        return target
    print(f"{name}: fetching {url}")
    with tempfile.NamedTemporaryFile(
        dir=directory, suffix=".part", delete=False
    ) as buffer:
        temp_path = Path(buffer.name)
        try:
            with urllib.request.urlopen(url, timeout=120) as response:
                if url.endswith(".gz"):
                    with gzip.open(response, "rb") as decompressed:
                        shutil.copyfileobj(decompressed, buffer)
                else:
                    shutil.copyfileobj(response, buffer)
        except BaseException:
            temp_path.unlink(missing_ok=True)
            raise
    if file_name in manifest:
        try:
            verify_file(temp_path, manifest[file_name])
        except ValueError:
            temp_path.unlink(missing_ok=True)
            raise
    else:
        manifest[file_name] = sha256_of(temp_path)
        print(f"{name}: checksum pinned {manifest[file_name][:16]}…")
    temp_path.replace(target)
    print(f"{name}: wrote {target}")
    return target


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "datasets",
        nargs="*",
        help=(
            "datasets to fetch (default: all known: "
            f"{', '.join(sorted(SNAP_SOURCES))})"
        ),
    )
    parser.add_argument(
        "--dest",
        type=Path,
        default=None,
        help="target directory (default: data/snap or $REPRO_DATA_DIR)",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="re-download even when the file exists",
    )
    parser.add_argument(
        "--verify-only",
        action="store_true",
        help="only re-hash existing files against the manifest",
    )
    args = parser.parse_args(argv)
    unknown = sorted(set(args.datasets) - set(SNAP_SOURCES))
    if unknown:
        parser.error(
            f"unknown datasets {unknown}; known: {sorted(SNAP_SOURCES)}"
        )
    directory = args.dest or snap_data_dir()
    directory.mkdir(parents=True, exist_ok=True)
    manifest = load_manifest(directory)
    names = args.datasets or sorted(SNAP_SOURCES)
    failures = 0
    for name in names:
        file_name, _ = SNAP_SOURCES[name]
        try:
            if args.verify_only:
                target = directory / file_name
                if not target.is_file():
                    print(f"{name}: {file_name} missing, skipped")
                    continue
                if file_name not in manifest:
                    raise ValueError(
                        f"{file_name} has no recorded checksum; download "
                        "it through this script first"
                    )
                verify_file(target, manifest[file_name])
                print(f"{name}: checksum OK")
            else:
                download_one(name, directory, manifest, args.force)
        except (OSError, ValueError) as error:
            print(f"{name}: FAILED — {error}", file=sys.stderr)
            failures += 1
    if not args.verify_only:
        save_manifest(directory, manifest)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
