"""Benchmark E-F7: regenerate Figure 7 (precision of the five methods).

Runs all five methods against the Monte-Carlo ground truth on the four
effectiveness datasets.  Expected shape: all methods within a few
precision points; N (largest budget) at or near the top.
"""

from __future__ import annotations

from repro.experiments.fig7_effectiveness import run
from repro.utils.tables import render_table


def _mean_precision_by_method(rows):
    by_method: dict[str, list[float]] = {}
    for row in rows:
        by_method.setdefault(str(row["method"]), []).append(
            float(row["precision"])
        )
    return {m: sum(v) / len(v) for m, v in by_method.items()}


def test_fig7_effectiveness(benchmark, bench_config):
    rows = benchmark.pedantic(run, args=(bench_config,), rounds=1, iterations=1)
    assert rows
    print()
    print(render_table(rows, title="Figure 7 — precision vs ground truth"))
    means = _mean_precision_by_method(rows)
    print()
    print(render_table(
        [{"method": m, "mean_precision": round(p, 4)} for m, p in means.items()],
        title="Mean precision per method",
    ))
    # Shape checks: every method lands in a usable band, and the whole
    # line-up stays within a narrow spread (the paper reports <= 3 points
    # at full scale; small scales are a little noisier).
    for method, precision in means.items():
        assert precision > 0.55, f"{method} collapsed to {precision:.2f}"
    assert max(means.values()) - min(means.values()) < 0.25
