"""Shared configuration for the benchmark suite.

Every benchmark uses the ``quick`` experiment preset scaled further down
(`BENCH` below) so ``pytest benchmarks/ --benchmark-only`` completes in
minutes while still exercising the full pipeline of each experiment.
Crank the scales up (or switch to ``get_config("paper")``) to reproduce
the paper-sized runs.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig

#: The configuration all benchmarks run under.
BENCH = ExperimentConfig(
    name="bench",
    seed=7,
    epsilon=0.3,
    delta=0.1,
    k_percents=(2.0, 6.0, 10.0),
    ground_truth_samples=1_500,
    naive_samples=1_500,
    scale_override=None,  # per-dataset default scales from the specs
    panel_nodes=600,
    panel_edges=690,
)


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The benchmark-suite experiment configuration."""
    return BENCH
