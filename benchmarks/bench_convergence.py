"""Supplementary bench: estimator convergence and the Theorem-4 guarantee.

Checks the two properties the sampling theory promises: Monte-Carlo-rate
error decay, and an empirical (ε, δ) violation rate below δ at the
Equation-(3) budget.
"""

from __future__ import annotations

from repro.experiments.convergence import error_curve, guarantee_check
from repro.utils.tables import render_table


def test_error_decays_at_monte_carlo_rate(benchmark, bench_config):
    rows = benchmark.pedantic(
        error_curve,
        kwargs={
            "dataset": "citation",
            "seed": bench_config.seed,
            "truth_samples": 8_000,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(rows, title="MAE vs sample budget"))
    # MAE must shrink by at least 3x from the smallest to largest budget
    # (sqrt(3200/50) = 8x in theory; leave slack for noise).
    assert float(rows[-1]["mae"]) < float(rows[0]["mae"]) / 3.0
    # And the normalised column should be flat-ish: max/min < 4.
    normalised = [float(row["mae*sqrt(t)"]) for row in rows]
    assert max(normalised) / min(normalised) < 4.0


def test_epsilon_delta_guarantee_holds(benchmark, bench_config):
    result = benchmark.pedantic(
        guarantee_check,
        kwargs={
            "dataset": "citation",
            "epsilon": bench_config.epsilon,
            "delta": bench_config.delta,
            "trials": 10,
            "seed": bench_config.seed,
            "truth_samples": 8_000,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table([result], title="(epsilon, delta) guarantee check"))
    assert result["meets_guarantee"]
