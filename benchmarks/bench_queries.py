"""Wall-clock benchmark: one shared world set vs per-query resampling.

The tentpole claim of the query-engine layer is amortisation: repairing
(or here, realising) a set of possible worlds once and answering *many*
query families against it must beat giving every query its own fresh
sample.  This benchmark runs a mixed battery of queries — top-k default
probability, k-core membership, two-terminal/cluster reliability, and
the risk/exposure skyline — twice over the same power-law graph:

* **shared** — one :class:`~repro.sampling.worldstate.WorldView` behind
  one :class:`~repro.queries.engine.QueryEngine`; every query reuses the
  realised world block;
* **fresh** — each query builds its own view and engine, the way a
  per-query sampler (one detector run per question) would.

Both paths use the same counter-PRF seed and world ids, so every answer
is bit-identical across paths; the benchmark asserts that before any
timing is reported.  Results land in ``BENCH_queries.json`` at the repo
root.

Usage
-----
::

    python -m benchmarks.bench_queries            # full sweep
    python -m benchmarks.bench_queries --quick    # CI smoke (seconds)

The script needs no installed package: it falls back to adding ``src/``
to ``sys.path`` when ``repro`` is not importable.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent

try:  # pragma: no cover - import plumbing
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(_REPO_ROOT / "src"))

import numpy as np

from repro.queries import QueryEngine
from repro.sampling.worldstate import WorldView

from benchmarks.bench_streaming import build_powerlaw_graph

DEFAULT_OUTPUT = _REPO_ROOT / "BENCH_queries.json"


def query_battery(n: int) -> list[tuple[str, dict]]:
    """The mixed workload: 16 queries across all four families.

    Shaped like a multi-tenant serving mix: several parameterisations
    per family (different ``k``/``top`` report sizes, different
    pair/cluster sets), because that is exactly where shared derived
    products — one propagation fixpoint for the topk/skyline family
    pair, one component labelling for every reliability question, one
    peel per core order with deeper cores seeded from shallower ones —
    amortise across questions.
    """
    return [
        ("topk", {"k": 5}),
        ("topk", {"k": 10}),
        ("topk", {"k": 25}),
        ("topk", {"k": 50}),
        ("skyline", {}),
        ("kcore", {"k": 2}),
        ("kcore", {"k": 2, "top": 10}),
        ("kcore", {"k": 3}),
        ("kcore", {"k": 3, "top": 10}),
        ("reliability", {"pairs": [[0, n // 2], [1, n - 1]]}),
        ("reliability", {"pairs": [[2, n // 3], [3, n // 4], [4, n // 5]]}),
        ("reliability", {"pairs": [[5, n - 2]]}),
        ("reliability", {"pairs": [[6, n // 2 + 1], [7, n - 3]]}),
        ("reliability", {"cluster": list(range(8))}),
        ("reliability", {"cluster": list(range(10, 16))}),
        ("reliability", {"pairs": [[8, n - 4], [9, n - 5]]}),
    ]


def bench_one_size(n: int, worlds: int, seed: int, repeats: int) -> dict:
    """Time the battery shared-vs-fresh on one graph size.

    Each path is run *repeats* times (every repetition rebuilds its
    views and engines from scratch, so nothing carries over) and the
    minimum wall clock is reported — the standard guard against a noisy
    neighbour inflating one pass on a shared CI box.
    """
    graph = build_powerlaw_graph(n, seed)
    world_ids = np.arange(worlds, dtype=np.int64)
    battery = query_battery(n)

    shared_answers: list = []
    shared_seconds = float("inf")
    for _rep in range(repeats):
        started = time.perf_counter()
        engine = QueryEngine(WorldView(graph, world_ids, seed=seed))
        shared_answers = [
            engine.run(family, **params) for family, params in battery
        ]
        shared_seconds = min(
            shared_seconds, time.perf_counter() - started
        )

    fresh_answers: list = []
    fresh_seconds = float("inf")
    for _rep in range(repeats):
        started = time.perf_counter()
        fresh_answers = [
            QueryEngine(WorldView(graph, world_ids, seed=seed)).run(
                family, **params
            )
            for family, params in battery
        ]
        fresh_seconds = min(fresh_seconds, time.perf_counter() - started)

    mismatches = sum(
        0 if shared.same_answer(fresh) else 1
        for shared, fresh in zip(shared_answers, fresh_answers)
    )
    if mismatches:
        raise AssertionError(
            f"{mismatches}/{len(battery)} shared answers diverged from "
            "per-query sampling — the speedup would be meaningless"
        )
    return {
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "worlds": worlds,
        "queries": len(battery),
        "repeats": repeats,
        "families": sorted({family for family, _params in battery}),
        "shared_seconds": round(shared_seconds, 6),
        "fresh_seconds": round(fresh_seconds, 6),
        "shared_speedup_vs_fresh": round(
            fresh_seconds / max(shared_seconds, 1e-12), 2
        ),
    }


def run(
    sizes: list[int],
    worlds: int,
    seed: int,
    repeats: int,
    output: Path,
    mode: str,
) -> dict:
    """Run the sweep, print a table, and write the JSON report."""
    results = []
    for n in sizes:
        row = bench_one_size(n, worlds, seed, repeats)
        results.append(row)
        print(
            f"n={row['nodes']:>7}  m={row['edges']:>8}  "
            f"worlds={worlds}  queries={row['queries']}  "
            f"shared={row['shared_seconds']:.3f}s  "
            f"fresh={row['fresh_seconds']:.3f}s  "
            f"speedup={row['shared_speedup_vs_fresh']:.1f}x"
        )
    report = {
        "benchmark": "query_engine_amortisation",
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "mode": mode,
        "seed": seed,
        "results": results,
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny graph / fewer worlds so CI can smoke-test in seconds",
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=None,
        help="node counts to sweep (default: 5000)",
    )
    parser.add_argument(
        "--worlds", type=int, default=None, help="sampled worlds per view"
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--repeats",
        type=int,
        default=2,
        help="timed repetitions per path; the minimum is reported",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"JSON report path (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)
    if args.quick:
        sizes = args.sizes or [1500]
        worlds = args.worlds or 1024
        mode = "quick"
    else:
        sizes = args.sizes or [5000]
        worlds = args.worlds or 8192
        mode = "full"
    run(sizes, worlds, args.seed, args.repeats, args.output, mode)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
