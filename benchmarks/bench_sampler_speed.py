"""Wall-clock benchmark: reference vs batched reverse-sampling engines.

Times the per-candidate-BFS :class:`~repro.sampling.reverse.ReverseSampler`
(the seed implementation of Algorithm 5) against the vectorised
:class:`~repro.sampling.reverse.BatchedReverseSampler` on directed
power-law graphs of growing size, with the forward sampler included for
context, and writes the measurements to ``BENCH_sampling.json`` at the
repo root.  Every PR that touches the sampling hot path should re-run
this and record the deltas in ``CHANGES.md``.

Usage
-----
::

    python -m benchmarks.bench_sampler_speed            # full sweep
    python -m benchmarks.bench_sampler_speed --quick    # CI smoke (seconds)
    python -m benchmarks.bench_sampler_speed --sizes 2000 5000 --samples 30

The script needs no installed package: it falls back to adding ``src/``
to ``sys.path`` when ``repro`` is not importable.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent

try:  # pragma: no cover - import plumbing
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(_REPO_ROOT / "src"))

import numpy as np

from repro.core.graph import UncertainGraph
from repro.datasets.powerlaw import directed_powerlaw_edges
from repro.sampling.forward import ForwardSampler
from repro.sampling.reverse import BatchedReverseSampler, ReverseSampler

DEFAULT_OUTPUT = _REPO_ROOT / "BENCH_sampling.json"

#: ~3 edges per node matches the sparsity of the paper's Table-2 graphs.
EDGE_FACTOR = 3


def build_powerlaw_graph(n: int, seed: int) -> UncertainGraph:
    """Uncertain power-law graph with §4.1-style uniform probabilities."""
    rng = np.random.default_rng(seed)
    src, dst = directed_powerlaw_edges(n, EDGE_FACTOR * n, seed=rng)
    return UncertainGraph.from_arrays(
        self_risks=rng.random(n) * 0.2,
        edge_src=src,
        edge_dst=dst,
        edge_probs=rng.random(src.size),
    )


def _time(factory, samples: int, repeats: int) -> float:
    """Best-of-*repeats* wall-clock seconds for one engine run."""
    best = float("inf")
    for _ in range(repeats):
        sampler = factory()
        start = time.perf_counter()
        sampler.run(samples)
        best = min(best, time.perf_counter() - start)
    return best


def bench_one_size(n: int, samples: int, repeats: int, seed: int) -> dict:
    """Benchmark all engines on one graph size."""
    graph = build_powerlaw_graph(n, seed)
    candidates = np.arange(graph.num_nodes)
    reference_seconds = _time(
        lambda: ReverseSampler(graph, candidates, seed=seed), samples, repeats
    )
    batched_seconds = _time(
        lambda: BatchedReverseSampler(graph, candidates, seed=seed),
        samples,
        repeats,
    )
    forward_seconds = _time(
        lambda: ForwardSampler(graph, seed=seed), samples, repeats
    )
    row = {
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "samples": samples,
        "reference_reverse_seconds": round(reference_seconds, 6),
        "batched_reverse_seconds": round(batched_seconds, 6),
        "forward_seconds": round(forward_seconds, 6),
        "batched_speedup_vs_reference": round(
            reference_seconds / max(batched_seconds, 1e-12), 2
        ),
    }
    return row


def run(
    sizes: list[int],
    samples: int,
    repeats: int,
    seed: int,
    output: Path,
    mode: str,
) -> dict:
    """Run the sweep, print a table, and write the JSON report."""
    results = []
    for n in sizes:
        row = bench_one_size(n, samples, repeats, seed)
        results.append(row)
        print(
            f"n={row['nodes']:>7}  m={row['edges']:>8}  "
            f"reference={row['reference_reverse_seconds']:.3f}s  "
            f"batched={row['batched_reverse_seconds']:.3f}s  "
            f"forward={row['forward_seconds']:.3f}s  "
            f"speedup={row['batched_speedup_vs_reference']:.1f}x"
        )
    report = {
        "benchmark": "reverse_sampling_engines",
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "mode": mode,
        "seed": seed,
        "repeats": repeats,
        "edge_factor": EDGE_FACTOR,
        "results": results,
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny sizes / few samples so CI can smoke-test in seconds",
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=None,
        help="node counts to sweep (default: 2000 5000 10000)",
    )
    parser.add_argument(
        "--samples", type=int, default=None, help="worlds per engine run"
    )
    parser.add_argument(
        "--repeats", type=int, default=2, help="best-of repeats per timing"
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"JSON report path (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)
    if args.quick:
        sizes = args.sizes or [300, 800]
        samples = args.samples or 10
        repeats = 1
        mode = "quick"
    else:
        sizes = args.sizes or [2000, 5000, 10000]
        samples = args.samples or 40
        repeats = args.repeats
        mode = "full"
    run(sizes, samples, repeats, args.seed, args.output, mode)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
