"""Benchmark E-F4: regenerate Figure 4 (bottom-k parameter tuning).

Runs BSRBK across the bk grid on the four Figure-4 datasets and prints
the precision series.  Expected shape: precision stabilises by bk≈8-16.
"""

from __future__ import annotations

from repro.experiments.fig4_bk import BK_GRID, run
from repro.utils.tables import render_table


def _mean_precision_by_bk(rows):
    by_bk: dict[int, list[float]] = {}
    for row in rows:
        by_bk.setdefault(int(row["bk"]), []).append(float(row["precision"]))
    return {bk: sum(v) / len(v) for bk, v in by_bk.items()}


def test_fig4_bk_tuning(benchmark, bench_config):
    rows = benchmark.pedantic(run, args=(bench_config,), rounds=1, iterations=1)
    assert {int(row["bk"]) for row in rows} == set(BK_GRID)
    print()
    print(render_table(rows, title="Figure 4 — BSRBK precision vs bk"))
    means = _mean_precision_by_bk(rows)
    print()
    print(render_table(
        [{"bk": bk, "mean_precision": round(means[bk], 4)} for bk in BK_GRID],
        title="Mean precision per bk (expect saturation by bk=8-16)",
    ))
    # Sanity: larger sketches must not hurt precision materially.
    assert means[64] >= means[4] - 0.1
