"""Wall-clock benchmark: scalar vs bit-parallel exact possible-world oracle.

Times ``exact_default_probabilities`` with ``engine="reference"`` (the
scalar per-world generator of the seed implementation) against
``engine="block"`` (the Gray-code block engine backed by the shared
multi-world propagation kernel) on random uncertain graphs of growing
*free choice* count — a ``c``-choice graph enumerates ``2^c`` worlds.
Writes the measurements to ``BENCH_exact.json`` at the repo root and
asserts the two engines agree on every graph before trusting a timing.
Every PR that touches the enumeration hot path should re-run this and
record the deltas in ``CHANGES.md``.

Usage
-----
::

    python -m benchmarks.bench_exact_oracle            # full sweep
    python -m benchmarks.bench_exact_oracle --quick    # CI smoke (seconds)
    python -m benchmarks.bench_exact_oracle --choices 16 18 --repeats 1

The script needs no installed package: it falls back to adding ``src/``
to ``sys.path`` when ``repro`` is not importable.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent

try:  # pragma: no cover - import plumbing
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(_REPO_ROOT / "src"))

import numpy as np

from repro.core.exact import exact_default_probabilities
from repro.core.graph import UncertainGraph

DEFAULT_OUTPUT = _REPO_ROOT / "BENCH_exact.json"


def build_choice_graph(choices: int, seed: int) -> UncertainGraph:
    """Random graph with exactly *choices* free (non-pinned) choices.

    Roughly a third of the choices become nodes and the rest edges —
    the densest shape the paper's tiny oracle graphs take — with every
    probability strictly inside ``(0, 1)`` so nothing is pinned.
    """
    rng = np.random.default_rng(seed)
    n = max(2, choices // 3)
    m = choices - n
    pairs = [(s, d) for s in range(n) for d in range(n) if s != d]
    if m > len(pairs):
        raise ValueError(f"{choices} choices need more than {n} nodes")
    chosen = rng.choice(len(pairs), size=m, replace=False)
    src = np.fromiter((pairs[i][0] for i in chosen), dtype=np.int64, count=m)
    dst = np.fromiter((pairs[i][1] for i in chosen), dtype=np.int64, count=m)
    return UncertainGraph.from_arrays(
        self_risks=rng.uniform(0.05, 0.6, n),
        edge_src=src,
        edge_dst=dst,
        edge_probs=rng.uniform(0.05, 0.95, m),
    )


def _time(run, repeats: int) -> float:
    """Best-of-*repeats* wall-clock seconds for one oracle run."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def bench_one_size(choices: int, repeats: int, seed: int) -> dict:
    """Benchmark both engines on one free-choice count."""
    graph = build_choice_graph(choices, seed)
    cap = max(choices, 28)
    block = exact_default_probabilities(graph, max_choices=cap, engine="block")
    reference = exact_default_probabilities(
        graph, max_choices=cap, engine="reference"
    )
    if not np.allclose(block, reference, rtol=0.0, atol=1e-10):
        raise AssertionError(
            f"engines disagree at {choices} choices: {block - reference}"
        )
    reference_seconds = _time(
        lambda: exact_default_probabilities(
            graph, max_choices=cap, engine="reference"
        ),
        repeats,
    )
    block_seconds = _time(
        lambda: exact_default_probabilities(
            graph, max_choices=cap, engine="block"
        ),
        repeats,
    )
    return {
        "choices": choices,
        "worlds": 2**choices,
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "reference_seconds": round(reference_seconds, 6),
        "block_seconds": round(block_seconds, 6),
        "block_speedup_vs_reference": round(
            reference_seconds / max(block_seconds, 1e-12), 2
        ),
    }


def run(
    choice_counts: list[int],
    repeats: int,
    seed: int,
    output: Path,
    mode: str,
) -> dict:
    """Run the sweep, print a table, and write the JSON report."""
    results = []
    for choices in choice_counts:
        row = bench_one_size(choices, repeats, seed)
        results.append(row)
        print(
            f"choices={row['choices']:>2}  worlds={row['worlds']:>9}  "
            f"reference={row['reference_seconds']:.3f}s  "
            f"block={row['block_seconds']:.3f}s  "
            f"speedup={row['block_speedup_vs_reference']:.1f}x"
        )
    report = {
        "benchmark": "exact_oracle_engines",
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "mode": mode,
        "seed": seed,
        "repeats": repeats,
        "results": results,
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small choice counts so CI can smoke-test in seconds",
    )
    parser.add_argument(
        "--choices",
        type=int,
        nargs="+",
        default=None,
        help="free-choice counts to sweep (default: 16 18 20)",
    )
    parser.add_argument(
        "--repeats", type=int, default=2, help="best-of repeats per timing"
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"JSON report path (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)
    if args.quick:
        choice_counts = args.choices or [12, 14]
        repeats = 1
        mode = "quick"
    else:
        choice_counts = args.choices or [16, 18, 20]
        repeats = args.repeats
        mode = "full"
    run(choice_counts, repeats, args.seed, args.output, mode)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
