"""Ablation benches for the design choices DESIGN.md calls out.

1. Reference (pseudocode-faithful) vs vectorised forward sampler.
2. Reverse sampling with vs without candidate reduction (SR's premise).
3. Bottom-k early stop vs full-budget reverse sampling (BSRBK's premise).
4. Bound order 1 vs 2 vs 3 end-to-end in BSR.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.bsr import BoundedSampleReverseDetector
from repro.algorithms.bsrbk import BottomKDetector
from repro.datasets.registry import load_dataset
from repro.sampling.forward import ForwardSampler, forward_sample_reference
from repro.sampling.reverse import ReverseSampler
from repro.sampling.rng import make_rng


@pytest.fixture(scope="module")
def citation(bench_config):
    return load_dataset("citation", seed=bench_config.seed)


class TestSamplerEngineAblation:
    def test_reference_engine(self, benchmark, citation):
        rng = make_rng(0)
        graph = citation.graph

        def run_reference(samples=50):
            counts = np.zeros(graph.num_nodes)
            for _ in range(samples):
                counts += forward_sample_reference(graph, rng)
            return counts

        benchmark(run_reference)

    def test_vectorised_engine(self, benchmark, citation):
        sampler = ForwardSampler(citation.graph, seed=0)
        benchmark(lambda: sampler.run(50))


class TestCandidateReductionAblation:
    def test_reverse_all_nodes(self, benchmark, citation):
        graph = citation.graph
        sampler = ReverseSampler(graph, np.arange(graph.num_nodes), seed=1)
        benchmark.pedantic(lambda: sampler.run(100), rounds=1, iterations=1)

    def test_reverse_pruned_candidates(self, benchmark, citation):
        from repro.bounds.candidates import reduce_candidates
        from repro.bounds.iterative import bound_pair

        graph = citation.graph
        k = citation.k_for_percent(5.0)
        lower, upper = bound_pair(graph, 2, 2)
        reduction = reduce_candidates(graph, lower, upper, k)
        candidates = (
            reduction.candidates
            if reduction.candidate_size
            else np.arange(graph.num_nodes)
        )
        sampler = ReverseSampler(graph, candidates, seed=1)
        benchmark.pedantic(lambda: sampler.run(100), rounds=1, iterations=1)


class TestEarlyStopAblation:
    def test_bsr_full_budget(self, benchmark, citation):
        detector = BoundedSampleReverseDetector(seed=2)
        k = citation.k_for_percent(5.0)
        result = benchmark.pedantic(
            detector.detect, args=(citation.graph, k), rounds=1, iterations=1
        )
        print(f"\nBSR samples used: {result.samples_used}")

    def test_bsrbk_early_stop(self, benchmark, citation):
        detector = BottomKDetector(bk=16, seed=2)
        k = citation.k_for_percent(5.0)
        result = benchmark.pedantic(
            detector.detect, args=(citation.graph, k), rounds=1, iterations=1
        )
        print(f"\nBSRBK samples used: {result.samples_used}")


class TestBoundOrderAblation:
    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_bsr_with_order(self, benchmark, citation, order):
        detector = BoundedSampleReverseDetector(
            lower_order=order, upper_order=order, seed=3
        )
        k = citation.k_for_percent(5.0)
        result = benchmark.pedantic(
            detector.detect, args=(citation.graph, k), rounds=1, iterations=1
        )
        print(
            f"\norder={order}: candidates={result.candidate_size}, "
            f"verified={result.k_verified}, samples={result.samples_used}"
        )
