"""Benchmark: the scaled-out indexed engine (PR 5's three layers).

Three measurements back the engine-promotion decision:

1. **One-shot parity** — BSR detection wall-clock, ``engine="indexed"``
   (block counter-PRF, now the default) vs ``engine="batched"`` on
   Table-2-shaped graphs.  The promotion criterion is a gap within
   noise (≤ a few percent).
2. **Streaming repair** — a drift-patch stream against
   :class:`~repro.streaming.monitor.TopKMonitor` with the bit-packed
   world state vs the dense PR-3 representation, under the same
   world-state memory budget.  At large ``n`` the dense masks blow the
   budget, so the dense monitor falls back to crossing-only
   invalidation and repairs ~|Δp|·samples worlds per patch; the packed
   state stays within budget and repairs only the worlds that actually
   drew the patched entity.  Every step is verified ``same_answer``
   against the other monitor before timing counts.
3. **World-state memory** — actual bytes of the packed state (masks +
   inverted index) vs the bytes the dense masks would need for the
   same worlds.

Results land in ``BENCH_indexed.json`` at the repo root.

Usage
-----
::

    python -m benchmarks.bench_indexed_engine            # full (50k nodes)
    python -m benchmarks.bench_indexed_engine --quick    # CI smoke (seconds)
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent

try:  # pragma: no cover - import plumbing
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(_REPO_ROOT / "src"))

import numpy as np

from repro.algorithms.bsr import BoundedSampleReverseDetector
from repro.core.graph import UncertainGraph
from repro.datasets.guarantee import guarantee_graph
from repro.datasets.powerlaw import directed_powerlaw_edges
from repro.datasets.probabilities import assign_financial
from repro.sampling.worldstate import DenseWorldState
from repro.streaming.monitor import TopKMonitor
from repro.streaming.replay import random_patch_stream

DEFAULT_OUTPUT = _REPO_ROOT / "BENCH_indexed.json"

#: ~3 edges per node matches the sparsity of the paper's Table-2 graphs.
EDGE_FACTOR = 3


def build_powerlaw_graph(n: int, seed: int) -> UncertainGraph:
    """Power-law topology with guarantee-style Beta(2, 4) edge strengths."""
    rng = np.random.default_rng(seed)
    src, dst = directed_powerlaw_edges(n, EDGE_FACTOR * n, seed=rng)
    return UncertainGraph.from_arrays(
        self_risks=rng.random(n) * 0.2,
        edge_src=src,
        edge_dst=dst,
        edge_probs=np.clip(rng.beta(2.0, 4.0, src.size), 0.01, 0.95),
    )


def build_guarantee_network(n: int, seed: int) -> UncertainGraph:
    """The deployment workload: a guarantee network with the paper's
    feature-driven (financial) probability protocol — what the §5
    monitoring system actually watches."""
    rng = np.random.default_rng(seed)
    graph = guarantee_graph(n, EDGE_FACTOR * n, seed=rng)
    assign_financial(graph, seed=rng)
    return graph


def bench_one_shot(sizes: list[int], k: int, seed: int, repeats: int) -> list[dict]:
    """Median BSR detection wall-clock per engine on each size."""
    rows = []
    for n in sizes:
        graph = build_powerlaw_graph(n, seed)
        timings: dict[str, list[float]] = {"batched": [], "indexed": []}
        reference = {}
        for _ in range(repeats):
            for engine in ("batched", "indexed"):
                detector = BoundedSampleReverseDetector(
                    seed=seed, engine=engine
                )
                started = time.perf_counter()
                result = detector.detect(graph, k)
                timings[engine].append(time.perf_counter() - started)
                reference[engine] = result
        batched = statistics.median(timings["batched"])
        indexed = statistics.median(timings["indexed"])
        # The deterministic stages must agree exactly across engines.
        assert (
            reference["batched"].samples_used
            == reference["indexed"].samples_used
        )
        row = {
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "k": k,
            "samples": reference["indexed"].samples_used,
            "batched_seconds": round(batched, 6),
            "indexed_seconds": round(indexed, 6),
            "indexed_over_batched": round(indexed / batched, 4),
        }
        rows.append(row)
        print(
            f"one-shot n={n:>7}  batched={batched:.3f}s  "
            f"indexed={indexed:.3f}s  ratio={row['indexed_over_batched']:.3f}"
        )
    return rows


#: Sampling modes that mean "the monitor served the flush from cached
#: worlds" (repairing/reusing them) rather than rebuilding the candidate
#: set's sampling state.
_REPAIR_MODES = frozenset({"repaired", "reused", "skipped"})


def bench_streaming_repair(
    n: int, k: int, events: int, drift: float, seed: int, flush: int = 10
) -> dict:
    """Drift-patch stream: packed world state vs the dense baseline.

    The graph is the paper's deployment workload — a guarantee network
    under the financial probability protocol, whose contagion closures
    touch a few percent of the graph per world, so the touched-entity
    filter discards most uniform crossings.  Updates arrive in
    *flush*-sized batches, the shape the serving layer's coalescing
    ingestion queue (PR 4) delivers to its monitors.  Both monitors run
    under the same world-state memory budget, chosen so the dense
    ``(samples, n+m)`` masks exceed it while the packed state fits —
    the memory envelope the packed representation exists for.  Every
    flush's answers are cross-checked before the timing is reported.

    Flushes are split into two buckets by what the sampling stage did:

    * **repair-path** — both monitors served the flush from cached
      worlds (``repaired`` / ``reused``).  This is where the packed
      touched-entity filter acts, and ``repair_speedup_vs_dense`` —
      the headline streaming-repair metric — is measured over exactly
      these flushes.  They dominate the stream (candidate churn is
      rare).
    * **churn** — an Algorithm-4 candidate-set / Theorem-5 budget move
      forced a rebuild (``resampled``, or ``columned`` when the packed
      monitor could absorb it incrementally).  Both engines pay the
      same exploration here by construction, so these flushes carry no
      information about the repair representations; they are timed and
      reported separately (``end_to_end_speedup_vs_dense`` includes
      them).
    """
    graph_packed = build_guarantee_network(n, seed)
    graph_dense = build_guarantee_network(n, seed)
    probe = TopKMonitor(graph_packed, k, seed=seed, world_state="packed")
    probe.top_k()
    samples = probe.top_k().samples_used
    # The envelope: a quarter of what dense masks would need.  Packed
    # masks (2 * ceil(n/64) words per world) fit well inside it.
    budget = max(
        1, DenseWorldState.bytes_needed(samples, n, graph_packed.num_edges) // 4
    )
    monitors = {
        "packed": TopKMonitor(
            graph_packed, k, seed=seed,
            world_state="packed", world_state_budget=budget,
        ),
        "dense": TopKMonitor(
            graph_dense, k, seed=seed,
            world_state="dense", world_state_budget=budget,
        ),
    }
    for monitor in monitors.values():
        monitor.top_k()
    packed_bytes = monitors["packed"].world_state_nbytes
    dense_equivalent = DenseWorldState.bytes_needed(
        samples, n, graph_packed.num_edges
    )
    elapsed = {
        "repair": {"packed": 0.0, "dense": 0.0},
        "churn": {"packed": 0.0, "dense": 0.0},
    }
    counts = {"repair": 0, "churn": 0}
    repaired = {"packed": 0, "dense": 0}
    mismatches = 0
    events_list = list(
        random_patch_stream(graph_packed, events, seed=seed + 1, drift=drift)
    )
    results = {}
    for start in range(0, len(events_list), flush):
        batch = events_list[start : start + flush]
        flush_elapsed = {}
        modes = {}
        for name, monitor in monitors.items():
            monitor.apply(batch)
            started = time.perf_counter()
            results[name] = monitor.top_k()
            flush_elapsed[name] = time.perf_counter() - started
            modes[name] = monitor.last_report.sampling
            repaired[name] += monitor.last_report.worlds_repaired
        kind = (
            "repair"
            if all(mode in _REPAIR_MODES for mode in modes.values())
            else "churn"
        )
        counts[kind] += 1
        for name, seconds in flush_elapsed.items():
            elapsed[kind][name] += seconds
        if not results["packed"].same_answer(results["dense"]):
            mismatches += 1
    if mismatches:
        raise AssertionError(
            f"{mismatches} flushes saw packed answers diverge from the "
            "dense baseline — the speedup would be meaningless"
        )
    repair_speedup = elapsed["repair"]["dense"] / max(
        elapsed["repair"]["packed"], 1e-12
    )
    total = {
        name: elapsed["repair"][name] + elapsed["churn"][name]
        for name in ("packed", "dense")
    }
    end_to_end = total["dense"] / max(total["packed"], 1e-12)
    memory_reduction = dense_equivalent / max(packed_bytes, 1)
    row = {
        "nodes": n,
        "edges": graph_packed.num_edges,
        "k": k,
        "events": events,
        "flush": flush,
        "repair_flushes": counts["repair"],
        "churn_flushes": counts["churn"],
        "drift": drift,
        "samples": samples,
        "world_state_budget": budget,
        "repair_packed_seconds": round(elapsed["repair"]["packed"], 6),
        "repair_dense_seconds": round(elapsed["repair"]["dense"], 6),
        "repair_speedup_vs_dense": round(repair_speedup, 2),
        "total_packed_seconds": round(total["packed"], 6),
        "total_dense_seconds": round(total["dense"], 6),
        "end_to_end_speedup_vs_dense": round(end_to_end, 2),
        "worlds_repaired_packed": repaired["packed"],
        "worlds_repaired_dense": repaired["dense"],
        "packed_state_bytes": packed_bytes,
        "dense_state_bytes_needed": dense_equivalent,
        "memory_reduction": round(memory_reduction, 2),
    }
    print(
        f"streaming n={n:>7} seed={seed}  repair "
        f"{elapsed['repair']['dense']:.3f}s -> "
        f"{elapsed['repair']['packed']:.3f}s ({repair_speedup:.1f}x, "
        f"{counts['repair']}/{counts['repair'] + counts['churn']} flushes)  "
        f"end-to-end {end_to_end:.1f}x  "
        f"memory {dense_equivalent / 1e6:.1f}MB -> "
        f"{packed_bytes / 1e6:.2f}MB ({memory_reduction:.1f}x)"
    )
    return row


def run(args: argparse.Namespace) -> dict:
    if args.quick:
        one_shot_sizes = [2000]
        stream_n, stream_events, repeats = 5000, 80, 3
        stream_seeds = [args.seed]
        mode = "quick"
    else:
        one_shot_sizes = [5000, 20000, 60000]
        stream_n, stream_events, repeats = 50_000, 240, 9
        stream_seeds = [args.seed, args.seed + 4, args.seed + 10]
        mode = "full"
    if args.sizes:
        one_shot_sizes = args.sizes
    if args.stream_nodes:
        stream_n = args.stream_nodes
    if args.events:
        stream_events = args.events
    one_shot = bench_one_shot(one_shot_sizes, args.k, args.seed, repeats)
    streaming = [
        bench_streaming_repair(
            stream_n, args.k, stream_events, args.drift, stream_seed
        )
        for stream_seed in stream_seeds
    ]
    aggregate = {
        "repair_speedup_vs_dense": round(
            sum(row["repair_dense_seconds"] for row in streaming)
            / max(
                sum(row["repair_packed_seconds"] for row in streaming), 1e-12
            ),
            2,
        ),
        "end_to_end_speedup_vs_dense": round(
            sum(row["total_dense_seconds"] for row in streaming)
            / max(sum(row["total_packed_seconds"] for row in streaming), 1e-12),
            2,
        ),
        "memory_reduction": round(
            sum(row["dense_state_bytes_needed"] for row in streaming)
            / max(sum(row["packed_state_bytes"] for row in streaming), 1),
            2,
        ),
    }
    print(
        f"aggregate over {len(streaming)} streams: "
        f"repair {aggregate['repair_speedup_vs_dense']}x, "
        f"end-to-end {aggregate['end_to_end_speedup_vs_dense']}x, "
        f"memory {aggregate['memory_reduction']}x"
    )
    report = {
        "benchmark": "indexed_engine_scaleout",
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "mode": mode,
        "seed": args.seed,
        "edge_factor": EDGE_FACTOR,
        "one_shot": one_shot,
        "streaming_repair": streaming,
        "streaming_aggregate": aggregate,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small graphs / few events so CI can smoke-test in seconds",
    )
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=None,
        help="one-shot node counts to sweep",
    )
    parser.add_argument(
        "--stream-nodes", type=int, default=None,
        help="streaming-repair graph size (default: 50000 full / 5000 quick)",
    )
    parser.add_argument("--k", type=int, default=10, help="answer size")
    parser.add_argument(
        "--events", type=int, default=None, help="patches to replay"
    )
    parser.add_argument(
        "--drift", type=float, default=0.1,
        help="std-dev of the per-patch probability drift",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help=f"JSON report path (default: {DEFAULT_OUTPUT})",
    )
    run(parser.parse_args(argv))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
