"""Benchmark suite for the reproduction.

Importable as a package so individual benchmarks can be run as modules,
e.g. ``python -m benchmarks.bench_sampler_speed --quick``.
"""
