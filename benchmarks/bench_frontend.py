"""Overload benchmark: the SLO-enforced front end past saturation.

Binds a real :class:`~repro.frontend.server.FrontendServer` (asyncio
HTTP/JSON, bearer auth, admission control, deadline enforcement) over a
multi-tenant :class:`~repro.serving.service.RiskService`, then drives
it with an **open-loop** load generator: request arrivals follow a
fixed schedule regardless of completions, so queueing pressure is real
— a saturated server falls behind instead of silently slowing the
generator down.

Three phases:

1. **calibrate** — closed-loop wire queries measure the full-query
   service time; saturation throughput is
   ``max_inflight / mean_service_time``.
2. **overload** — open-loop arrivals at ``overload_factor`` (default
   2x) times the calibrated saturation, spread over many tenants, with
   a slice of ingestion updates mixed in.  Every response is recorded:
   full answers, degraded bounds-only answers (predicted and deadline),
   429 rate/capacity/backlog rejections.
3. **reconcile** — the gates.  Zero transport errors (the server never
   crashed a connection), every client request reached a terminal
   outcome, the server's own counters satisfy
   ``received == accounted``, the p99 server-side latency of *admitted
   full answers* meets the SLO, and every degraded answer passes a
   bounds-consistency check (each reported node's upper bound clears
   the k-th lower bound).

Results land in ``BENCH_frontend.json`` at the repo root.

Usage
-----
::

    python -m benchmarks.bench_frontend            # 1000 tenants
    python -m benchmarks.bench_frontend --quick    # CI smoke (seconds)
    python -m benchmarks.bench_frontend --tenants 200 --slo-ms 100
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import threading
import time
from datetime import datetime, timezone
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent

try:  # pragma: no cover - import plumbing
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(_REPO_ROOT / "src"))

import numpy as np

from repro.core.graph import UncertainGraph
from repro.datasets.powerlaw import directed_powerlaw_edges
from repro.frontend.protocol import send_request
from repro.frontend.server import FrontendServer
from repro.serving import RiskService

DEFAULT_OUTPUT = _REPO_ROOT / "BENCH_frontend.json"

EDGE_FACTOR = 3


def build_powerlaw_graph(n: int, seed: int) -> UncertainGraph:
    """Power-law topology with guarantee-style Beta(2, 4) edge strengths."""
    rng = np.random.default_rng(seed)
    src, dst = directed_powerlaw_edges(n, EDGE_FACTOR * n, seed=rng)
    return UncertainGraph.from_arrays(
        self_risks=rng.random(n) * 0.2,
        edge_src=src,
        edge_dst=dst,
        edge_probs=np.clip(rng.beta(2.0, 4.0, src.size), 0.01, 0.95),
    )


class ServerThread:
    """A FrontendServer on its own event-loop thread (the generator is
    a separate asyncio program, like a real remote client)."""

    def __init__(self, service: RiskService, tokens: dict, **kwargs) -> None:
        kwargs.setdefault("flush_interval", 0.01)
        self.server = FrontendServer(service, tokens, **kwargs)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            await self.server.start()
            self._started.set()
            await self._stop.wait()
            await self.server.stop()

        asyncio.run(main())

    def __enter__(self) -> FrontendServer:
        self._thread.start()
        if not self._started.wait(60):
            raise RuntimeError("front end failed to start")
        return self.server

    def __exit__(self, *exc_info) -> None:
        assert self._loop is not None and self._stop is not None
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(60)


async def _wire_call(
    host: str, port: int, method: str, path: str, payload, token: str
):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        return await send_request(
            reader,
            writer,
            method,
            path,
            payload,
            headers={"Authorization": f"Bearer {token}"},
        )
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass


def calibrate(
    host: str,
    port: int,
    tenants: list[str],
    tokens: dict,
    labels: list,
    samples: int,
    seed: int,
) -> dict:
    """Closed-loop update+query pairs; returns the full-path service time.

    Each sample submits one update before querying, so the measured
    cost includes the incremental repair a live stream forces — the
    overload phase's queries pay exactly that, not the clean-refresh
    fast path a quiet tenant would see.
    """
    rng = random.Random(seed)

    async def scenario() -> list[float]:
        latencies: list[float] = []
        for index in range(samples):
            tenant = tenants[index % len(tenants)]
            update = await _wire_call(
                host,
                port,
                "POST",
                "/v1/update",
                {
                    "tenant": tenant,
                    "event": {
                        "type": "self_risk",
                        "label": labels[rng.randrange(len(labels))],
                        "value": round(rng.random() * 0.9, 6),
                    },
                },
                tokens[tenant],
            )
            assert update.status == 202, update
            response = await _wire_call(
                host,
                port,
                "POST",
                "/v1/query",
                # A generous budget keeps calibration on the full path.
                {"tenant": tenant, "budget_ms": 60_000.0},
                tokens[tenant],
            )
            assert response.status == 200, response
            assert not response.payload["degraded"]
            latencies.append(
                float(response.headers["x-elapsed-ms"]) / 1e3
            )
        return latencies

    latencies = asyncio.run(scenario())
    return {
        "samples": samples,
        "mean_seconds": float(np.mean(latencies)),
        "p99_ms": round(float(np.percentile(latencies, 99)) * 1e3, 3)
        if latencies
        else 0.0,
    }


def open_loop(
    host: str,
    port: int,
    tenants: list[str],
    tokens: dict,
    labels: list,
    *,
    offered_rps: float,
    duration: float,
    slo_ms: float,
    update_fraction: float,
    seed: int,
) -> list[dict]:
    """Fire requests on a fixed schedule; record every terminal outcome."""
    rng = random.Random(seed)
    total = max(1, int(offered_rps * duration))
    interval = 1.0 / offered_rps
    plan = []
    for index in range(total):
        tenant = tenants[rng.randrange(len(tenants))]
        if rng.random() < update_fraction:
            payload = {
                "tenant": tenant,
                "event": {
                    "type": "self_risk",
                    "label": labels[rng.randrange(len(labels))],
                    "value": round(rng.random() * 0.9, 6),
                },
            }
            plan.append((index * interval, tenant, "/v1/update", payload))
        else:
            payload = {"tenant": tenant, "budget_ms": slo_ms}
            plan.append((index * interval, tenant, "/v1/query", payload))

    async def scenario() -> list[dict]:
        loop = asyncio.get_running_loop()
        epoch = loop.time()
        results: list[dict] = []

        async def one(when: float, tenant: str, path: str, payload) -> None:
            delay = epoch + when - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            started = time.perf_counter()
            try:
                response = await _wire_call(
                    host, port, "POST", path, payload, tokens[tenant]
                )
            except (ConnectionError, OSError, asyncio.IncompleteReadError) as error:
                results.append(
                    {
                        "path": path,
                        "transport_error": f"{type(error).__name__}: {error}",
                    }
                )
                return
            record = {
                "path": path,
                "status": response.status,
                "rtt_ms": (time.perf_counter() - started) * 1e3,
            }
            if response.status == 200 and path == "/v1/query":
                record["degraded"] = bool(response.payload["degraded"])
                record["degraded_reason"] = response.payload.get(
                    "degraded_reason"
                )
                record["server_ms"] = float(
                    response.headers["x-elapsed-ms"]
                )
                if record["degraded"]:
                    record["details"] = response.payload["result"]["details"]
            elif response.status == 429:
                record["reject_reason"] = response.payload["error"]
                record["retry_after"] = float(
                    response.headers.get("retry-after", "0")
                )
            results.append(record)

        await asyncio.gather(
            *(one(*entry) for entry in plan), return_exceptions=False
        )
        return results

    return asyncio.run(scenario())


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    return round(float(np.percentile(np.asarray(values), q)), 3)


def summarise(outcomes: list[dict], slo_ms: float) -> dict:
    """Classify every recorded outcome and check the degraded answers."""
    queries = [o for o in outcomes if o.get("path") == "/v1/query"]
    updates = [o for o in outcomes if o.get("path") == "/v1/update"]
    transport_errors = [o for o in outcomes if "transport_error" in o]
    full = [
        o
        for o in queries
        if o.get("status") == 200 and o.get("degraded") is False
    ]
    degraded = [
        o
        for o in queries
        if o.get("status") == 200 and o.get("degraded") is True
    ]
    rejected = [o for o in outcomes if o.get("status") == 429]
    server_errors = [
        o
        for o in outcomes
        if "status" in o and o["status"] not in (200, 202, 429)
    ]
    bounds_checked = 0
    bounds_violations = 0
    for outcome in degraded:
        details = outcome.get("details") or {}
        threshold = details.get("threshold_lower")
        uppers = details.get("bounds_upper")
        if threshold is None or uppers is None:
            continue
        bounds_checked += 1
        if any(upper < threshold - 1e-9 for upper in uppers):
            bounds_violations += 1
    degraded_reasons: dict[str, int] = {}
    for outcome in degraded:
        reason = outcome.get("degraded_reason") or "flagged"
        degraded_reasons[reason] = degraded_reasons.get(reason, 0) + 1
    return {
        "requests": len(outcomes),
        "queries": len(queries),
        "updates": len(updates),
        "updates_accepted": sum(
            1 for o in updates if o.get("status") == 202
        ),
        "full_answers": len(full),
        "degraded_answers": len(degraded),
        "degraded_reasons": degraded_reasons,
        "rejected_429": len(rejected),
        "server_errors": len(server_errors),
        "transport_errors": len(transport_errors),
        "admitted_p50_ms": _percentile(
            [o["server_ms"] for o in full], 50
        ),
        "admitted_p99_ms": _percentile(
            [o["server_ms"] for o in full], 99
        ),
        "degraded_p99_ms": _percentile(
            [o["server_ms"] for o in degraded], 99
        ),
        "slo_ms": slo_ms,
        "bounds_checked": bounds_checked,
        "bounds_violations": bounds_violations,
    }


def run(
    *,
    nodes: int,
    tenants: int,
    k: int,
    slo_ms: float,
    max_inflight: int,
    overload_factor: float,
    duration: float,
    update_fraction: float,
    max_offered_rps: float,
    seed: int,
    output: Path,
    bench_mode: str,
) -> dict:
    graph = build_powerlaw_graph(nodes, seed)
    tenant_ids = [f"portfolio-{i:04d}" for i in range(tenants)]
    tokens = {tenant: f"token-{tenant}" for tenant in tenant_ids}
    labels = [graph.label(i) for i in range(graph.num_nodes)]
    service = RiskService(
        graph,
        mode="thread",
        monitor_defaults={"seed": seed, "engine": "indexed"},
    )
    for tenant in tenant_ids:
        service.register_tenant(tenant, k)
    try:
        with ServerThread(
            service,
            tokens,
            slo_ms=slo_ms,
            max_inflight=max_inflight,
            # Per-tenant buckets stay out of the way: this benchmark
            # saturates the *compute*, so shedding should come from the
            # in-flight cap and deadlines, not a configured trickle.
            rate_limit=1_000.0,
        ) as server:
            host, port = "127.0.0.1", server.port
            calibration = calibrate(
                host,
                port,
                tenant_ids[: min(len(tenant_ids), 16)],
                tokens,
                labels,
                samples=12,
                seed=seed + 2,
            )
            saturation_rps = max_inflight / max(
                calibration["mean_seconds"], 1e-6
            )
            offered_rps = min(
                max_offered_rps, overload_factor * saturation_rps
            )
            effective_factor = offered_rps / saturation_rps
            print(
                f"calibrated: mean full query "
                f"{calibration['mean_seconds'] * 1e3:.2f}ms -> saturation "
                f"~{saturation_rps:.0f} rps; offering {offered_rps:.0f} rps "
                f"({effective_factor:.2f}x) for {duration:.0f}s"
            )
            outcomes = open_loop(
                host,
                port,
                tenant_ids,
                tokens,
                labels,
                offered_rps=offered_rps,
                duration=duration,
                slo_ms=slo_ms,
                update_fraction=update_fraction,
                seed=seed + 1,
            )
            # Liveness after overload, then the server's own ledger.
            async def check_health():
                response = await _wire_call(
                    host, port, "GET", "/healthz", None, "none"
                )
                return response.status == 200

            alive = asyncio.run(check_health())
            stats = server._stats_payload()
    finally:
        service.close()

    summary = summarise(outcomes, slo_ms)
    frontend = stats["frontend"]
    gates = {
        "alive_after_overload": bool(alive),
        "zero_transport_errors": summary["transport_errors"] == 0,
        "zero_server_errors": summary["server_errors"] == 0,
        "all_requests_terminal": summary["requests"]
        == len(outcomes),
        "server_ledger_reconciles": stats["accounted"]
        == frontend["received"],
        "admitted_p99_within_slo": summary["admitted_p99_ms"]
        <= slo_ms,
        "degraded_bounds_consistent": summary["bounds_violations"] == 0,
    }
    row = {
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "tenants": tenants,
        "k": k,
        "max_inflight": max_inflight,
        "calibration": calibration,
        "saturation_rps": round(saturation_rps, 1),
        "offered_rps": round(offered_rps, 1),
        "overload_factor": round(effective_factor, 2),
        "duration_seconds": duration,
        "update_fraction": update_fraction,
        **summary,
        "server_stats": stats,
        "gates": gates,
    }
    print(
        f"overload: {summary['requests']} requests -> "
        f"{summary['full_answers']} full, "
        f"{summary['degraded_answers']} degraded, "
        f"{summary['rejected_429']} shed; admitted p50/p99 = "
        f"{summary['admitted_p50_ms']}/{summary['admitted_p99_ms']}ms "
        f"(SLO {slo_ms:.0f}ms); ledger "
        f"{stats['accounted']}/{frontend['received']}"
    )
    failed = [name for name, passed in gates.items() if not passed]
    if failed:
        raise AssertionError(
            f"front-end overload gates failed: {', '.join(failed)}"
        )
    report = {
        "benchmark": "slo_frontend_overload",
        "generated": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "mode": bench_mode,
        "seed": seed,
        "edge_factor": EDGE_FACTOR,
        "engine": "indexed",
        "results": [row],
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small graph / fewer tenants so CI can smoke-test in seconds",
    )
    parser.add_argument("--nodes", type=int, default=None,
                        help="graph size (default: 4000; quick: 800)")
    parser.add_argument("--tenants", type=int, default=None,
                        help="tenant count (default: 1000; quick: 100)")
    parser.add_argument("--k", type=int, default=10, help="answer size")
    parser.add_argument("--slo-ms", type=float, default=250.0,
                        help="per-query latency budget")
    parser.add_argument("--max-inflight", type=int, default=None,
                        help="full-query concurrency cap (default: 4; quick: 2)")
    parser.add_argument("--overload-factor", type=float, default=2.0,
                        help="offered load as a multiple of saturation")
    parser.add_argument("--duration", type=float, default=None,
                        help="overload phase length, seconds (default: 8; quick: 3)")
    parser.add_argument("--update-fraction", type=float, default=0.2,
                        help="slice of requests that are ingestion updates")
    parser.add_argument("--max-offered-rps", type=float, default=None,
                        help="generator ceiling (default: 600; quick: 300)")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"JSON report path (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)
    if args.quick:
        nodes = args.nodes or 800
        tenants = args.tenants or 100
        max_inflight = args.max_inflight or 2
        duration = args.duration or 3.0
        max_offered = args.max_offered_rps or 300.0
        bench_mode = "quick"
    else:
        nodes = args.nodes or 4_000
        tenants = args.tenants or 1_000
        max_inflight = args.max_inflight or 4
        duration = args.duration or 8.0
        max_offered = args.max_offered_rps or 600.0
        bench_mode = "full"
    run(
        nodes=nodes,
        tenants=tenants,
        k=args.k,
        slo_ms=args.slo_ms,
        max_inflight=max_inflight,
        overload_factor=args.overload_factor,
        duration=duration,
        update_fraction=args.update_fraction,
        max_offered_rps=max_offered,
        seed=args.seed,
        output=args.output,
        bench_mode=bench_mode,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
