"""Benchmark E-T2: regenerate Table 2 (dataset statistics).

Times the full dataset substrate (all eight generators + probability
assignment) and prints the paper-vs-generated statistics table.
"""

from __future__ import annotations

from repro.experiments.table2_datasets import run
from repro.utils.tables import render_table


def test_table2_generation(benchmark, bench_config):
    rows = benchmark.pedantic(run, args=(bench_config,), rounds=1, iterations=1)
    assert len(rows) == 8
    print()
    print(render_table(rows, title="Table 2 — paper vs generated statistics"))
