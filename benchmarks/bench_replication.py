"""Replication benchmark: shipping lag, failover speed, zero-loss ledger.

Three questions, answered on one shared power-law guarantee network:

* **How far behind does a WAL-shipped replica run?**  Every flushed
  batch on the durable primary is timed from "durable on the primary"
  to "applied on every replica" (the shipper is stepped synchronously,
  so the number is pure shipping + verify + apply cost, no poll
  jitter).  Reported as per-batch replication lag p50/p99.
* **Is failover actually faster than local crash recovery?**  After the
  primary "crashes" (resources released, no graceful close), the
  benchmark times two independent ways of getting an answering service
  back: promoting the most-caught-up replica (warm pool, epoch fence,
  un-acked suffix replay) versus a fresh ``RiskService`` recovering
  from a copy of the dead primary's own WAL directory.  The gated
  ratio is failover over local recovery — the replicated path must not
  be slower than 2x the thing it replaces.
* **Did anything get lost?**  A ledger counts events submitted, batches
  flushed, and the replica-applied watermark; the run also demands
  bit-identical answers from the primary (pre-crash), every replica,
  the recovered service, and the promoted service before any timing is
  reported.  ``zero_loss`` is only true when the watermarks and all
  answers agree.

Results land in ``BENCH_replication.json`` at the repo root.

Usage
-----
::

    python -m benchmarks.bench_replication           # full run
    python -m benchmarks.bench_replication --quick   # CI smoke (seconds)
"""

from __future__ import annotations

import argparse
import json
import shutil
import statistics
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent

try:  # pragma: no cover - import plumbing
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(_REPO_ROOT / "src"))
if str(_REPO_ROOT) not in sys.path:  # pragma: no cover
    sys.path.insert(0, str(_REPO_ROOT))

from benchmarks.bench_durability import build_powerlaw_graph, build_workload
from repro.replication import (
    EpochStore,
    FailoverCoordinator,
    LocalSource,
    ReplicaService,
    ReplicationHub,
    WalShipper,
)
from repro.serving.service import RiskService

DEFAULT_OUTPUT = _REPO_ROOT / "BENCH_replication.json"


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


def _abandon(service: RiskService) -> None:
    """Release the service's resources the way a crash would: the WAL
    stays exactly as written, no graceful close, no final snapshot."""
    service._wal.close()
    service._pool.shutdown()
    service._closed = True


def _answers(service, tenants: int) -> dict:
    return {
        tenant: service.query_topk(tenant) for tenant in range(tenants)
    }


def _assert_identical(reference: dict, candidate: dict, what: str) -> None:
    diverged = [
        tenant
        for tenant in reference
        if not reference[tenant].same_answer(candidate[tenant])
    ]
    if diverged:
        raise AssertionError(
            f"{what}: tenants {diverged} diverged from the reference — "
            "timings would be meaningless"
        )


def run(
    n: int,
    tenants: int,
    k: int,
    rounds: int,
    events_per_round: int,
    replicas: int,
    drift: float,
    seed: int,
    output: Path,
    bench_mode: str,
) -> dict:
    graph = build_powerlaw_graph(n, seed)
    workload = build_workload(
        graph, tenants, rounds, events_per_round, drift, seed
    )
    total_events = tenants * rounds * events_per_round
    scratch = Path(tempfile.mkdtemp(prefix="bench-replication-"))
    monitor_defaults = {"seed": seed, "engine": "indexed"}
    promoted = None
    recovered = None
    try:
        primary_dir = scratch / "primary"
        primary = RiskService(
            graph,
            mode="serial",
            monitor_defaults=monitor_defaults,
            wal_dir=primary_dir,
            fsync="flush",
            epoch_store=EpochStore(scratch / "epoch.json"),
            node_id="primary",
        )
        for tenant in range(tenants):
            primary.register_tenant(tenant, k)
        primary.snapshot(include_topk=True)  # warm start, outside timings
        hub = ReplicationHub(primary)
        fleet = {}
        for index in range(replicas):
            node = f"r{index + 1}"
            replica = ReplicaService(
                graph,
                scratch / node,
                node_id=node,
                mode="serial",
                monitor_defaults=monitor_defaults,
                fsync="flush",
            )
            fleet[node] = (replica, WalShipper(LocalSource(hub), replica))

        # --- shipping lag -------------------------------------------------
        # Per batch: make it durable on the primary, then step every
        # shipper until the batch is applied everywhere.  Synchronous
        # stepping makes the latency a property of the pipeline, not of
        # a poll interval.
        lags: list[float] = []
        for round_index in range(rounds):
            for tenant in range(tenants):
                for event in workload[tenant][round_index]:
                    primary.submit_update(tenant, event)
            primary.flush()
            target = primary.durable_seq
            started = time.perf_counter()
            for replica, shipper in fleet.values():
                while replica.applied_seq < target:
                    shipper.step()
            lags.append(time.perf_counter() - started)
        primary_answers = _answers(primary, tenants)
        for node, (replica, _) in fleet.items():
            _assert_identical(
                primary_answers, _answers(replica, tenants),
                f"replica {node}",
            )
        acked = dict(hub.acked())
        applied = {
            node: replica.applied_seq for node, (replica, _) in fleet.items()
        }
        durable_seq = primary.durable_seq
        bytes_shipped = {
            node: shipper.stats["bytes_shipped"]
            for node, (_, shipper) in fleet.items()
        }

        # --- crash: failover vs local recovery ----------------------------
        _abandon(primary)
        # Local recovery baseline runs on a copy of the dead primary's
        # directory so promotion (below) sees the cluster untouched.
        recovery_dir = scratch / "recovery"
        shutil.copytree(primary_dir, recovery_dir)
        started = time.perf_counter()
        recovered = RiskService(
            graph,
            mode="serial",
            monitor_defaults=monitor_defaults,
            wal_dir=recovery_dir,
        )
        recovered_answers = _answers(recovered, tenants)
        recovery_seconds = time.perf_counter() - started

        coordinator = FailoverCoordinator(EpochStore(scratch / "epoch.json"))
        started = time.perf_counter()
        winner, promoted = coordinator.promote(
            {node: replica for node, (replica, _) in fleet.items()},
            fsync="flush",
        )
        promoted_answers = _answers(promoted, tenants)
        failover_seconds = time.perf_counter() - started

        _assert_identical(primary_answers, recovered_answers, "recovery")
        _assert_identical(primary_answers, promoted_answers, "failover")
        zero_loss = (
            all(seq == durable_seq for seq in applied.values())
            and promoted.durable_seq >= durable_seq
        )
    finally:
        if recovered is not None:
            _abandon(recovered)
        if promoted is not None:
            _abandon(promoted)
        shutil.rmtree(scratch, ignore_errors=True)

    row = {
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "tenants": tenants,
        "k": k,
        "rounds": rounds,
        "events_per_round": events_per_round,
        "total_events": total_events,
        "replicas": replicas,
        "drift": drift,
        "lag_p50_ms": round(_percentile(lags, 0.50) * 1e3, 3),
        "lag_p99_ms": round(_percentile(lags, 0.99) * 1e3, 3),
        "lag_mean_ms": round(statistics.fmean(lags) * 1e3, 3),
        "bytes_shipped": bytes_shipped,
        "failover_winner": winner,
        "failover_epoch": promoted.epoch,
        "failover_seconds": round(failover_seconds, 6),
        "recovery_seconds": round(recovery_seconds, 6),
        "failover_vs_recovery_ratio": round(
            failover_seconds / max(recovery_seconds, 1e-12), 4
        ),
        "ledger": {
            "events_submitted": total_events,
            "batches_flushed": rounds,
            "primary_durable_seq": durable_seq,
            "replica_applied_seq": applied,
            "acked_seq": acked,
            "zero_loss": zero_loss,
        },
        "verified_tenants": tenants,
    }
    print(
        f"n={row['nodes']:>6}  tenants={tenants}  replicas={replicas}  "
        f"events={total_events}  lag p50={row['lag_p50_ms']:.1f}ms "
        f"p99={row['lag_p99_ms']:.1f}ms  "
        f"failover={failover_seconds:.3f}s vs "
        f"recovery={recovery_seconds:.3f}s "
        f"({row['failover_vs_recovery_ratio']:.2f}x)  "
        f"zero-loss={zero_loss}  verified={tenants} tenants"
    )
    report = {
        "benchmark": "replicated_serving",
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "mode": bench_mode,
        "seed": seed,
        "engine": "indexed",
        "results": [row],
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small graph / few tenants so CI can smoke-test in seconds",
    )
    parser.add_argument("--nodes", type=int, default=None,
                        help="graph size (default: 5000; quick: 1000)")
    parser.add_argument("--tenants", type=int, default=None,
                        help="tenant monitors (default: 12; quick: 4)")
    parser.add_argument("--k", type=int, default=10, help="answer size")
    parser.add_argument("--rounds", type=int, default=None,
                        help="flush rounds (default: 12; quick: 8)")
    parser.add_argument("--events-per-round", type=int, default=None,
                        help="events per tenant per round (default: 5)")
    parser.add_argument("--replicas", type=int, default=2,
                        help="WAL-shipped replicas (default: 2)")
    parser.add_argument("--drift", type=float, default=0.1,
                        help="std-dev of the per-patch probability drift")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"JSON report path (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)
    if args.quick:
        nodes = args.nodes or 1_000
        tenants = args.tenants or 4
        rounds = args.rounds or 8
        events_per_round = args.events_per_round or 4
        bench_mode = "quick"
    else:
        nodes = args.nodes or 5_000
        tenants = args.tenants or 12
        rounds = args.rounds or 12
        events_per_round = args.events_per_round or 5
        bench_mode = "full"
    if args.replicas < 1:
        parser.error("--replicas must be >= 1")
    run(
        nodes,
        tenants,
        args.k,
        rounds,
        events_per_round,
        args.replicas,
        args.drift,
        args.seed,
        args.output,
        bench_mode,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
