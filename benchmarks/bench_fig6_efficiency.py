"""Benchmark E-F6: regenerate Figure 6 (efficiency of the five methods).

Besides the end-to-end harness timing, each method is also benchmarked
individually on one representative dataset so pytest-benchmark's stats
capture the runtime ordering N > SN > SR > BSR > BSRBK directly.
"""

from __future__ import annotations

import pytest

from repro.algorithms.registry import ALL_METHODS, make_detector
from repro.datasets.registry import load_dataset
from repro.experiments.fig6_efficiency import run, speedup_summary
from repro.utils.tables import render_table


def test_fig6_full_harness(benchmark, bench_config):
    rows = benchmark.pedantic(
        run, args=(bench_config,), rounds=1, iterations=1
    )
    assert rows, "harness produced no rows"
    print()
    print(render_table(rows, title="Figure 6 — per (dataset, method, k)"))
    summary = speedup_summary(rows)
    print()
    print(render_table(summary, title="Speedup over N (mean across k)"))
    # Shape check on the engine-neutral work metric (per-world node draws
    # + edge examinations): the paper's ordering N > SN > SR > BSR and
    # BSR >= BSRBK must hold on average across datasets, and BSRBK's
    # saving over N must be large (the paper's headline is up to 100x).
    work: dict[str, list[float]] = {}
    for row in rows:
        work.setdefault(str(row["method"]), []).append(float(row["work"]))
    mean_work = {m: sum(v) / len(v) for m, v in work.items()}
    assert mean_work["N"] > mean_work["SN"] > mean_work["SR"] > mean_work["BSR"]
    assert mean_work["BSR"] >= mean_work["BSRBK"]
    assert mean_work["N"] / mean_work["BSRBK"] > 10.0


@pytest.mark.parametrize("method", ALL_METHODS)
def test_fig6_method_on_guarantee(benchmark, bench_config, method):
    loaded = load_dataset("guarantee", seed=bench_config.seed)
    k = loaded.k_for_percent(5.0)
    detector = make_detector(
        method,
        samples=bench_config.naive_samples,
        epsilon=bench_config.epsilon,
        delta=bench_config.delta,
        bound_order=bench_config.bound_order,
        lower_order=bench_config.bound_order,
        upper_order=bench_config.bound_order,
        bk=bench_config.bk,
        seed=bench_config.seed,
    )
    result = benchmark(detector.detect, loaded.graph, k)
    assert len(result.nodes) == k
