"""Wall-clock benchmark: incremental TopKMonitor vs fresh BSR detection.

Replays a stream of single-entity monitoring patches (re-scored
self-risks / re-assessed guarantee strengths, Gaussian drift — the
month-over-month workload of the paper's §5 deployment) against a
:class:`~repro.streaming.monitor.TopKMonitor` on directed power-law
graphs, timing each incremental refresh against a from-scratch
:class:`~repro.algorithms.bsr.BoundedSampleReverseDetector` run on the
same patched graph.  Every step's incremental answer is checked
bit-for-bit against the fresh detection before its timing counts, so the
reported speedup is for *exact* maintenance, not an approximation.
Results land in ``BENCH_streaming.json`` at the repo root.

Usage
-----
::

    python -m benchmarks.bench_streaming            # full sweep (5k nodes)
    python -m benchmarks.bench_streaming --quick    # CI smoke (seconds)
    python -m benchmarks.bench_streaming --sizes 5000 10000 --events 60

The script needs no installed package: it falls back to adding ``src/``
to ``sys.path`` when ``repro`` is not importable.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent

try:  # pragma: no cover - import plumbing
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(_REPO_ROOT / "src"))

import numpy as np

from repro.algorithms.bsr import BoundedSampleReverseDetector
from repro.core.graph import UncertainGraph
from repro.datasets.powerlaw import directed_powerlaw_edges
from repro.streaming.monitor import TopKMonitor
from repro.streaming.replay import random_patch_stream

DEFAULT_OUTPUT = _REPO_ROOT / "BENCH_streaming.json"

#: ~3 edges per node matches the sparsity of the paper's Table-2 graphs.
EDGE_FACTOR = 3


def build_powerlaw_graph(n: int, seed: int) -> UncertainGraph:
    """Power-law topology with guarantee-style Beta(2, 4) edge strengths."""
    rng = np.random.default_rng(seed)
    src, dst = directed_powerlaw_edges(n, EDGE_FACTOR * n, seed=rng)
    return UncertainGraph.from_arrays(
        self_risks=rng.random(n) * 0.2,
        edge_src=src,
        edge_dst=dst,
        edge_probs=np.clip(rng.beta(2.0, 4.0, src.size), 0.01, 0.95),
    )


def bench_one_size(
    n: int, k: int, events: int, drift: float, seed: int
) -> dict:
    """Replay one patch stream; returns the timing/telemetry row."""
    graph = build_powerlaw_graph(n, seed)
    monitor = TopKMonitor(graph, k, seed=seed, engine="indexed")
    started = time.perf_counter()
    monitor.top_k()  # initial build — a fresh detection, timed separately
    initial_seconds = time.perf_counter() - started
    incremental_seconds = fresh_seconds = 0.0
    sampling_modes: dict[str, int] = {}
    mismatches = 0
    for event in random_patch_stream(
        graph, events, seed=seed + 1, drift=drift
    ):
        monitor.apply([event])
        started = time.perf_counter()
        result = monitor.top_k()
        incremental_seconds += time.perf_counter() - started
        report = monitor.last_report
        sampling_modes[report.sampling] = (
            sampling_modes.get(report.sampling, 0) + 1
        )
        detector = BoundedSampleReverseDetector(seed=seed, engine="indexed")
        started = time.perf_counter()
        fresh = detector.detect(graph, k)
        fresh_seconds += time.perf_counter() - started
        if not result.same_answer(fresh):
            mismatches += 1
    if mismatches:
        raise AssertionError(
            f"{mismatches}/{events} incremental answers diverged from "
            "fresh detection — the speedup would be meaningless"
        )
    return {
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "k": k,
        "events": events,
        "drift": drift,
        "initial_build_seconds": round(initial_seconds, 6),
        "incremental_seconds": round(incremental_seconds, 6),
        "fresh_seconds": round(fresh_seconds, 6),
        "incremental_speedup_vs_fresh": round(
            fresh_seconds / max(incremental_seconds, 1e-12), 2
        ),
        "sampling_modes": sampling_modes,
        "worlds_repaired": monitor.stats["worlds_repaired"],
        "worlds_resampled": monitor.stats["worlds_resampled"],
    }


def run(
    sizes: list[int],
    k: int,
    events: int,
    drift: float,
    seed: int,
    output: Path,
    mode: str,
) -> dict:
    """Run the sweep, print a table, and write the JSON report."""
    results = []
    for n in sizes:
        row = bench_one_size(n, k, events, drift, seed)
        results.append(row)
        print(
            f"n={row['nodes']:>7}  m={row['edges']:>8}  k={k}  "
            f"events={events}  "
            f"incremental={row['incremental_seconds']:.3f}s  "
            f"fresh={row['fresh_seconds']:.3f}s  "
            f"speedup={row['incremental_speedup_vs_fresh']:.1f}x  "
            f"modes={row['sampling_modes']}"
        )
    report = {
        "benchmark": "streaming_topk_monitor",
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "mode": mode,
        "seed": seed,
        "edge_factor": EDGE_FACTOR,
        "engine": "indexed",
        "results": results,
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny graph / few events so CI can smoke-test in seconds",
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=None,
        help="node counts to sweep (default: 5000)",
    )
    parser.add_argument("--k", type=int, default=10, help="answer size")
    parser.add_argument(
        "--events", type=int, default=None, help="patches to replay"
    )
    parser.add_argument(
        "--drift",
        type=float,
        default=0.1,
        help="std-dev of the per-patch probability drift",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"JSON report path (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)
    if args.quick:
        sizes = args.sizes or [2000]
        events = args.events or 12
        mode = "quick"
    else:
        sizes = args.sizes or [5000]
        events = args.events or 40
        mode = "full"
    run(sizes, args.k, events, args.drift, args.seed, args.output, mode)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
