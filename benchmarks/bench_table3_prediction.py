"""Benchmark E-T3: regenerate Table 3 (default-prediction case study).

Trains every baseline on the simulated 2012 snapshot and scores
2014-2016.  Expected shape: BSR >= BSRBK on top, graph-aware ML (HGAR,
INDDP) above feature-only ML, structure-only baselines at the bottom.
"""

from __future__ import annotations

from repro.experiments.table3_prediction import METHOD_ORDER, run
from repro.utils.tables import render_table


def test_table3_prediction(benchmark, bench_config):
    rows = benchmark.pedantic(run, args=(bench_config,), rounds=1, iterations=1)
    assert [row["method"] for row in rows] == list(METHOD_ORDER)
    print()
    print(render_table(rows, title="Table 3 — default prediction AUC"))
    by_method = {row["method"]: row for row in rows}
    years = [key for key in rows[0] if key.startswith("AUC")]

    def best(method: str) -> float:
        return max(float(by_method[method][year]) for year in years)

    structural_best = max(
        best("Betweenness"), best("PageRank"), best("K-core"), best("InfMax")
    )
    ml_best = max(
        best("Wide"), best("Wide & Deep"), best("GBDT"),
        best("CNN-max"), best("crDNN"),
    )
    # The paper's ordering at the block level.
    assert best("BSR") > structural_best
    assert best("BSRBK") > structural_best
    assert best("BSR") > ml_best - 0.02  # contagion-aware at/near the top
    assert ml_best > structural_best  # features beat raw structure
