"""Durability benchmark: WAL ingestion overhead and crash-recovery speed.

Two questions, answered on one shared power-law guarantee network:

* **What does the write-ahead log cost at ingestion time?**  The same
  per-tenant workload is replayed through a plain in-memory
  :class:`~repro.serving.service.RiskService` and through durable ones
  (``fsync="flush"`` — the default one-fsync-per-drain-cycle policy —
  and ``fsync="always"`` for reference).  The gated overhead ratio is
  durable-flush wall time over in-memory wall time.
* **How much faster is snapshot + WAL replay than recomputing?**  The
  durable run takes a rotated snapshot late in the stream and then
  "crashes" (resources released, no graceful close — so a WAL suffix
  is left to replay).  Recovery time is a fresh
  ``RiskService(wal_dir=...)`` construction plus one answer per tenant;
  the baseline is rebuilding the same serving state from scratch —
  fresh monitors replaying the full event history.

Every timed number is guarded by bit-identity: the in-memory, durable,
recovered, and rebuilt-from-scratch answers must all be
``same_answer``-equal before any ratio is reported.  Results land in
``BENCH_durability.json`` at the repo root.

Usage
-----
::

    python -m benchmarks.bench_durability           # full run
    python -m benchmarks.bench_durability --quick   # CI smoke (seconds)
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent

try:  # pragma: no cover - import plumbing
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(_REPO_ROOT / "src"))

import numpy as np

from repro.core.graph import UncertainGraph
from repro.datasets.powerlaw import directed_powerlaw_edges
from repro.serving.service import RiskService
from repro.streaming.events import UpdateEvent, apply_event
from repro.streaming.replay import random_patch_stream

DEFAULT_OUTPUT = _REPO_ROOT / "BENCH_durability.json"
EDGE_FACTOR = 3


def build_powerlaw_graph(n: int, seed: int) -> UncertainGraph:
    """Power-law topology with guarantee-style Beta(2, 4) edge strengths."""
    rng = np.random.default_rng(seed)
    src, dst = directed_powerlaw_edges(n, EDGE_FACTOR * n, seed=rng)
    return UncertainGraph.from_arrays(
        self_risks=rng.random(n) * 0.2,
        edge_src=src,
        edge_dst=dst,
        edge_probs=np.clip(rng.beta(2.0, 4.0, src.size), 0.01, 0.95),
    )


def build_workload(
    graph: UncertainGraph,
    tenants: int,
    rounds: int,
    events_per_round: int,
    drift: float,
    seed: int,
) -> list[list[list[UpdateEvent]]]:
    """Per-tenant, per-round event batches (drift compounds per tenant)."""
    workload: list[list[list[UpdateEvent]]] = []
    for tenant in range(tenants):
        shadow = graph.copy()
        stream = random_patch_stream(
            shadow,
            rounds * events_per_round,
            seed=seed + 1_000 + tenant,
            drift=drift,
        )
        tenant_rounds: list[list[UpdateEvent]] = []
        for _ in range(rounds):
            batch: list[UpdateEvent] = []
            for _ in range(events_per_round):
                event = next(stream)
                apply_event(shadow, event)
                batch.append(event)
            tenant_rounds.append(batch)
        workload.append(tenant_rounds)
    return workload


def replay(
    graph: UncertainGraph,
    workload,
    k: int,
    seed: int,
    *,
    wal_dir=None,
    fsync: str = "flush",
    snapshot_after_round: int | None = None,
    abandon: bool = False,
):
    """Replay *workload* through one service; time ingestion, keep answers.

    With ``abandon=True`` the service's resources are released without
    the graceful durable close — the state left on disk is exactly what
    a crash leaves (snapshot + WAL suffix), which is what the recovery
    timing must consume.
    """
    tenants = len(workload)
    rounds = len(workload[0])
    service = RiskService(
        graph,
        mode="serial",
        monitor_defaults={"seed": seed, "engine": "indexed"},
        wal_dir=wal_dir,
        fsync=fsync,
    )
    for tenant in range(tenants):
        service.register_tenant(tenant, k)
    service.snapshot(include_topk=True)  # warm start outside the timing
    started = time.perf_counter()
    for round_index in range(rounds):
        for tenant in range(tenants):
            for event in workload[tenant][round_index]:
                service.submit_update(tenant, event)
        service.flush()
        if wal_dir is not None and round_index == snapshot_after_round:
            service.snapshot_to_disk()
    ingest_seconds = time.perf_counter() - started
    answers = {
        tenant: service.query_topk(tenant, flush=False)
        for tenant in range(tenants)
    }
    if abandon:
        service._wal.close()
        service._pool.shutdown()
        service._closed = True
    else:
        service.close()
    return ingest_seconds, answers


def time_recovery(graph: UncertainGraph, tenants: int, k: int, seed: int, wal_dir):
    """Construct a recovered service and answer every tenant, timed."""
    started = time.perf_counter()
    service = RiskService(
        graph,
        mode="serial",
        monitor_defaults={"seed": seed, "engine": "indexed"},
        wal_dir=wal_dir,
    )
    answers = {
        tenant: service.query_topk(tenant, flush=False)
        for tenant in range(tenants)
    }
    elapsed = time.perf_counter() - started
    service._wal.close()
    service._pool.shutdown()
    service._closed = True
    return elapsed, answers


def time_fresh_rebuild(graph: UncertainGraph, workload, k: int, seed: int):
    """Rebuild the serving state from nothing: full replay, timed."""
    tenants = len(workload)
    started = time.perf_counter()
    service = RiskService(
        graph,
        mode="serial",
        monitor_defaults={"seed": seed, "engine": "indexed"},
    )
    for tenant in range(tenants):
        service.register_tenant(tenant, k)
    for round_index in range(len(workload[0])):
        for tenant in range(tenants):
            for event in workload[tenant][round_index]:
                service.submit_update(tenant, event)
        service.flush()
    answers = {
        tenant: service.query_topk(tenant, flush=False)
        for tenant in range(tenants)
    }
    elapsed = time.perf_counter() - started
    service.close()
    return elapsed, answers


def _assert_identical(reference: dict, candidate: dict, what: str) -> None:
    diverged = [
        tenant
        for tenant in reference
        if not reference[tenant].same_answer(candidate[tenant])
    ]
    if diverged:
        raise AssertionError(
            f"{what}: tenants {diverged} diverged from the reference — "
            "timings would be meaningless"
        )


def run(
    n: int,
    tenants: int,
    k: int,
    rounds: int,
    events_per_round: int,
    drift: float,
    seed: int,
    output: Path,
    bench_mode: str,
) -> dict:
    graph = build_powerlaw_graph(n, seed)
    workload = build_workload(
        graph, tenants, rounds, events_per_round, drift, seed
    )
    total_events = tenants * rounds * events_per_round
    scratch = Path(tempfile.mkdtemp(prefix="bench-durability-"))
    try:
        # --- ingestion overhead -----------------------------------------
        plain_seconds, plain_answers = replay(graph, workload, k, seed)
        flush_seconds, flush_answers = replay(
            graph, workload, k, seed,
            wal_dir=scratch / "wal-flush", fsync="flush",
        )
        always_seconds, always_answers = replay(
            graph, workload, k, seed,
            wal_dir=scratch / "wal-always", fsync="always",
        )
        _assert_identical(plain_answers, flush_answers, "durable (flush)")
        _assert_identical(plain_answers, always_answers, "durable (always)")

        # --- crash recovery ---------------------------------------------
        # Snapshot late in the stream, then crash: recovery restores the
        # snapshot and replays the remaining rounds' WAL suffix.
        snapshot_round = max(0, rounds - 2)
        crash_dir = scratch / "wal-crash"
        _, crashed_answers = replay(
            graph, workload, k, seed,
            wal_dir=crash_dir, fsync="flush",
            snapshot_after_round=snapshot_round, abandon=True,
        )
        recovery_seconds, recovered_answers = time_recovery(
            graph, tenants, k, seed, crash_dir
        )
        fresh_seconds, fresh_answers = time_fresh_rebuild(
            graph, workload, k, seed
        )
        _assert_identical(crashed_answers, recovered_answers, "recovery")
        _assert_identical(crashed_answers, fresh_answers, "fresh rebuild")
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    row = {
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "tenants": tenants,
        "k": k,
        "rounds": rounds,
        "events_per_round": events_per_round,
        "total_events": total_events,
        "drift": drift,
        "plain_ingest_seconds": round(plain_seconds, 6),
        "wal_flush_ingest_seconds": round(flush_seconds, 6),
        "wal_always_ingest_seconds": round(always_seconds, 6),
        "wal_overhead_ratio": round(
            flush_seconds / max(plain_seconds, 1e-12), 4
        ),
        "wal_always_overhead_ratio": round(
            always_seconds / max(plain_seconds, 1e-12), 4
        ),
        "snapshot_after_round": snapshot_round,
        "recovery_seconds": round(recovery_seconds, 6),
        "fresh_rebuild_seconds": round(fresh_seconds, 6),
        "recovery_speedup_vs_fresh": round(
            fresh_seconds / max(recovery_seconds, 1e-12), 2
        ),
        "verified_tenants": tenants,
    }
    print(
        f"n={row['nodes']:>6}  tenants={tenants}  events={total_events}  "
        f"wal-overhead={row['wal_overhead_ratio']:.2f}x "
        f"(always={row['wal_always_overhead_ratio']:.2f}x)  "
        f"recovery={recovery_seconds:.3f}s vs "
        f"fresh={fresh_seconds:.3f}s "
        f"({row['recovery_speedup_vs_fresh']:.1f}x)  "
        f"verified={tenants} tenants"
    )
    report = {
        "benchmark": "durable_serving",
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "mode": bench_mode,
        "seed": seed,
        "edge_factor": EDGE_FACTOR,
        "engine": "indexed",
        "results": [row],
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small graph / few tenants so CI can smoke-test in seconds",
    )
    parser.add_argument("--nodes", type=int, default=None,
                        help="graph size (default: 5000; quick: 1000)")
    parser.add_argument("--tenants", type=int, default=None,
                        help="tenant monitors (default: 16; quick: 6)")
    parser.add_argument("--k", type=int, default=10, help="answer size")
    parser.add_argument("--rounds", type=int, default=None,
                        help="flush rounds (default: 8; quick: 5)")
    parser.add_argument("--events-per-round", type=int, default=None,
                        help="events per tenant per round (default: 5)")
    parser.add_argument("--drift", type=float, default=0.1,
                        help="std-dev of the per-patch probability drift")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"JSON report path (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)
    if args.quick:
        nodes = args.nodes or 1_000
        tenants = args.tenants or 6
        rounds = args.rounds or 12
        events_per_round = args.events_per_round or 4
        bench_mode = "quick"
    else:
        nodes = args.nodes or 5_000
        tenants = args.tenants or 16
        rounds = args.rounds or 12
        events_per_round = args.events_per_round or 5
        bench_mode = "full"
    run(
        nodes,
        tenants,
        args.k,
        rounds,
        events_per_round,
        args.drift,
        args.seed,
        args.output,
        bench_mode,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
