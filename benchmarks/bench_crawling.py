"""Crawling benchmark: recall vs budget, and incremental topology ingestion.

Two measurements land in ``BENCH_crawling.json`` at the repo root:

``recall_vs_budget``
    A hidden power-law graph is discovered by each crawl strategy
    (:mod:`repro.crawling`) from the same seeds.  At budget checkpoints
    a fresh detection runs on the observed subgraph and its recall of
    the *hidden* graph's true top-k is recorded — the curves behind the
    README's strategy table, and the CI gate that two-stage Avrachenkov
    hub detection must recall at least as much as uniform-random
    crawling at the final budget.

``topology_ingestion``
    A power-law base graph grows node-by-node (each new node attaching
    with a handful of edges) while a stable-counter-layout
    :class:`~repro.streaming.monitor.TopKMonitor` ingests the
    ``NodeAdd``/``EdgeAdd`` events incrementally.  Every step is timed
    against a from-scratch monitor on the same grown graph — same
    seed, same layout, so the fresh answer is also the bit-identity
    oracle: a step's timing only counts after its incremental answer
    matches exactly.  The CI gate holds the aggregate speedup at >= 3x.

Usage
-----
::

    python -m benchmarks.bench_crawling            # full sweep
    python -m benchmarks.bench_crawling --quick    # CI smoke (seconds)

The script needs no installed package: it falls back to adding ``src/``
to ``sys.path`` when ``repro`` is not importable.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent

try:  # pragma: no cover - import plumbing
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(_REPO_ROOT / "src"))

import numpy as np

from repro.core.graph import UncertainGraph
from repro.crawling import CRAWL_STRATEGIES, ObservedGraphSession
from repro.datasets.powerlaw import directed_powerlaw_edges
from repro.streaming.events import EdgeAdd, NodeAdd
from repro.streaming.monitor import TopKMonitor

DEFAULT_OUTPUT = _REPO_ROOT / "BENCH_crawling.json"

#: ~3 edges per node matches the sparsity of the paper's Table-2 graphs.
EDGE_FACTOR = 3


def build_powerlaw_graph(n: int, seed: int) -> UncertainGraph:
    """Power-law topology with guarantee-style Beta(2, 4) edge strengths."""
    rng = np.random.default_rng(seed)
    src, dst = directed_powerlaw_edges(n, EDGE_FACTOR * n, seed=rng)
    return UncertainGraph.from_arrays(
        self_risks=rng.random(n) * 0.2,
        edge_src=src,
        edge_dst=dst,
        edge_probs=np.clip(rng.beta(2.0, 4.0, src.size), 0.01, 0.95),
    )


def make_monitor(
    graph: UncertainGraph, k: int, seed: int, layout: str = "stable"
) -> TopKMonitor:
    return TopKMonitor(
        graph, k, seed=seed, engine="indexed", counter_layout=layout
    )


# ----------------------------------------------------------------------
# (a) recall vs budget, per strategy
# ----------------------------------------------------------------------
def bench_recall(
    n: int, k: int, budgets: list[int], seeds: int, seed: int
) -> dict:
    """Crawl one hidden graph with every strategy; recall at checkpoints."""
    hidden = build_powerlaw_graph(n, seed)
    truth = set(make_monitor(hidden, k, seed).top_k().nodes)
    rng = np.random.default_rng(seed)
    picks = sorted(rng.choice(n, size=seeds, replace=False).tolist())
    seed_labels = [hidden.label(int(i)) for i in picks]
    budgets = sorted(budgets)
    curves: dict[str, dict] = {}
    for name in sorted(CRAWL_STRATEGIES):
        session = ObservedGraphSession(
            hidden, seed_labels, strategy=name, budget=budgets[-1], seed=seed
        )
        checkpoints = []
        next_budget = iter(budgets)
        target = next(next_budget)
        for _ in session.run():
            if session.steps_taken != target:
                continue
            observed = session.observed_graph
            answer = set(make_monitor(observed, k, seed).top_k().nodes)
            checkpoints.append(
                {
                    "budget": target,
                    "observed_nodes": observed.num_nodes,
                    "observed_edges": observed.num_edges,
                    "recall": round(len(answer & truth) / k, 4),
                }
            )
            target = next(next_budget, None)
            if target is None:
                break
        curves[name] = {
            "checkpoints": checkpoints,
            "final_recall": checkpoints[-1]["recall"] if checkpoints else 0.0,
        }
        trace = "  ".join(
            f"b={c['budget']}:{c['recall']:.2f}" for c in checkpoints
        )
        print(f"recall  {name:>12}  {trace}")
    return {
        "hidden_nodes": hidden.num_nodes,
        "hidden_edges": hidden.num_edges,
        "k": k,
        "seeds": seed_labels,
        "budgets": budgets,
        "strategies": curves,
    }


# ----------------------------------------------------------------------
# (b) incremental topology ingestion vs full recompute
# ----------------------------------------------------------------------
def growth_events(
    graph: UncertainGraph, step: int, rng: np.random.Generator, labels
):
    """One growth batch: a new node plus 1-3 edges to existing nodes."""
    label = f"grown-{step}"
    events = [NodeAdd(label, float(rng.uniform(0.05, 0.5)))]
    for target in rng.choice(len(labels), size=int(rng.integers(1, 4))):
        src, dst = (
            (label, labels[int(target)])
            if rng.random() < 0.5
            else (labels[int(target)], label)
        )
        events.append(EdgeAdd(src, dst, float(rng.uniform(0.05, 0.9))))
    return events


def bench_topology(n: int, k: int, events: int, seed: int) -> dict:
    """Grow a graph event-by-event; time incremental vs from-scratch."""
    graph = build_powerlaw_graph(n, seed)
    labels = graph.labels()
    monitor = make_monitor(graph, k, seed)
    started = time.perf_counter()
    monitor.top_k()  # initial build — a fresh detection, timed separately
    initial_seconds = time.perf_counter() - started
    rng = np.random.default_rng(seed + 1)
    incremental_seconds = fresh_seconds = 0.0
    sampling_modes: dict[str, int] = {}
    mismatches = 0
    for step in range(events):
        batch = growth_events(graph, step, rng, labels)
        monitor.apply(batch)
        started = time.perf_counter()
        result = monitor.top_k()
        incremental_seconds += time.perf_counter() - started
        report = monitor.last_report
        sampling_modes[report.sampling] = (
            sampling_modes.get(report.sampling, 0) + 1
        )
        # Same seed + same stable layout: the fresh monitor draws the
        # identical worlds, so it is both the full-recompute baseline
        # and the exactness oracle.
        started = time.perf_counter()
        fresh = make_monitor(graph, k, seed).top_k()
        fresh_seconds += time.perf_counter() - started
        if not result.same_answer(fresh):
            mismatches += 1
    if mismatches:
        raise AssertionError(
            f"{mismatches}/{events} incremental answers diverged from "
            "full recompute — the speedup would be meaningless"
        )
    row = {
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "k": k,
        "events": events,
        "initial_build_seconds": round(initial_seconds, 6),
        "incremental_seconds": round(incremental_seconds, 6),
        "full_recompute_seconds": round(fresh_seconds, 6),
        "incremental_speedup_vs_full": round(
            fresh_seconds / max(incremental_seconds, 1e-12), 2
        ),
        "sampling_modes": sampling_modes,
        "topology_refreshes": monitor.stats["topology"],
        "full_refreshes": monitor.stats["full"],
    }
    print(
        f"topology  n={row['nodes']:>6}  m={row['edges']:>7}  "
        f"events={events}  incremental={row['incremental_seconds']:.3f}s  "
        f"full={row['full_recompute_seconds']:.3f}s  "
        f"speedup={row['incremental_speedup_vs_full']:.1f}x  "
        f"modes={row['sampling_modes']}"
    )
    return row


def run(args: argparse.Namespace, mode: str) -> dict:
    recall = bench_recall(
        args.hidden_nodes, args.k, args.budgets, args.seeds, args.seed
    )
    topology = bench_topology(
        args.base_nodes, args.k, args.events, args.seed
    )
    report = {
        "benchmark": "crawling",
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "mode": mode,
        "seed": args.seed,
        "edge_factor": EDGE_FACTOR,
        "engine": "indexed",
        "counter_layout": "stable",
        "recall_vs_budget": recall,
        "topology_ingestion": topology,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small graphs / few events so CI can smoke-test in seconds",
    )
    parser.add_argument("--k", type=int, default=10, help="answer size")
    parser.add_argument(
        "--hidden-nodes",
        type=int,
        default=None,
        help="hidden-graph size of the recall sweep",
    )
    parser.add_argument(
        "--budgets",
        type=int,
        nargs="+",
        default=None,
        help="crawl-budget checkpoints of the recall sweep",
    )
    parser.add_argument(
        "--seeds", type=int, default=3, help="crawl seed-node count"
    )
    parser.add_argument(
        "--base-nodes",
        type=int,
        default=None,
        help="base-graph size of the topology-ingestion sweep",
    )
    parser.add_argument(
        "--events",
        type=int,
        default=None,
        help="growth batches of the topology-ingestion sweep",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"JSON report path (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.hidden_nodes = args.hidden_nodes or 400
        args.budgets = args.budgets or [15, 30, 60]
        args.base_nodes = args.base_nodes or 3000
        args.events = args.events or 10
        mode = "quick"
    else:
        args.hidden_nodes = args.hidden_nodes or 2000
        args.budgets = args.budgets or [25, 50, 100, 200]
        args.base_nodes = args.base_nodes or 5000
        args.events = args.events or 30
        mode = "full"
    run(args, mode)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
