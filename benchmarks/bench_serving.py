"""Wall-clock benchmark: multi-tenant RiskService vs naive per-call serving.

Replays the same per-tenant update workload two ways over one shared
power-law guarantee network:

* **serving** — the :class:`~repro.serving.service.RiskService` path:
  every tenant is an incremental monitor over a copy-on-write view of
  the shared graph; updates drain through the ingestion queue (windowed,
  last-write-wins coalescing) and refresh in per-tenant batches; queries
  hit the warm monitors.
* **naive** — the pre-serving architecture: one detection call per
  update, from scratch, per tenant (apply the event, run a fresh
  BSR detection) — "one monitor per call", nothing shared, nothing
  incremental.

At every round boundary each tenant's served answer is compared
bit-for-bit against the naive loop's fresh detection on the identically
patched graph *before any timing is reported*, so the speedup measures
exact serving, not an approximation.  Results land in
``BENCH_serving.json`` at the repo root.

Usage
-----
::

    python -m benchmarks.bench_serving            # 32 tenants, 5k nodes
    python -m benchmarks.bench_serving --quick    # CI smoke (seconds)
    python -m benchmarks.bench_serving --tenants 64 --rounds 6 --mode fork
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent

try:  # pragma: no cover - import plumbing
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(_REPO_ROOT / "src"))

import numpy as np

from repro.algorithms.bsr import BoundedSampleReverseDetector
from repro.core.graph import UncertainGraph
from repro.datasets.powerlaw import directed_powerlaw_edges
from repro.serving import RiskService, default_mode
from repro.streaming.events import UpdateEvent, apply_event
from repro.streaming.replay import random_patch_stream

DEFAULT_OUTPUT = _REPO_ROOT / "BENCH_serving.json"

#: ~3 edges per node matches the sparsity of the paper's Table-2 graphs.
EDGE_FACTOR = 3


def build_powerlaw_graph(n: int, seed: int) -> UncertainGraph:
    """Power-law topology with guarantee-style Beta(2, 4) edge strengths."""
    rng = np.random.default_rng(seed)
    src, dst = directed_powerlaw_edges(n, EDGE_FACTOR * n, seed=rng)
    return UncertainGraph.from_arrays(
        self_risks=rng.random(n) * 0.2,
        edge_src=src,
        edge_dst=dst,
        edge_probs=np.clip(rng.beta(2.0, 4.0, src.size), 0.01, 0.95),
    )


def build_workload(
    graph: UncertainGraph,
    tenants: int,
    rounds: int,
    events_per_round: int,
    drift: float,
    seed: int,
) -> list[list[list[UpdateEvent]]]:
    """Per-tenant, per-round event batches (drift compounds per tenant)."""
    workload: list[list[list[UpdateEvent]]] = []
    for tenant in range(tenants):
        shadow = graph.copy()
        stream = random_patch_stream(
            shadow,
            rounds * events_per_round,
            seed=seed + 1_000 + tenant,
            drift=drift,
        )
        tenant_rounds: list[list[UpdateEvent]] = []
        for _ in range(rounds):
            batch: list[UpdateEvent] = []
            for _ in range(events_per_round):
                event = next(stream)
                apply_event(shadow, event)
                batch.append(event)
            tenant_rounds.append(batch)
        workload.append(tenant_rounds)
    return workload


def bench_serving(
    graph: UncertainGraph,
    workload,
    k: int,
    seed: int,
    mode: str,
    shards: int | None,
):
    """Run the RiskService path; returns timings, latencies, answers."""
    tenants = len(workload)
    rounds = len(workload[0])
    service = RiskService(
        graph,
        mode=mode,
        shards=shards,
        monitor_defaults={"seed": seed, "engine": "indexed"},
    )
    for tenant in range(tenants):
        service.register_tenant(tenant, k)
    started = time.perf_counter()
    # Warm start: every monitor's initial full detection, in-pool.
    service.snapshot(include_topk=True)
    warmup_seconds = time.perf_counter() - started
    answers: dict[tuple[int, int], object] = {}
    query_latencies: list[float] = []
    started = time.perf_counter()
    for round_index in range(rounds):
        for tenant in range(tenants):
            for event in workload[tenant][round_index]:
                service.submit_update(tenant, event)
        service.flush()
        for tenant in range(tenants):
            query_started = time.perf_counter()
            answers[(tenant, round_index)] = service.query_topk(
                tenant, flush=False
            )
            query_latencies.append(time.perf_counter() - query_started)
    serving_seconds = time.perf_counter() - started
    stats = {
        "queue": service.queue.stats.as_dict(),
        "shards": service.snapshot().shards,
    }
    # Per-worker deduplicated vs unshared bytes.  Each term compares a
    # worker's resident graphs against one-copy-per-holder within that
    # same worker, so the ratio stays meaningful in fork mode (where the
    # base graph is resident once per worker but OS-COW shared).
    shared_bytes = sum(int(row["graph_bytes"]) for row in stats["shards"])
    naive_bytes = sum(
        int(row["graph_bytes_unshared"]) for row in stats["shards"]
    )
    service.close()
    return {
        "warmup_seconds": warmup_seconds,
        "serving_seconds": serving_seconds,
        "answers": answers,
        "query_latencies": query_latencies,
        "queue": stats["queue"],
        "graph_bytes_shared": shared_bytes,
        "graph_bytes_naive": naive_bytes,
    }


def bench_naive(graph: UncertainGraph, workload, k: int, seed: int):
    """One fresh detection per update per tenant (the pre-serving loop)."""
    tenants = len(workload)
    rounds = len(workload[0])
    references: dict[tuple[int, int], object] = {}
    detect_latencies: list[float] = []
    graphs = [graph.copy() for _ in range(tenants)]
    started = time.perf_counter()
    for round_index in range(rounds):
        for tenant in range(tenants):
            live = graphs[tenant]
            for event in workload[tenant][round_index]:
                apply_event(live, event)
                detector = BoundedSampleReverseDetector(
                    seed=seed, engine="indexed"
                )
                call_started = time.perf_counter()
                fresh = detector.detect(live, k)
                detect_latencies.append(time.perf_counter() - call_started)
            references[(tenant, round_index)] = fresh
    naive_seconds = time.perf_counter() - started
    return {
        "naive_seconds": naive_seconds,
        "references": references,
        "detect_latencies": detect_latencies,
    }


def _percentile_ms(latencies: list[float], q: float) -> float:
    return round(float(np.percentile(np.asarray(latencies), q)) * 1e3, 3)


def run(
    n: int,
    tenants: int,
    k: int,
    rounds: int,
    events_per_round: int,
    drift: float,
    seed: int,
    mode: str,
    shards: int | None,
    output: Path,
    bench_mode: str,
) -> dict:
    """Run both paths, verify bit-identity, print and write the report."""
    graph = build_powerlaw_graph(n, seed)
    workload = build_workload(
        graph, tenants, rounds, events_per_round, drift, seed
    )
    total_events = tenants * rounds * events_per_round
    serving = bench_serving(graph, workload, k, seed, mode, shards)
    naive = bench_naive(graph, workload, k, seed)
    mismatches = 0
    for key, reference in naive["references"].items():
        if not serving["answers"][key].same_answer(reference):
            mismatches += 1
    if mismatches:
        raise AssertionError(
            f"{mismatches}/{len(naive['references'])} served answers "
            "diverged from fresh detection — the speedup would be "
            "meaningless"
        )
    serving_total = serving["warmup_seconds"] + serving["serving_seconds"]
    row = {
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "tenants": tenants,
        "k": k,
        "rounds": rounds,
        "events_per_round": events_per_round,
        "total_events": total_events,
        "drift": drift,
        "pool_mode": mode,
        "serving_warmup_seconds": round(serving["warmup_seconds"], 6),
        "serving_seconds": round(serving["serving_seconds"], 6),
        "serving_total_seconds": round(serving_total, 6),
        "naive_seconds": round(naive["naive_seconds"], 6),
        "serving_updates_per_second": round(
            total_events / max(serving_total, 1e-12), 1
        ),
        "naive_updates_per_second": round(
            total_events / max(naive["naive_seconds"], 1e-12), 1
        ),
        "throughput_speedup_vs_naive": round(
            naive["naive_seconds"] / max(serving_total, 1e-12), 2
        ),
        "query_p50_ms": _percentile_ms(serving["query_latencies"], 50),
        "query_p99_ms": _percentile_ms(serving["query_latencies"], 99),
        "naive_detect_p50_ms": _percentile_ms(naive["detect_latencies"], 50),
        "naive_detect_p99_ms": _percentile_ms(naive["detect_latencies"], 99),
        "queue": serving["queue"],
        "graph_bytes_shared": serving["graph_bytes_shared"],
        "graph_bytes_naive": serving["graph_bytes_naive"],
        "verified_answers": len(naive["references"]),
    }
    print(
        f"n={row['nodes']:>6}  tenants={tenants}  events={total_events}  "
        f"serving={serving_total:.3f}s  naive={row['naive_seconds']:.3f}s  "
        f"speedup={row['throughput_speedup_vs_naive']:.1f}x  "
        f"query p50/p99={row['query_p50_ms']}/{row['query_p99_ms']}ms  "
        f"verified={row['verified_answers']}"
    )
    report = {
        "benchmark": "multi_tenant_serving",
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "mode": bench_mode,
        "seed": seed,
        "edge_factor": EDGE_FACTOR,
        "engine": "indexed",
        "results": [row],
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small graph / few tenants so CI can smoke-test in seconds",
    )
    parser.add_argument("--nodes", type=int, default=None,
                        help="graph size (default: 5000; quick: 1000)")
    parser.add_argument("--tenants", type=int, default=None,
                        help="tenant monitors (default: 32; quick: 8)")
    parser.add_argument("--k", type=int, default=10, help="answer size")
    parser.add_argument("--rounds", type=int, default=None,
                        help="flush rounds (default: 4; quick: 3)")
    parser.add_argument("--events-per-round", type=int, default=None,
                        help="events per tenant per round (default: 5)")
    parser.add_argument("--drift", type=float, default=0.1,
                        help="std-dev of the per-patch probability drift")
    parser.add_argument("--mode", default=None,
                        help="pool mode (default: fork where available)")
    parser.add_argument("--shards", type=int, default=None,
                        help="pool shards (default: CPU count, max 8)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"JSON report path (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)
    if args.quick:
        nodes = args.nodes or 1_000
        tenants = args.tenants or 8
        rounds = args.rounds or 3
        events_per_round = args.events_per_round or 4
        bench_mode = "quick"
    else:
        nodes = args.nodes or 5_000
        tenants = args.tenants or 32
        rounds = args.rounds or 4
        events_per_round = args.events_per_round or 5
        bench_mode = "full"
    run(
        nodes,
        tenants,
        args.k,
        rounds,
        events_per_round,
        args.drift,
        args.seed,
        args.mode or default_mode(),
        args.shards,
        args.output,
        bench_mode,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
