"""Benchmark E-F5: regenerate Figure 5 (bound-order tuning heatmaps).

Sweeps (lower order, upper order) in {1..5}^2 at k = 5%|V| and prints
the candidate-size cells.  Expected shape: a sharp drop from order 1 to
2, then a plateau — the basis for the paper fixing both orders to 2.
"""

from __future__ import annotations

from repro.experiments.fig5_bounds import ORDER_GRID, run
from repro.utils.tables import render_table


def test_fig5_bound_orders(benchmark, bench_config):
    rows = benchmark.pedantic(run, args=(bench_config,), rounds=1, iterations=1)
    assert len(rows) == 4 * len(ORDER_GRID) ** 2
    print()
    print(render_table(rows, title="Figure 5 — candidate size vs bound orders"))
    # The paper's plateau claim: (2,2) is already close to (5,5).
    by_key = {
        (row["dataset"], row["lower_order"], row["upper_order"]): int(
            row["candidates"]
        )
        for row in rows
    }
    for dataset in {row["dataset"] for row in rows}:
        assert by_key[(dataset, 2, 2)] <= by_key[(dataset, 1, 1)]
